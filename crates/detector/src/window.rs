//! A fixed-capacity sliding-window ring buffer.
//!
//! The online daemons ([`crate::online`]) keep their observation windows
//! (≤ 512 OS quanta, paper §IV-B) in this structure: `push` is O(1), hands
//! back the evicted oldest slot so running aggregates (observation-weight
//! sums, bursty counts) can be updated incrementally instead of re-walking
//! the window every quantum, and iteration is always oldest → newest — the
//! order the checkpoint format and the batch recurrence analysis expect.

/// A ring buffer holding the most recent `capacity` pushed values.
#[derive(Debug, Clone)]
pub struct SlidingWindow<T> {
    slots: Vec<T>,
    /// Index of the oldest slot once the ring has wrapped (slots.len() ==
    /// capacity); zero while still filling.
    head: usize,
    capacity: usize,
}

impl<T> SlidingWindow<T> {
    /// Creates an empty window retaining at most `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window needs capacity >= 1");
        SlidingWindow {
            slots: Vec::with_capacity(capacity),
            head: 0,
            capacity,
        }
    }

    /// Maximum number of retained values.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained values.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the window holds no values.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the window has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.capacity
    }

    /// Appends `value` as the newest slot, returning the evicted oldest
    /// value when the window was already full.
    pub fn push(&mut self, value: T) -> Option<T> {
        if self.slots.len() < self.capacity {
            self.slots.push(value);
            return None;
        }
        let evicted = std::mem::replace(&mut self.slots[self.head], value);
        self.head = (self.head + 1) % self.capacity;
        Some(evicted)
    }

    /// Iterates the retained values, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (wrapped, chronological) = self.slots.split_at(self.head);
        chronological.iter().chain(wrapped.iter())
    }

    /// The newest value, if any.
    pub fn newest(&self) -> Option<&T> {
        if self.slots.is_empty() {
            None
        } else if self.head == 0 {
            self.slots.last()
        } else {
            self.slots.get(self.head - 1)
        }
    }

    /// Empties the window, returning the retained values oldest → newest.
    ///
    /// The admission queue ([`crate::ingest::AdmissionQueue`]) drains its
    /// drop-oldest ring once per quantum; the replacement buffer is
    /// pre-reserved to capacity so the refill never reallocates mid-push.
    pub fn drain(&mut self) -> Vec<T> {
        let head = std::mem::take(&mut self.head);
        let mut out = std::mem::take(&mut self.slots);
        self.slots.reserve(self.capacity);
        let pivot = head.min(out.len());
        out.rotate_left(pivot);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_in_order() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.push(1), None);
        assert_eq!(w.push(2), None);
        assert_eq!(w.push(3), None);
        assert!(w.is_full());
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(w.push(4), Some(1));
        assert_eq!(w.push(5), Some(2));
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.newest(), Some(&5));
    }

    #[test]
    fn long_wrap_keeps_chronological_iteration() {
        let mut w = SlidingWindow::new(5);
        for i in 0..123 {
            w.push(i);
        }
        assert_eq!(
            w.iter().copied().collect::<Vec<_>>(),
            vec![118, 119, 120, 121, 122]
        );
        assert_eq!(w.newest(), Some(&122));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = SlidingWindow::<u8>::new(0);
    }

    #[test]
    fn drain_returns_chronological_and_resets() {
        let mut w = SlidingWindow::new(4);
        for i in 0..7 {
            w.push(i);
        }
        assert_eq!(w.drain(), vec![3, 4, 5, 6]);
        assert!(w.is_empty());
        assert_eq!(w.push(42), None);
        assert_eq!(w.drain(), vec![42]);
        assert_eq!(w.drain(), Vec::<i32>::new());
    }
}
