//! The batched analysis engine (ROADMAP item 2): reusable FFT plans,
//! lane-accumulated inner-loop kernels, and per-thread scratch so auditing
//! many pairs per tick stops paying per-pair setup.
//!
//! Three ingredients:
//!
//! * [`FftPlan`] — precomputed radix-2 twiddle and untangle tables for one
//!   padded transform length. [`BatchPlanner`] caches plans keyed by length
//!   and owns the scratch buffers (padded signal, packed/half spectra,
//!   correlation sums), so an audit tick over many pairs pays table setup
//!   once per distinct length and allocates nothing per pair.
//! * Lane kernels ([`sq_dist`]) — fixed 4-wide accumulator loops in stable
//!   Rust that the autovectorizer lowers to packed SIMD. Every caller uses
//!   the same canonical reduction shape
//!   `(lane0 + lane1) + (lane2 + lane3) + tail`, so serial and parallel
//!   paths compute bit-identical results; the plain scalar forms
//!   ([`sq_dist_scalar`]) stay as property-test oracles.
//! * [`with_planner`] — a per-thread planner instance. The deterministic
//!   `par_map` fan-out runs on persistent pool workers, so each worker
//!   keeps its own warm plan cache and scratch with no locking; the
//!   determinism contract is unaffected because plans are pure functions of
//!   the transform length.
//!
//! The twiddle tables evaluate `cos`/`sin` per entry instead of the
//! incremental `w ·= w_step` recurrence of [`crate::fft::fft_in_place`], so
//! the planned transform is (slightly) *more* accurate than the unplanned
//! one; both stay well inside the ≤1e-9 oracle bound the property tests
//! enforce against the direct O(n·lags) reference.

use crate::fft::Complex;
use std::cell::RefCell;
use std::collections::HashMap;

/// Lane width of the accumulator kernels.
///
/// Four `f64` lanes map to two SSE2 registers (the portable baseline) or a
/// single AVX register; measured on the reference host, 4 lanes beat both
/// the scalar loop (~2×) and an 8-lane variant (extra reduction latency
/// dominates at 128-element feature vectors).
pub const LANE_WIDTH: usize = 4;

/// Squared Euclidean distance between two equal-length vectors, computed
/// with [`LANE_WIDTH`] independent accumulator lanes.
///
/// The reduction shape is fixed — `(l0 + l1) + (l2 + l3) + tail` — so every
/// caller (k-means assignment, seeding, serial or parallel) sees the same
/// floating-point result. Agrees with [`sq_dist_scalar`] to ≤1e-9 relative
/// on the detector's feature scales (property-tested).
///
/// # Panics
///
/// Panics (in debug builds) if the lengths differ; in release the shorter
/// length governs.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if x86::avx2_available() {
        // SAFETY: gated on runtime AVX2 detection.
        return unsafe { x86::sq_dist_avx2(a, b) };
    }
    sq_dist_portable(a, b)
}

/// The portable lowering of [`sq_dist`]: stable-Rust 4-lane loop the
/// autovectorizer maps onto the baseline SIMD width (two SSE2 registers on
/// x86-64). The AVX2 path is bit-identical — one 256-bit register holds
/// exactly these four lanes — so which lowering runs never affects results.
pub(crate) fn sq_dist_portable(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    let n = a.len().min(b.len());
    let main = n - n % LANE_WIDTH;
    let mut lanes = [0.0f64; LANE_WIDTH];
    for (ca, cb) in a[..main]
        .chunks_exact(LANE_WIDTH)
        .zip(b[..main].chunks_exact(LANE_WIDTH))
    {
        for l in 0..LANE_WIDTH {
            let d = ca[l] - cb[l];
            lanes[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[main..n].iter().zip(&b[main..n]) {
        let d = x - y;
        tail += d * d;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// The straight-line scalar reference for [`sq_dist`]: one accumulator,
/// strict left-to-right summation. Kept as the property-test oracle.
pub fn sq_dist_scalar(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Element-wise `dst[i] += src[i]` over the common prefix — the k-means
/// centroid-update accumulation. Each element's add is independent (no
/// reduction, no reassociation), so every lowering is bit-identical by
/// construction; the AVX2 path just does four at a time.
pub(crate) fn add_assign(dst: &mut [f64], src: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    if x86::avx2_available() {
        // SAFETY: gated on runtime AVX2 detection.
        unsafe { x86::add_assign_avx2(dst, src) };
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// How many [`LANE_WIDTH`] chunks the bounded kernels accumulate between
/// cutoff checks: often enough to abandon early, rarely enough that the
/// horizontal-reduction cost of the check stays invisible. Shared by the
/// portable and AVX2 lowerings so their abandonment points coincide.
const CHECK_EVERY: usize = 8;

/// [`sq_dist`] with early abandonment: returns as soon as the partial sum
/// strictly exceeds `cutoff`. Partial sums of squares are nondecreasing, so
/// an abandoned distance is guaranteed `> cutoff`; the returned partial is
/// only meaningful for that comparison. When the full distance is
/// `<= cutoff` the result is bit-identical to [`sq_dist`] (same lanes, same
/// reduction), which is what lets the k-means nearest-centroid search use
/// this without perturbing assignments or tie-breaks.
pub(crate) fn sq_dist_bounded(a: &[f64], b: &[f64], cutoff: f64) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if x86::avx2_available() {
        // SAFETY: gated on runtime AVX2 detection.
        return unsafe { x86::sq_dist_bounded_avx2(a, b, cutoff) };
    }
    sq_dist_bounded_portable(a, b, cutoff)
}

/// Portable lowering of [`sq_dist_bounded`]; see [`sq_dist_portable`].
pub(crate) fn sq_dist_bounded_portable(a: &[f64], b: &[f64], cutoff: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    let n = a.len().min(b.len());
    let main = n - n % LANE_WIDTH;
    let mut lanes = [0.0f64; LANE_WIDTH];
    let mut since_check = 0usize;
    for (ca, cb) in a[..main]
        .chunks_exact(LANE_WIDTH)
        .zip(b[..main].chunks_exact(LANE_WIDTH))
    {
        for l in 0..LANE_WIDTH {
            let d = ca[l] - cb[l];
            lanes[l] += d * d;
        }
        since_check += 1;
        if since_check == CHECK_EVERY {
            since_check = 0;
            let partial = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
            if partial > cutoff {
                return partial;
            }
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[main..n].iter().zip(&b[main..n]) {
        let d = x - y;
        tail += d * d;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// Up to this many centroids the fused distance kernel handles in one pass;
/// the k-means assignment loop falls back to per-centroid [`sq_dist`] calls
/// for larger k (the detector's configs use k = 3).
pub(crate) const MAX_FUSED_K: usize = 4;

/// Squared distances from `point` to up to [`MAX_FUSED_K`] centroids,
/// computed in a single pass over `point`: each chunk of the point row is
/// loaded once and folded into every centroid's accumulator lanes, instead
/// of re-streaming the row per centroid. `out[j]` receives the distance to
/// `centroids[j]`; slots past `centroids.len()` are left untouched.
///
/// Each centroid's sum performs exactly the operations of [`sq_dist`] — the
/// same lane assignment per element, the same individually-rounded
/// subtract/multiply/add, the same `(l0 + l1) + (l2 + l3) + tail` reduction
/// — merely interleaved with the other centroids' arithmetic. Interleaving
/// independent accumulators changes no operand of any floating-point
/// operation, so `out[j]` is bit-identical to `sq_dist(point, &centroids[j])`
/// (asserted in the kernel equivalence tests).
///
/// # Panics
///
/// Panics (in debug builds) when `centroids.len() > MAX_FUSED_K` or any
/// centroid's length differs from the point's; release builds take the
/// shorter length per centroid like [`sq_dist`].
pub(crate) fn sq_dists_fused(point: &[f64], centroids: &[Vec<f64>], out: &mut [f64; MAX_FUSED_K]) {
    #[cfg(target_arch = "x86_64")]
    if x86::avx2_available() {
        // SAFETY: gated on runtime AVX2 detection.
        unsafe { x86::sq_dists_fused_avx2(point, centroids, out) };
        return;
    }
    sq_dists_fused_portable(point, centroids, out)
}

/// Portable lowering of [`sq_dists_fused`]; see [`sq_dist_portable`]. The
/// chunk loop is outermost — one pass over the point row folds into every
/// centroid's lanes — with a per-centroid [`sq_dist_portable`] fallback for
/// ragged lengths (which [`kmeans`](crate::cluster::kmeans) never produces).
pub(crate) fn sq_dists_fused_portable(
    point: &[f64],
    centroids: &[Vec<f64>],
    out: &mut [f64; MAX_FUSED_K],
) {
    debug_assert!(centroids.len() <= MAX_FUSED_K, "too many fused centroids");
    let k = centroids.len().min(MAX_FUSED_K);
    let n = point.len();
    if centroids.iter().take(k).any(|c| c.len() != n) {
        debug_assert!(false, "sq_dist length mismatch");
        for (o, c) in out.iter_mut().zip(centroids) {
            *o = sq_dist_portable(point, c);
        }
        return;
    }
    let main = n - n % LANE_WIDTH;
    let mut lanes = [[0.0f64; LANE_WIDTH]; MAX_FUSED_K];
    let mut base = 0usize;
    while base < main {
        let p = &point[base..base + LANE_WIDTH];
        for (j, lane) in lanes.iter_mut().enumerate().take(k) {
            let c = &centroids[j][base..base + LANE_WIDTH];
            for l in 0..LANE_WIDTH {
                let d = p[l] - c[l];
                lane[l] += d * d;
            }
        }
        base += LANE_WIDTH;
    }
    for (j, lane) in lanes.iter().enumerate().take(k) {
        let c = &centroids[j];
        let mut tail = 0.0;
        for (x, y) in point[main..n].iter().zip(&c[main..n]) {
            let d = x - y;
            tail += d * d;
        }
        out[j] = (lane[0] + lane[1]) + (lane[2] + lane[3]) + tail;
    }
}

/// AVX2 lowerings of the lane kernels, used when the running CPU has them.
///
/// Bit-identity argument: the portable kernels keep [`LANE_WIDTH`] = 4
/// independent `f64` accumulators, adding `(a[4c+l] - b[4c+l])²` to lane
/// `l` on chunk `c`. One 256-bit register *is* those four lanes, and
/// `vsubpd`/`vmulpd`/`vaddpd` perform the identical individually-rounded
/// operations per lane in the identical order (no FMA — a fused
/// multiply-add would round differently). The final horizontal reduction
/// uses the same canonical `(l0 + l1) + (l2 + l3) + tail` shape, and the
/// bounded variant checks the cutoff at the same chunk boundaries, so the
/// dispatch is unobservable in results (property-tested against the
/// portable forms).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{CHECK_EVERY, LANE_WIDTH};
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_setzero_pd, _mm256_storeu_pd,
        _mm256_sub_pd,
    };

    /// AVX2 [`super::add_assign`]: packed element-wise adds, no reduction.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 ([`avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_avx2(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let main = n - n % LANE_WIDTH;
        let mut i = 0usize;
        while i < main {
            // SAFETY: i + LANE_WIDTH <= main <= both slice lengths.
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(d, s));
            i += LANE_WIDTH;
        }
        for (d, s) in dst[main..n].iter_mut().zip(&src[main..n]) {
            *d += s;
        }
    }

    /// Whether the running CPU supports AVX2 (the detection result is
    /// cached by the standard library; this is an atomic load after the
    /// first call).
    #[inline]
    pub fn avx2_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// AVX2 [`super::sq_dist`]; bit-identical to [`super::sq_dist_portable`].
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 ([`avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_avx2(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
        let n = a.len().min(b.len());
        let main = n - n % LANE_WIDTH;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0usize;
        while i < main {
            // SAFETY: i + LANE_WIDTH <= main <= both slice lengths.
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i));
            let d = _mm256_sub_pd(va, vb);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            i += LANE_WIDTH;
        }
        let mut lanes = [0.0f64; LANE_WIDTH];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0;
        for (x, y) in a[main..n].iter().zip(&b[main..n]) {
            let d = x - y;
            tail += d * d;
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
    }

    /// AVX2 [`super::sq_dists_fused`]: one pass over the point row with up
    /// to [`super::MAX_FUSED_K`] accumulator registers, each performing the
    /// exact per-lane operations of [`sq_dist_avx2`] for its centroid.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 ([`avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dists_fused_avx2(
        point: &[f64],
        centroids: &[Vec<f64>],
        out: &mut [f64; super::MAX_FUSED_K],
    ) {
        debug_assert!(
            centroids.len() <= super::MAX_FUSED_K,
            "too many fused centroids"
        );
        let k = centroids.len().min(super::MAX_FUSED_K);
        let n = point.len();
        if centroids.iter().take(k).any(|c| c.len() != n) {
            debug_assert!(false, "sq_dist length mismatch");
            for (o, c) in out.iter_mut().zip(centroids) {
                *o = sq_dist_avx2(point, c);
            }
            return;
        }
        let main = n - n % LANE_WIDTH;
        let mut acc = [_mm256_setzero_pd(); super::MAX_FUSED_K];
        let mut i = 0usize;
        while i < main {
            // SAFETY: i + LANE_WIDTH <= main <= every slice length.
            let p = _mm256_loadu_pd(point.as_ptr().add(i));
            for (j, a) in acc.iter_mut().enumerate().take(k) {
                let c = _mm256_loadu_pd(centroids[j].as_ptr().add(i));
                let d = _mm256_sub_pd(p, c);
                *a = _mm256_add_pd(*a, _mm256_mul_pd(d, d));
            }
            i += LANE_WIDTH;
        }
        for (j, a) in acc.iter().enumerate().take(k) {
            let mut lanes = [0.0f64; LANE_WIDTH];
            _mm256_storeu_pd(lanes.as_mut_ptr(), *a);
            let c = &centroids[j];
            let mut tail = 0.0;
            for (x, y) in point[main..n].iter().zip(&c[main..n]) {
                let d = x - y;
                tail += d * d;
            }
            out[j] = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail;
        }
    }

    /// AVX2 [`super::sq_dist_bounded`]; abandons at the same chunk
    /// boundaries with the same partial sums as the portable form.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 ([`avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_bounded_avx2(a: &[f64], b: &[f64], cutoff: f64) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
        let n = a.len().min(b.len());
        let main = n - n % LANE_WIDTH;
        let mut acc = _mm256_setzero_pd();
        let mut lanes = [0.0f64; LANE_WIDTH];
        let mut since_check = 0usize;
        let mut i = 0usize;
        while i < main {
            // SAFETY: i + LANE_WIDTH <= main <= both slice lengths.
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i));
            let d = _mm256_sub_pd(va, vb);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            i += LANE_WIDTH;
            since_check += 1;
            if since_check == CHECK_EVERY {
                since_check = 0;
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
                let partial = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
                if partial > cutoff {
                    return partial;
                }
            }
        }
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0;
        for (x, y) in a[main..n].iter().zip(&b[main..n]) {
            let d = x - y;
            tail += d * d;
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
    }
}

/// A cached radix-2 FFT plan for one real transform length `n` (a power of
/// two ≥ 2): the per-stage butterfly twiddle tables of the underlying
/// `n/2`-point complex FFT plus the untangle table of the real-input
/// packing. Building a plan is O(n); applying it replaces every
/// `cos`/`sin` evaluation (and the error-accumulating `w ·= w_step`
/// recurrence) in the transform hot loop with a table load.
#[derive(Debug, Clone)]
pub struct FftPlan {
    /// Real transform length.
    n: usize,
    /// Complex sub-transform length `n / 2`.
    m: usize,
    /// `stages[s][k] = e^{-iτk/width}` for butterfly width `2 << s`,
    /// `k < width/2` — the forward twiddles; the inverse transform uses
    /// their conjugates.
    stages: Vec<Vec<Complex>>,
    /// `untangle[k] = e^{-iτk/n}` for `k ∈ 0..=m` — the half-spectrum
    /// recombination twiddles of the real-input packing.
    untangle: Vec<Complex>,
}

impl FftPlan {
    /// Builds the plan for real transform length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "real FFT length must be a power of two >= 2"
        );
        let m = n / 2;
        let mut stages = Vec::new();
        let mut width = 2usize;
        while width <= m {
            let table: Vec<Complex> = (0..width / 2)
                .map(|k| {
                    let angle = -std::f64::consts::TAU * k as f64 / width as f64;
                    Complex::new(angle.cos(), angle.sin())
                })
                .collect();
            stages.push(table);
            width *= 2;
        }
        let untangle: Vec<Complex> = (0..=m)
            .map(|k| {
                let angle = -std::f64::consts::TAU * k as f64 / n as f64;
                Complex::new(angle.cos(), angle.sin())
            })
            .collect();
        FftPlan {
            n,
            m,
            stages,
            untangle,
        }
    }

    /// The real transform length this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Plans are never built for length 0; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place complex FFT over `data` (length must be `n/2`) using the
    /// cached twiddle tables. Mirrors [`crate::fft::fft_in_place`].
    fn fft_in_place(&self, data: &mut [Complex], inverse: bool) {
        let m = data.len();
        debug_assert_eq!(m, self.m, "plan length mismatch");
        if m <= 1 {
            return;
        }
        let shift = usize::BITS - m.trailing_zeros();
        for i in 0..m {
            let j = i.reverse_bits() >> shift;
            if i < j {
                data.swap(i, j);
            }
        }
        for (s, table) in self.stages.iter().enumerate() {
            let width = 2usize << s;
            let half = width / 2;
            for start in (0..m).step_by(width) {
                for (k, &tw) in table.iter().enumerate() {
                    let w = if inverse { tw.conj() } else { tw };
                    let even = data[start + k];
                    let odd = data[start + k + half].mul(w);
                    data[start + k] = even.add(odd);
                    data[start + k + half] = even.sub(odd);
                }
            }
        }
        if inverse {
            let scale = 1.0 / m as f64;
            for value in data.iter_mut() {
                *value = value.scale(scale);
            }
        }
    }

    /// Forward real FFT of `signal` (length `n`) into `spectrum`
    /// (`n/2 + 1` half-spectrum bins), using `packed` as the `n/2`-point
    /// working buffer. Mirrors [`crate::fft::real_fft`] with the packing
    /// and untangle twiddles served from the table.
    fn real_fft_into(
        &self,
        signal: &[f64],
        packed: &mut Vec<Complex>,
        spectrum: &mut Vec<Complex>,
    ) {
        debug_assert_eq!(signal.len(), self.n, "plan length mismatch");
        let m = self.m;
        packed.clear();
        packed.extend((0..m).map(|j| Complex::new(signal[2 * j], signal[2 * j + 1])));
        self.fft_in_place(packed, false);
        spectrum.clear();
        spectrum.reserve(m + 1);
        for k in 0..=m {
            let z_k = packed[k % m];
            let z_mk = packed[(m - k) % m].conj();
            let even = z_k.add(z_mk).scale(0.5);
            let diff = z_k.sub(z_mk);
            let odd = Complex::new(diff.im * 0.5, -diff.re * 0.5);
            spectrum.push(even.add(self.untangle[k].mul(odd)));
        }
    }

    /// Inverse of [`FftPlan::real_fft_into`]: reconstructs the length-`n`
    /// real sequence from its Hermitian half-spectrum into `out`.
    fn inverse_real_fft_into(
        &self,
        spectrum: &[Complex],
        packed: &mut Vec<Complex>,
        out: &mut Vec<f64>,
    ) {
        let m = self.m;
        debug_assert_eq!(spectrum.len(), m + 1, "half-spectrum length mismatch");
        packed.clear();
        packed.reserve(m);
        for k in 0..m {
            let x_k = spectrum[k];
            let x_mk = spectrum[m - k].conj();
            let even = x_k.add(x_mk).scale(0.5);
            let with_twiddle = x_k.sub(x_mk).scale(0.5);
            // Inverse untangle twiddle: e^{+iτk/n} = conj(forward).
            let odd = self.untangle[k].conj().mul(with_twiddle);
            packed.push(Complex::new(even.re - odd.im, even.im + odd.re));
        }
        self.fft_in_place(packed, true);
        out.clear();
        out.reserve(self.n);
        for z in packed.iter() {
            out.push(z.re);
            out.push(z.im);
        }
    }
}

/// Reusable working memory of a [`BatchPlanner`]: the padded signal, the
/// packed/half spectra, and the correlation-sum output of one transform.
/// Buffers grow to the largest length seen and are then reused verbatim.
#[derive(Debug, Default)]
struct BatchScratch {
    padded: Vec<f64>,
    packed: Vec<Complex>,
    spectrum: Vec<Complex>,
    sums: Vec<f64>,
    centered: Vec<f64>,
}

/// A plan cache plus scratch buffers for batched spectral analysis.
///
/// One planner per thread (see [`with_planner`]) turns the per-pair
/// allocation profile of an audit tick — fresh twiddle recurrences, fresh
/// padded buffers, fresh spectra — into table lookups over warm memory.
/// Plans are keyed by padded transform length; an 8-pair audit whose
/// series all pad to the same power of two builds exactly one plan.
#[derive(Debug, Default)]
pub struct BatchPlanner {
    plans: HashMap<usize, FftPlan>,
    scratch: BatchScratch,
}

impl BatchPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct transform lengths planned so far.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Linear autocorrelation sums `r[lag] = Σᵢ x[i]·x[i+lag]` for
    /// `lag ∈ 0..=max_lag` of an already-centered series, via the
    /// Wiener–Khinchin theorem on cached plans and scratch. Semantics match
    /// [`crate::fft::autocorrelation_sums`]; the returned slice lives in
    /// the planner's scratch and is valid until the next call.
    pub fn autocorrelation_sums(&mut self, centered: &[f64], max_lag: usize) -> &[f64] {
        let n = centered.len();
        let lags = max_lag.min(n.saturating_sub(1));
        let len = (n + lags).next_power_of_two().max(2);
        let plan = self.plans.entry(len).or_insert_with(|| FftPlan::new(len));
        let scratch = &mut self.scratch;
        scratch.padded.clear();
        scratch.padded.extend_from_slice(centered);
        scratch.padded.resize(len, 0.0);
        plan.real_fft_into(&scratch.padded, &mut scratch.packed, &mut scratch.spectrum);
        // Power spectrum: the multiply-accumulate inner loop of the whole
        // pipeline; in-place over the half-spectrum.
        for c in scratch.spectrum.iter_mut() {
            *c = Complex::new(c.norm_sqr(), 0.0);
        }
        plan.inverse_real_fft_into(&scratch.spectrum, &mut scratch.packed, &mut scratch.sums);
        &scratch.sums[..=lags.min(len - 1)]
    }

    /// Autocorrelation *coefficients* of a raw (uncentered) series for
    /// every lag `0..=max_lag`: centers the series in scratch, picks the
    /// FFT or direct path by problem volume exactly like
    /// [`crate::autocorr::Autocorrelogram::compute`], and divides by the
    /// centered energy. Returns the freshly allocated coefficient vector
    /// (the one allocation the caller keeps).
    pub(crate) fn correlogram_coefficients(
        &mut self,
        samples: &[f64],
        max_lag: usize,
        naive_cutoff: usize,
        force_naive: bool,
    ) -> Vec<f64> {
        let n = samples.len();
        let mut coefficients = vec![0.0; max_lag + 1];
        if n < 2 {
            return coefficients;
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        self.scratch.centered.clear();
        self.scratch
            .centered
            .extend(samples.iter().map(|x| x - mean));
        let denom: f64 = self.scratch.centered.iter().map(|x| x * x).sum();
        if denom <= f64::EPSILON {
            coefficients[0] = 1.0;
            return coefficients;
        }
        let lags = max_lag.min(n - 2);
        if force_naive || n.saturating_mul(lags) <= naive_cutoff {
            for (lag, coeff) in coefficients.iter_mut().enumerate().take(lags + 1) {
                let centered = &self.scratch.centered;
                let sum: f64 = (0..centered.len() - lag)
                    .map(|i| centered[i] * centered[i + lag])
                    .sum();
                *coeff = sum / denom;
            }
        } else {
            // Move the centered buffer out so the planner can reuse its
            // spectral scratch without aliasing it.
            let centered = std::mem::take(&mut self.scratch.centered);
            let sums = self.autocorrelation_sums(&centered, lags);
            for (coeff, sum) in coefficients.iter_mut().zip(sums) {
                *coeff = sum / denom;
            }
            self.scratch.centered = centered;
        }
        coefficients[0] = 1.0;
        coefficients
    }
}

thread_local! {
    static PLANNER: RefCell<BatchPlanner> = RefCell::new(BatchPlanner::new());
}

/// Runs `f` with this thread's [`BatchPlanner`].
///
/// Worker threads of the vendored pool are persistent, so each keeps a warm
/// plan cache across `par_map` fan-outs — per-thread batch scratch without
/// locks, and without threading a planner handle through every call site.
///
/// # Panics
///
/// Panics if called reentrantly from inside `f` (the planner is exclusively
/// borrowed for the duration of the call).
pub fn with_planner<R>(f: impl FnOnce(&mut BatchPlanner) -> R) -> R {
    PLANNER.with(|p| f(&mut p.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft;

    #[test]
    fn lane_sq_dist_matches_scalar() {
        for len in [0usize, 1, 3, 4, 7, 8, 100, 128, 129] {
            let a: Vec<f64> = (0..len).map(|i| ((i * 37) % 13) as f64 - 6.0).collect();
            let b: Vec<f64> = (0..len).map(|i| ((i * 53) % 11) as f64 - 5.0).collect();
            let lane = sq_dist(&a, &b);
            let scalar = sq_dist_scalar(&a, &b);
            assert!(
                (lane - scalar).abs() <= 1e-9 * scalar.abs().max(1.0),
                "len {len}: {lane} vs {scalar}"
            );
        }
    }

    #[test]
    fn bounded_sq_dist_is_exact_below_cutoff_and_larger_above() {
        let a: Vec<f64> = (0..128).map(|i| (i % 16) as f64).collect();
        let b: Vec<f64> = (0..128).map(|i| ((i + 3) % 16) as f64).collect();
        let full = sq_dist(&a, &b);
        // Generous cutoff: must be bit-identical to the unbounded kernel.
        assert_eq!(sq_dist_bounded(&a, &b, full * 2.0), full);
        // Tight cutoff: whatever partial comes back must exceed it.
        assert!(sq_dist_bounded(&a, &b, full * 0.1) > full * 0.1);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernels_are_bit_identical_to_portable() {
        if !x86::avx2_available() {
            return; // Nothing to compare on this host.
        }
        for len in [0usize, 1, 3, 4, 7, 31, 32, 33, 128, 129, 517] {
            let a: Vec<f64> = (0..len)
                .map(|i| ((i * 37) % 13) as f64 / 3.0 - 2.0)
                .collect();
            let b: Vec<f64> = (0..len)
                .map(|i| ((i * 53) % 11) as f64 / 7.0 - 0.5)
                .collect();
            let portable = sq_dist_portable(&a, &b);
            // SAFETY: AVX2 presence checked above.
            let vector = unsafe { x86::sq_dist_avx2(&a, &b) };
            assert_eq!(portable.to_bits(), vector.to_bits(), "len {len}");
            for cutoff in [f64::INFINITY, portable, portable / 2.0, 0.0] {
                let pb = sq_dist_bounded_portable(&a, &b, cutoff);
                // SAFETY: AVX2 presence checked above.
                let vb = unsafe { x86::sq_dist_bounded_avx2(&a, &b, cutoff) };
                assert_eq!(pb.to_bits(), vb.to_bits(), "len {len} cutoff {cutoff}");
            }
        }
    }

    #[test]
    fn fused_distances_are_bit_identical_to_sq_dist() {
        for len in [0usize, 1, 3, 4, 7, 31, 32, 33, 128, 129] {
            let point: Vec<f64> = (0..len)
                .map(|i| ((i * 37) % 13) as f64 / 3.0 - 2.0)
                .collect();
            let centroids: Vec<Vec<f64>> = (0..MAX_FUSED_K)
                .map(|j| {
                    (0..len)
                        .map(|i| ((i * 53 + j * 17) % 11) as f64 / 7.0 - 0.5)
                        .collect()
                })
                .collect();
            for k in 0..=MAX_FUSED_K {
                let cs = &centroids[..k];
                let mut out = [f64::NAN; MAX_FUSED_K];
                sq_dists_fused_portable(&point, cs, &mut out);
                for (j, c) in cs.iter().enumerate() {
                    assert_eq!(
                        out[j].to_bits(),
                        sq_dist_portable(&point, c).to_bits(),
                        "len {len} k {k} centroid {j}"
                    );
                }
                #[cfg(target_arch = "x86_64")]
                if x86::avx2_available() {
                    let mut vout = [f64::NAN; MAX_FUSED_K];
                    // SAFETY: AVX2 presence checked above.
                    unsafe { x86::sq_dists_fused_avx2(&point, cs, &mut vout) };
                    for j in 0..k {
                        assert_eq!(
                            vout[j].to_bits(),
                            out[j].to_bits(),
                            "avx2 len {len} k {k} centroid {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn planned_sums_match_unplanned() {
        let mut planner = BatchPlanner::new();
        for n in [2usize, 3, 65, 300, 1024, 2077] {
            let series: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
            let reference = fft::autocorrelation_sums(&series, 900);
            let planned = planner.autocorrelation_sums(&series, 900).to_vec();
            assert_eq!(planned.len(), reference.len(), "n = {n}");
            for (lag, (p, r)) in planned.iter().zip(&reference).enumerate() {
                assert!(
                    (p - r).abs() <= 1e-9 * r.abs().max(1.0),
                    "n {n} lag {lag}: {p} vs {r}"
                );
            }
        }
        // 2077 + 900 pads to 4096; 1024 + 900 pads to 2048; etc.
        assert!(planner.cached_plans() >= 3);
    }

    #[test]
    fn plans_are_reused_across_same_length_calls() {
        let mut planner = BatchPlanner::new();
        let series: Vec<f64> = (0..500).map(|i| (i % 7) as f64).collect();
        planner.autocorrelation_sums(&series, 100);
        let plans_after_first = planner.cached_plans();
        for _ in 0..5 {
            planner.autocorrelation_sums(&series, 100);
        }
        assert_eq!(planner.cached_plans(), plans_after_first);
    }

    #[test]
    fn with_planner_is_reusable_per_thread() {
        let series: Vec<f64> = (0..300).map(|i| (i % 5) as f64).collect();
        let a = with_planner(|p| p.autocorrelation_sums(&series, 64).to_vec());
        let b = with_planner(|p| p.autocorrelation_sums(&series, 64).to_vec());
        assert_eq!(a, b);
    }
}
