//! Zero-dependency metrics: atomic counters, gauges, fixed-bucket latency
//! histograms, labeled per-pair families, and a [`Registry`] with
//! Prometheus-text and JSON exposition.
//!
//! The detection stack is built to run unattended for months; what an
//! operator can *observe* about it — audit latency, quarantine churn,
//! rollback counts, verdict flips — matters as much as the verdicts
//! themselves. This module is the numeric half of the observability layer
//! (the event half is [`crate::span`]): every instrument is a cheap
//! `Arc`-shared handle over relaxed atomics, safe to clone into the thread
//! pool's fan-outs, and every registered instrument can be scraped at any
//! time without pausing the fleet.
//!
//! * [`Counter`] — monotonic `u64`, exact under concurrent increments.
//! * [`Gauge`] — an `f64` that can move both ways (confidence, fill levels).
//! * [`Histogram`] — fixed cumulative buckets + sum/count/max, for latency
//!   distributions; never allocates after construction.
//! * [`Family`] — a labeled set of any of the above (one time series per
//!   label value, e.g. per audited pair).
//! * [`Registry`] — named, help-texted instruments with
//!   [`render_prometheus`](Registry::render_prometheus) and
//!   [`render_json`](Registry::render_json) exposition.
//!
//! [`parse_prometheus`] is a deliberately small parser for the text format
//! this module emits — enough for round-trip property tests and for a
//! scrape-side consumer that wants typed samples without a dependency.
//!
//! A process-wide [`default_registry`] collects the hot-path instruments of
//! [`crate::pipeline`], [`crate::online`] and [`crate::policy`]; components
//! that want isolation (tests, multi-tenant embedders) construct their own
//! [`Registry`] and inject it (see
//! [`Supervisor::with_registry`](crate::supervisor::Supervisor::with_registry)).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter. Cloning shares the underlying value.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to at least `floor` (used to re-seed monotonic
    /// counters from a persisted snapshot after a crash-restore; idempotent,
    /// so an in-process restore that shares the registry never
    /// double-counts).
    pub fn seed(&self, floor: u64) {
        self.value.fetch_max(floor, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A floating-point gauge that can move in both directions.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (atomic read-modify-write loop).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly ascending; an implicit
    /// `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` slots, the last
    /// being the overflow bucket).
    buckets: Vec<AtomicU64>,
    /// Bit pattern of the running sum (CAS-updated f64).
    sum_bits: AtomicU64,
    /// Total observations.
    count: AtomicU64,
    /// Bit pattern of the largest observation (valid for the non-negative
    /// values this histogram is meant for — u64 bit order matches f64 order
    /// on non-negatives).
    max_bits: AtomicU64,
}

/// A fixed-bucket cumulative histogram for non-negative observations
/// (latencies in microseconds, batch sizes). Cloning shares the buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// Default latency buckets in microseconds: 1 µs to 1 s, roughly
/// logarithmic — wide enough for both a single counter bump and a wedged
/// analysis.
pub const LATENCY_BUCKETS_US: [f64; 14] = [
    1.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    25_000.0,
    100_000.0,
    1_000_000.0,
];

impl Histogram {
    /// Creates a histogram with the given finite bucket upper bounds
    /// (strictly ascending; an overflow bucket is always appended).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, unsorted, or contains a non-finite
    /// bound — histogram shape is a compile-time-style decision, not data.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
                count: AtomicU64::new(0),
                max_bits: AtomicU64::new(0.0f64.to_bits()),
            }),
        }
    }

    /// A histogram over [`LATENCY_BUCKETS_US`].
    pub fn latency_us() -> Self {
        Histogram::new(&LATENCY_BUCKETS_US)
    }

    /// Records one observation (negative values clamp to zero).
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner
            .max_bits
            .fetch_max(v.to_bits(), Ordering::Relaxed);
        let mut current = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Adds every observation recorded in `other` into this histogram
    /// (bucket-by-bucket, plus count, sum, and max), for hierarchical
    /// rollups that fold per-shard distributions into a fleet-wide one.
    /// Returns `false` — and merges nothing — when the bucket bounds
    /// differ, since merging across shapes would misbin. The snapshot of
    /// `other` is relaxed; a histogram being written concurrently merges
    /// some consistent-enough recent state, which is all a monitoring
    /// rollup needs.
    pub fn merge_from(&self, other: &Histogram) -> bool {
        if self.inner.bounds != other.inner.bounds {
            return false;
        }
        for (mine, theirs) in self.inner.buckets.iter().zip(&other.inner.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.inner.count.fetch_add(other.count(), Ordering::Relaxed);
        self.inner
            .max_bits
            .fetch_max(other.max().to_bits(), Ordering::Relaxed);
        let add = other.sum();
        let mut current = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + add).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket, the count, the sum, and the max, keeping the
    /// bucket bounds. For *windowed* views (a latency-SLO tracker that
    /// judges each tick window on fresh data) — cumulative Prometheus
    /// series must never be reset.
    pub fn reset(&self) {
        for bucket in self.inner.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner
            .sum_bits
            .store(0.0f64.to_bits(), Ordering::Relaxed);
        self.inner
            .max_bits
            .store(0.0f64.to_bits(), Ordering::Relaxed);
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Largest observation seen (0 when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.inner.max_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs, ending with the
    /// `(+Inf, total)` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut running = 0u64;
        let mut out = Vec::with_capacity(self.inner.bounds.len() + 1);
        for (i, count) in self.inner.buckets.iter().enumerate() {
            running += count.load(Ordering::Relaxed);
            let bound = self.inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, running));
        }
        out
    }

    /// Estimated `q`-quantile (0 ≤ q ≤ 1) by linear interpolation within
    /// the containing bucket — the usual Prometheus-style estimate, exact
    /// enough for latency summaries.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut lower_bound = 0.0f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.inner.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            let next_cumulative = cumulative + in_bucket;
            if (next_cumulative as f64) >= rank {
                let upper = match self.inner.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: cap at the observed max.
                    None => return self.max(),
                };
                if in_bucket == 0 {
                    return upper;
                }
                let fraction = (rank - cumulative as f64) / in_bucket as f64;
                return lower_bound + (upper - lower_bound) * fraction;
            }
            cumulative = next_cumulative;
            lower_bound = self.inner.bounds.get(i).copied().unwrap_or(lower_bound);
        }
        self.max()
    }
}

/// A labeled set of instruments: one member per label *value* under a
/// single label *name* (the registry's label scheme is one label per
/// family — e.g. `pair` for per-pair series).
pub struct Family<M> {
    label_name: String,
    factory: Arc<dyn Fn() -> M + Send + Sync>,
    members: Arc<Mutex<BTreeMap<String, M>>>,
}

impl<M> Clone for Family<M> {
    fn clone(&self) -> Self {
        Family {
            label_name: self.label_name.clone(),
            factory: Arc::clone(&self.factory),
            members: Arc::clone(&self.members),
        }
    }
}

impl<M> fmt::Debug for Family<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let members = self.members.lock().expect("family lock poisoned");
        f.debug_struct("Family")
            .field("label_name", &self.label_name)
            .field("members", &members.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl<M: Clone> Family<M> {
    /// Creates a family whose members are built by `factory` on first use
    /// of each label value.
    pub fn new(
        label_name: impl Into<String>,
        factory: impl Fn() -> M + Send + Sync + 'static,
    ) -> Self {
        Family {
            label_name: label_name.into(),
            factory: Arc::new(factory),
            members: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The family's label name.
    pub fn label_name(&self) -> &str {
        &self.label_name
    }

    /// The member for `value`, created on first use. The returned handle
    /// shares state with every other handle for the same value.
    pub fn with_label(&self, value: &str) -> M {
        let mut members = self.members.lock().expect("family lock poisoned");
        members
            .entry(value.to_string())
            .or_insert_with(|| (self.factory)())
            .clone()
    }

    /// All `(label value, member)` pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, M)> {
        let members = self.members.lock().expect("family lock poisoned");
        members
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Every instrument shape a [`Registry`] can hold.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A plain counter.
    Counter(Counter),
    /// A plain gauge.
    Gauge(Gauge),
    /// A plain histogram.
    Histogram(Histogram),
    /// A labeled counter family.
    CounterFamily(Family<Counter>),
    /// A labeled gauge family.
    GaugeFamily(Family<Gauge>),
    /// A labeled histogram family.
    HistogramFamily(Family<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::CounterFamily(_) => "counter",
            Metric::Gauge(_) | Metric::GaugeFamily(_) => "gauge",
            Metric::Histogram(_) | Metric::HistogramFamily(_) => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
struct Registration {
    name: String,
    help: String,
    metric: Metric,
}

/// A named collection of instruments with Prometheus-text and JSON
/// exposition. Cloning shares the underlying collection; registration is
/// get-or-create, so two components registering the same name (and kind)
/// share one instrument.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Registration>>>,
}

/// One exported sample: a metric name, optional `(label name, label
/// value)`, and a value. Histograms export one sample per cumulative
/// bucket (suffix `_bucket`, extra `le` label) plus `_sum` and `_count`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric (or derived series) name.
    pub name: String,
    /// Labels, sorted by label name.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn is_valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }

    fn register_with(&self, name: &str, help: &str, build: impl FnOnce() -> Metric) -> Metric {
        assert!(
            Self::is_valid_name(name),
            "invalid metric name {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if let Some(existing) = inner.iter().find(|r| r.name == name) {
            return existing.metric.clone();
        }
        let registration = Registration {
            name: name.to_string(),
            help: help.to_string(),
            metric: build(),
        };
        let metric = registration.metric.clone();
        inner.push(registration);
        metric
    }

    /// Registers (or fetches) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register_with(name, help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or fetches) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register_with(name, help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or fetches) a histogram. A later registration under the
    /// same name returns the existing histogram (its original bounds win).
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        match self.register_with(name, help, || Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or fetches) a labeled counter family.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn counter_family(&self, name: &str, help: &str, label: &str) -> Family<Counter> {
        let label = label.to_string();
        match self.register_with(name, help, move || {
            Metric::CounterFamily(Family::new(label, Counter::new))
        }) {
            Metric::CounterFamily(f) => f,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or fetches) a labeled gauge family.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn gauge_family(&self, name: &str, help: &str, label: &str) -> Family<Gauge> {
        let label = label.to_string();
        match self.register_with(name, help, move || {
            Metric::GaugeFamily(Family::new(label, Gauge::new))
        }) {
            Metric::GaugeFamily(f) => f,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or fetches) a labeled histogram family.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn histogram_family(
        &self,
        name: &str,
        help: &str,
        label: &str,
        bounds: &[f64],
    ) -> Family<Histogram> {
        let label = label.to_string();
        let bounds = bounds.to_vec();
        match self.register_with(name, help, move || {
            Metric::HistogramFamily(Family::new(label, move || Histogram::new(&bounds)))
        }) {
            Metric::HistogramFamily(f) => f,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// All registered `(name, help, metric)` triples, in registration
    /// order.
    pub fn registrations(&self) -> Vec<(String, String, Metric)> {
        let inner = self.inner.lock().expect("registry lock poisoned");
        inner
            .iter()
            .map(|r| (r.name.clone(), r.help.clone(), r.metric.clone()))
            .collect()
    }

    /// Flattens every instrument into exported [`Sample`]s (the same set
    /// the Prometheus exposition prints).
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        for (name, _help, metric) in self.registrations() {
            match metric {
                Metric::Counter(c) => out.push(Sample {
                    name: name.clone(),
                    labels: Vec::new(),
                    value: c.get() as f64,
                }),
                Metric::Gauge(g) => out.push(Sample {
                    name: name.clone(),
                    labels: Vec::new(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => histogram_samples(&mut out, &name, &[], &h),
                Metric::CounterFamily(f) => {
                    for (label, c) in f.snapshot() {
                        out.push(Sample {
                            name: name.clone(),
                            labels: vec![(f.label_name().to_string(), label)],
                            value: c.get() as f64,
                        });
                    }
                }
                Metric::GaugeFamily(f) => {
                    for (label, g) in f.snapshot() {
                        out.push(Sample {
                            name: name.clone(),
                            labels: vec![(f.label_name().to_string(), label)],
                            value: g.get(),
                        });
                    }
                }
                Metric::HistogramFamily(f) => {
                    for (label, h) in f.snapshot() {
                        let labels = [(f.label_name().to_string(), label)];
                        histogram_samples(&mut out, &name, &labels, &h);
                    }
                }
            }
        }
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers followed by one sample
    /// per line, histograms expanded into cumulative `_bucket`/`_sum`/
    /// `_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, metric) in self.registrations() {
            if !help.is_empty() {
                writeln!(out, "# HELP {name} {}", escape_help(&help)).expect("string write");
            }
            writeln!(out, "# TYPE {name} {}", metric.type_name()).expect("string write");
            let prefix_len = out.len();
            for sample in self.samples_for(&name, &metric) {
                write_sample_line(&mut out, &sample);
            }
            // A family with no members yet still printed its headers; that
            // is valid exposition, nothing to clean up.
            let _ = prefix_len;
        }
        out
    }

    fn samples_for(&self, name: &str, metric: &Metric) -> Vec<Sample> {
        let mut out = Vec::new();
        match metric {
            Metric::Counter(c) => out.push(Sample {
                name: name.to_string(),
                labels: Vec::new(),
                value: c.get() as f64,
            }),
            Metric::Gauge(g) => out.push(Sample {
                name: name.to_string(),
                labels: Vec::new(),
                value: g.get(),
            }),
            Metric::Histogram(h) => histogram_samples(&mut out, name, &[], h),
            Metric::CounterFamily(f) => {
                for (label, c) in f.snapshot() {
                    out.push(Sample {
                        name: name.to_string(),
                        labels: vec![(f.label_name().to_string(), label)],
                        value: c.get() as f64,
                    });
                }
            }
            Metric::GaugeFamily(f) => {
                for (label, g) in f.snapshot() {
                    out.push(Sample {
                        name: name.to_string(),
                        labels: vec![(f.label_name().to_string(), label)],
                        value: g.get(),
                    });
                }
            }
            Metric::HistogramFamily(f) => {
                for (label, h) in f.snapshot() {
                    let labels = [(f.label_name().to_string(), label)];
                    histogram_samples(&mut out, name, &labels, &h);
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON object: metric name → value
    /// (counters/gauges), or → `{label: value}` (families), or → a
    /// histogram object with `count`, `sum`, `max` and cumulative
    /// `buckets`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let registrations = self.registrations();
        for (i, (name, _help, metric)) in registrations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\n  {}: ", json_string(name)).expect("string write");
            match metric {
                Metric::Counter(c) => write!(out, "{}", c.get()).expect("string write"),
                Metric::Gauge(g) => write!(out, "{}", json_number(g.get())).expect("string write"),
                Metric::Histogram(h) => json_histogram(&mut out, h),
                Metric::CounterFamily(f) => {
                    out.push('{');
                    for (j, (label, c)) in f.snapshot().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        write!(out, "{}: {}", json_string(label), c.get()).expect("string write");
                    }
                    out.push('}');
                }
                Metric::GaugeFamily(f) => {
                    out.push('{');
                    for (j, (label, g)) in f.snapshot().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        write!(out, "{}: {}", json_string(label), json_number(g.get()))
                            .expect("string write");
                    }
                    out.push('}');
                }
                Metric::HistogramFamily(f) => {
                    out.push('{');
                    for (j, (label, h)) in f.snapshot().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        write!(out, "{}: ", json_string(label)).expect("string write");
                        json_histogram(&mut out, h);
                    }
                    out.push('}');
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

/// Renders several registries as one Prometheus text exposition, with an
/// optional extra `(label name, label value)` pair injected into every
/// sample of each part — the hierarchical-rollup exposition: a coordinator
/// registry plus one registry per shard, each shard's series tagged
/// `shard="N"`.
///
/// `# HELP` / `# TYPE` headers print once per metric name, in first-seen
/// order across the parts; the first part to register a name supplies its
/// help text. Same-named series from different parts stay distinguishable
/// through their injected labels (two unlabeled parts sharing a name will
/// emit duplicate series — give parts distinct labels).
pub fn render_prometheus_merged(parts: &[(Option<(&str, &str)>, &Registry)]) -> String {
    let mut order: Vec<(String, String, &'static str)> = Vec::new();
    let mut by_name: BTreeMap<String, Vec<Sample>> = BTreeMap::new();
    for (extra, registry) in parts {
        for (name, help, metric) in registry.registrations() {
            if !by_name.contains_key(&name) {
                order.push((name.clone(), help, metric.type_name()));
                by_name.insert(name.clone(), Vec::new());
            }
            let mut samples = registry.samples_for(&name, &metric);
            if let Some((k, v)) = extra {
                for sample in &mut samples {
                    sample.labels.insert(0, (k.to_string(), v.to_string()));
                }
            }
            by_name
                .get_mut(&name)
                .expect("inserted above")
                .extend(samples);
        }
    }
    let mut out = String::new();
    for (name, help, type_name) in order {
        if !help.is_empty() {
            writeln!(out, "# HELP {name} {}", escape_help(&help)).expect("string write");
        }
        writeln!(out, "# TYPE {name} {type_name}").expect("string write");
        for sample in &by_name[&name] {
            write_sample_line(&mut out, sample);
        }
    }
    out
}

fn histogram_samples(
    out: &mut Vec<Sample>,
    name: &str,
    labels: &[(String, String)],
    h: &Histogram,
) {
    for (bound, cumulative) in h.cumulative_buckets() {
        let mut bucket_labels = labels.to_vec();
        bucket_labels.push(("le".to_string(), format_bound(bound)));
        out.push(Sample {
            name: format!("{name}_bucket"),
            labels: bucket_labels,
            value: cumulative as f64,
        });
    }
    out.push(Sample {
        name: format!("{name}_sum"),
        labels: labels.to_vec(),
        value: h.sum(),
    });
    out.push(Sample {
        name: format!("{name}_count"),
        labels: labels.to_vec(),
        value: h.count() as f64,
    });
}

fn format_bound(bound: f64) -> String {
    if bound.is_infinite() {
        "+Inf".to_string()
    } else {
        format_value(bound)
    }
}

/// Formats a sample value so that it round-trips through `str::parse::<f64>`.
fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_sample_line(out: &mut String, sample: &Sample) {
    out.push_str(&sample.name);
    if !sample.labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in sample.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{k}=\"{}\"", escape_label(v)).expect("string write");
        }
        out.push('}');
    }
    writeln!(out, " {}", format_value(sample.value)).expect("string write");
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format_value(v)
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".to_string()
    }
}

fn json_histogram(out: &mut String, h: &Histogram) {
    write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": {{",
        h.count(),
        json_number(h.sum()),
        json_number(h.max())
    )
    .expect("string write");
    for (i, (bound, cumulative)) in h.cumulative_buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{}: {cumulative}", json_string(&format_bound(*bound))).expect("string write");
    }
    out.push_str("}}");
}

/// The process-wide default registry: hot-path instruments in
/// [`crate::pipeline`], [`crate::online`] and [`crate::policy`] register
/// here, and [`crate::supervisor::Supervisor`] uses it unless an explicit
/// registry is injected.
pub fn default_registry() -> Registry {
    static DEFAULT: OnceLock<Registry> = OnceLock::new();
    DEFAULT.get_or_init(Registry::new).clone()
}

/// A sample parsed back from the Prometheus text format.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSample {
    /// Series name.
    pub name: String,
    /// Labels in appearance order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

/// One malformed exposition line skipped by the lossy parser.
#[derive(Clone, Debug, PartialEq)]
pub struct SkippedLine {
    /// 1-based line number in the scraped text.
    pub line_no: usize,
    /// The offending line, verbatim (trimmed).
    pub line: String,
    /// Why it could not be parsed.
    pub reason: String,
}

impl fmt::Display for SkippedLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: {} ({:?})",
            self.line_no, self.reason, self.line
        )
    }
}

/// The result of a lossy [`parse_prometheus`] pass: every line that parsed,
/// plus a report of every line that did not.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LossyScrape {
    /// Samples from the well-formed lines, in appearance order.
    pub samples: Vec<ParsedSample>,
    /// Malformed lines, each with its line number and reason.
    pub skipped: Vec<SkippedLine>,
}

impl LossyScrape {
    /// Whether every non-comment line parsed.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Parses the Prometheus text exposition format emitted by
/// [`Registry::render_prometheus`] (names, one-level labels with escapes,
/// `+Inf` bounds). Comment and blank lines are skipped silently.
///
/// The parse is *lossy*: a malformed or unknown line never fails the whole
/// scrape (a monitoring path must degrade, not die, when an exporter
/// glitches mid-write). Each bad line is recorded in
/// [`LossyScrape::skipped`] with its line number and reason; callers that
/// require a pristine scrape check [`LossyScrape::is_clean`].
pub fn parse_prometheus(text: &str) -> LossyScrape {
    let mut out = LossyScrape::default();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_sample_line(line) {
            Ok(sample) => out.samples.push(sample),
            Err(reason) => out.skipped.push(SkippedLine {
                line_no: idx + 1,
                line: line.to_string(),
                reason,
            }),
        }
    }
    out
}

fn parse_sample_line(line: &str) -> Result<ParsedSample, String> {
    let (series, value_text) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            if close < brace {
                return Err("mismatched label braces".to_string());
            }
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let space = line
                .find(char::is_whitespace)
                .ok_or_else(|| "sample has no value".to_string())?;
            (&line[..space], line[space..].trim())
        }
    };
    let value: f64 = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other
            .parse()
            .map_err(|e| format!("bad value {other:?}: {e}"))?,
    };
    let (name, labels) = match series.find('{') {
        Some(brace) => {
            let inner = &series[brace + 1..series.len() - 1];
            (series[..brace].to_string(), parse_labels(inner)?)
        }
        None => (series.to_string(), Vec::new()),
    };
    if !Registry::is_valid_name(&name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(ParsedSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(inner: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Skip separators and terminal whitespace.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value is not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err(format!("unterminated value for label {key}")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    other => return Err(format!("bad escape {other:?} in label {key}")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_shares() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.inc_by(4);
        assert_eq!(c.get(), 5);
        c.seed(3);
        assert_eq!(c.get(), 5, "seed never lowers");
        c.seed(10);
        assert_eq!(c2.get(), 10);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-4.0);
        assert!((g.get() + 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_sum_and_quantiles() {
        let h = Histogram::new(&[10.0, 100.0, 1000.0]);
        for v in [1.0, 5.0, 50.0, 500.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5556.0).abs() < 1e-9);
        assert_eq!(h.max(), 5000.0);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (10.0, 2));
        assert_eq!(buckets[1], (100.0, 3));
        assert_eq!(buckets[2], (1000.0, 4));
        assert_eq!(buckets[3].1, 5);
        assert!(buckets[3].0.is_infinite());
        // Median falls in the (10, 100] bucket.
        let p50 = h.quantile(0.5);
        assert!((10.0..=100.0).contains(&p50), "{p50}");
        // The tail estimate is capped at the observed max.
        assert_eq!(h.quantile(1.0), 5000.0);
        // Empty histogram quantile is defined.
        assert_eq!(Histogram::latency_us().quantile(0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10.0, 5.0]);
    }

    #[test]
    fn family_members_are_shared_per_label() {
        let f: Family<Counter> = Family::new("pair", Counter::new);
        f.with_label("bus").inc();
        f.with_label("bus").inc();
        f.with_label("cache").inc();
        let snapshot = f.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].0, "bus");
        assert_eq!(snapshot[0].1.get(), 2);
        assert_eq!(snapshot[1].1.get(), 1);
    }

    #[test]
    fn registry_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("cchunter_test_total", "a test counter");
        let b = r.counter("cchunter_test_total", "ignored duplicate help");
        a.inc();
        assert_eq!(b.get(), 1, "same name returns the same counter");
        assert_eq!(r.registrations().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("cchunter_kind_clash", "");
        let _ = r.gauge("cchunter_kind_clash", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_bad_names() {
        let _ = Registry::new().counter("0starts-with-digit", "");
    }

    #[test]
    fn prometheus_rendering_has_headers_and_samples() {
        let r = Registry::new();
        r.counter("cchunter_ticks_total", "Fleet ticks completed")
            .inc_by(7);
        let f = r.counter_family("cchunter_pair_panics_total", "Contained panics", "pair");
        f.with_label("bus: a <-> b").inc();
        let h = r.histogram("cchunter_latency_us", "Analysis latency", &[10.0, 100.0]);
        h.observe(42.0);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP cchunter_ticks_total Fleet ticks completed"));
        assert!(text.contains("# TYPE cchunter_ticks_total counter"));
        assert!(text.contains("cchunter_ticks_total 7"));
        assert!(text.contains("cchunter_pair_panics_total{pair=\"bus: a <-> b\"} 1"));
        assert!(text.contains("cchunter_latency_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("cchunter_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("cchunter_latency_us_sum 42"));
        assert!(text.contains("cchunter_latency_us_count 1"));
    }

    #[test]
    fn parser_roundtrips_samples_exactly() {
        let r = Registry::new();
        r.counter("cchunter_a_total", "plain").inc_by(3);
        let g = r.gauge("cchunter_conf", "a gauge");
        g.set(-0.125);
        let f = r.counter_family("cchunter_lbl_total", "labels", "pair");
        f.with_label("weird \"label\"\\with\nnasties").inc_by(9);
        let h = r.histogram("cchunter_h_us", "hist", &[1.0, 2.5]);
        h.observe(2.0);
        h.observe(100.0);
        let rendered = r.render_prometheus();
        let scrape = parse_prometheus(&rendered);
        assert!(scrape.is_clean(), "{:?}", scrape.skipped);
        let parsed = scrape.samples;
        let expected: Vec<ParsedSample> = r
            .samples()
            .into_iter()
            .map(|s| ParsedSample {
                name: s.name,
                labels: s.labels,
                value: s.value,
            })
            .collect();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn parser_skips_garbage_lines_without_losing_good_ones() {
        for bad in [
            "name",                        // no value
            "name{x=\"y\" 3",              // unterminated labels
            "name{x=y} 3",                 // unquoted value
            "name{x=\"y\\q\"} 3",          // bad escape
            "0name 3",                     // bad name
            "name{x=\"\\\"} 3 extra junk", // unterminated + trailing
        ] {
            // The bad line is reported, not fatal: a valid neighbour on
            // either side still parses.
            let text = format!("cchunter_ok_total 1\n{bad}\ncchunter_also_ok 2.5");
            let scrape = parse_prometheus(&text);
            assert_eq!(scrape.samples.len(), 2, "{bad:?}");
            assert_eq!(scrape.skipped.len(), 1, "{bad:?}");
            assert_eq!(scrape.skipped[0].line_no, 2, "{bad:?}");
            assert_eq!(scrape.skipped[0].line, bad.trim());
            assert!(!scrape.is_clean());
        }
    }

    #[test]
    fn parser_fuzz_corrupted_exposition_never_panics_or_loses_prefix() {
        // Deterministic fuzz: render a real exposition, then corrupt it in
        // a few hundred seeded ways (truncation, byte flips, injected
        // garbage) and require the parser to (a) never panic, (b) parse
        // every line it reports as a sample, and (c) keep lines that were
        // not touched.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let r = Registry::new();
        r.counter("cchunter_fz_total", "c").inc_by(7);
        let f = r.counter_family("cchunter_fz_lbl_total", "f", "pair");
        f.with_label("a \"quoted\"\\pair\nname").inc_by(2);
        r.gauge("cchunter_fz_conf", "g").set(0.75);
        r.histogram("cchunter_fz_us", "h", &[1.0, 10.0])
            .observe(3.0);
        let pristine = r.render_prometheus();
        let clean = parse_prometheus(&pristine);
        assert!(clean.is_clean());
        let baseline = clean.samples.len();

        let mut rng = SmallRng::seed_from_u64(0x5C2A9E);
        for _ in 0..300 {
            let mut bytes = pristine.clone().into_bytes();
            match rng.gen_range(0..3u8) {
                0 => {
                    // Truncate mid-line.
                    let cut = rng.gen_range(0..bytes.len());
                    bytes.truncate(cut);
                }
                1 => {
                    // Flip a few bytes to printable garbage.
                    for _ in 0..rng.gen_range(1..6) {
                        let i = rng.gen_range(0..bytes.len());
                        bytes[i] = rng.gen_range(b' '..b'~');
                    }
                }
                _ => {
                    // Splice a garbage line into the middle.
                    let junk = b"}}%% not a sample {{\n";
                    let at = rng.gen_range(0..bytes.len());
                    let mut spliced = bytes[..at].to_vec();
                    spliced.extend_from_slice(junk);
                    spliced.extend_from_slice(&bytes[at..]);
                    bytes = spliced;
                }
            }
            let corrupted = String::from_utf8_lossy(&bytes);
            let scrape = parse_prometheus(&corrupted);
            assert!(
                scrape.samples.len() <= baseline + 1,
                "corruption cannot invent more than one accidental sample"
            );
            for skipped in &scrape.skipped {
                assert!(!skipped.reason.is_empty());
                assert!(skipped.line_no >= 1);
            }
        }
    }

    #[test]
    fn json_rendering_is_balanced_and_contains_values() {
        let r = Registry::new();
        r.counter("cchunter_j_total", "").inc_by(2);
        let f = r.gauge_family("cchunter_j_conf", "", "pair");
        f.with_label("p\"0").set(0.5);
        let h = r.histogram_family("cchunter_j_lat", "", "pair", &[1.0]);
        h.with_label("p0").observe(3.0);
        let json = r.render_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"cchunter_j_total\": 2"));
        assert!(json.contains("\"p\\\"0\": 0.5"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn default_registry_is_shared() {
        let a = default_registry();
        let b = default_registry();
        let c = a.counter("cchunter_default_shared_total", "");
        c.inc();
        assert_eq!(b.counter("cchunter_default_shared_total", "").get(), 1);
    }
}
