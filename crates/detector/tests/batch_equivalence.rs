//! Equivalence properties for the batched analysis engine (PR 7).
//!
//! The batch paths — planner-cached FFT autocorrelograms, lane-accumulator
//! distance kernels, the arena/view zero-copy train storage, and the
//! run-length density fast path — all promise *identical or ≤1e-9* results
//! versus the simple scalar/owned formulations. These tests hold them to it
//! across seeded random shapes, so any future "optimization" that changes
//! numerics fails loudly.

use cchunter_detector::autocorr::Autocorrelogram;
use cchunter_detector::batch::{sq_dist, sq_dist_scalar};
use cchunter_detector::cluster::kmeans;
use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cchunter_detector::events::{EventTrain, EventTrainArena};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 32;

/// A random well-formed (sorted) weighted train.
fn random_train(rng: &mut SmallRng, max_len: usize, horizon: u64, max_weight: u32) -> EventTrain {
    let len = rng.gen_range(0..max_len);
    let mut times: Vec<u64> = (0..len).map(|_| rng.gen_range(0..horizon)).collect();
    times.sort_unstable();
    let mut train = EventTrain::new();
    for t in times {
        train.push(t, rng.gen_range(1..=max_weight));
    }
    train
}

#[test]
fn batched_autocorrelogram_matches_naive_per_series() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xBA7C_0000 + case);
        let count = rng.gen_range(1usize..6);
        let max_lag = rng.gen_range(1usize..48);
        let series: Vec<Vec<f64>> = (0..count)
            .map(|_| {
                let n = rng.gen_range(2usize..400);
                (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect()
            })
            .collect();
        let batched = Autocorrelogram::compute_batch(&series, max_lag);
        assert_eq!(batched.len(), series.len(), "case {case}");
        for (i, (b, s)) in batched.iter().zip(&series).enumerate() {
            let naive = Autocorrelogram::compute_naive(s, max_lag);
            for lag in 0..=max_lag.min(s.len().saturating_sub(1)) {
                assert!(
                    (b.coefficient(lag) - naive.coefficient(lag)).abs() <= 1e-9,
                    "case {case} series {i} lag {lag}: batched {} vs naive {}",
                    b.coefficient(lag),
                    naive.coefficient(lag)
                );
            }
        }
    }
}

#[test]
fn lane_distance_kernel_matches_scalar_oracle() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD157_0000 + case);
        let dim = rng.gen_range(0usize..300);
        let a: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let fast = sq_dist(&a, &b);
        let slow = sq_dist_scalar(&a, &b);
        let scale = slow.abs().max(1.0);
        assert!(
            (fast - slow).abs() <= 1e-9 * scale,
            "case {case} dim {dim}: lanes {fast} vs scalar {slow}"
        );
    }
}

#[test]
fn batched_kmeans_assignments_are_nearest_by_scalar_distance() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x6B3A_0000 + case);
        let n = rng.gen_range(2usize..60);
        let dim = rng.gen_range(1usize..40);
        let k = rng.gen_range(1usize..5);
        let features: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..16.0)).collect())
            .collect();
        let clustering = kmeans(&features, k, 0x5EED ^ case, 30);
        for (i, f) in features.iter().enumerate() {
            let assigned = clustering.assignments[i];
            let d_assigned = sq_dist_scalar(f, &clustering.centroids[assigned]);
            for centroid in &clustering.centroids {
                let d = sq_dist_scalar(f, centroid);
                assert!(
                    d_assigned <= d + 1e-9 * d.abs().max(1.0),
                    "case {case} point {i}: assigned dist {d_assigned} beats {d}"
                );
            }
        }
    }
}

/// Naive per-window density reference: spread each weighted run over
/// consecutive cycles, count per window in a map, bin with saturation.
fn naive_histogram(train: &EventTrain, delta_t: u64, start: u64, end: u64) -> Vec<u64> {
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (time, weight) in train.iter() {
        if time < start || time >= end {
            continue;
        }
        for c in 0..weight as u64 {
            let t = time + c;
            if t >= end {
                break;
            }
            *counts.entry((t - start) / delta_t).or_insert(0) += 1;
        }
    }
    let total_windows = (end - start).div_ceil(delta_t);
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    let mut counted = 0u64;
    for (_, &c) in counts.iter() {
        bins[(c as usize).min(HISTOGRAM_BINS - 1)] += 1;
        counted += 1;
    }
    bins[0] += total_windows - counted;
    bins
}

#[test]
fn density_view_paths_match_naive_reference() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xDE45_0000 + case);
        // Half the cases all-unit weights (run-length fast path), half
        // weighted runs (dense/sparse slow path).
        let max_weight = if case % 2 == 0 { 1 } else { 40 };
        let train = random_train(&mut rng, 200, 20_000, max_weight);
        let delta_t = rng.gen_range(1u64..500);
        let start = rng.gen_range(0u64..5_000);
        let end = start + rng.gen_range(1u64..20_000);
        let expected = naive_histogram(&train, delta_t, start, end);
        let owned = DensityHistogram::from_train(&train, delta_t, start, end);
        let viewed = DensityHistogram::from_view(train.as_view(), delta_t, start, end);
        assert_eq!(owned.bins(), &expected[..], "case {case} owned path");
        assert_eq!(viewed.bins(), &expected[..], "case {case} view path");
        assert_eq!(
            owned.total_windows(),
            (end - start).div_ceil(delta_t),
            "case {case}"
        );
    }
}

#[test]
fn arena_views_match_owned_trains() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA5E4_0000 + case);
        let trains: Vec<EventTrain> = (0..rng.gen_range(1usize..8))
            .map(|_| random_train(&mut rng, 120, 50_000, 8))
            .collect();
        let mut arena = EventTrainArena::new();
        for t in &trains {
            arena.push_train(t);
        }
        assert_eq!(arena.trains(), trains.len(), "case {case}");
        for (i, owned) in trains.iter().enumerate() {
            let view = arena.view(i);
            assert_eq!(view.times(), owned.times(), "case {case} train {i}");
            assert_eq!(view.weights(), owned.weights(), "case {case} train {i}");
            assert_eq!(view.total_events(), owned.total_events(), "case {case}");
            assert_eq!(view.span(), owned.span(), "case {case}");

            // window(): the borrowed window must materialize to the exact
            // owned window, and mean_rate must agree bit-for-bit.
            for _ in 0..4 {
                let a = rng.gen_range(0u64..60_000);
                let b = rng.gen_range(0u64..60_000);
                let (lo, hi) = (a.min(b), a.max(b));
                assert_eq!(
                    view.window(lo, hi).to_owned(),
                    owned.window(lo, hi),
                    "case {case} train {i} window [{lo},{hi})"
                );
                assert_eq!(
                    view.mean_rate(lo, hi).to_bits(),
                    owned.mean_rate(lo, hi).to_bits(),
                    "case {case} train {i} mean_rate [{lo},{hi})"
                );
            }

            // windows(): same partition, zero-copy.
            let span_end = owned.span().map_or(1_000, |(_, last)| last + 1);
            let w = rng.gen_range(1u64..10_000);
            let borrowed = view.windows(0, span_end, w);
            let cloned = owned.windows(0, span_end, w);
            assert_eq!(borrowed.len(), cloned.len(), "case {case} train {i}");
            for (bv, cv) in borrowed.iter().zip(&cloned) {
                assert_eq!(&bv.to_owned(), cv, "case {case} train {i}");
            }
        }
    }
}

#[test]
fn arena_incremental_push_matches_event_train_push() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA9C4_0000 + case);
        let mut arena = EventTrainArena::new();
        let idx = arena.begin_train();
        let mut owned = EventTrain::new();
        let mut t = 0u64;
        for _ in 0..rng.gen_range(0usize..200) {
            t += rng.gen_range(0u64..100);
            let w = rng.gen_range(1u32..6);
            arena.push(t, w).expect("monotonic push");
            owned.push(t, w);
        }
        let view = arena.view(idx);
        assert_eq!(view.times(), owned.times(), "case {case}");
        assert_eq!(view.total_events(), owned.total_events(), "case {case}");

        // Backwards time within a train is rejected exactly like
        // EventTrain::try_push; other trains are unaffected.
        if !view.is_empty() {
            let last = view.times()[view.len() - 1];
            if last > 0 {
                assert!(arena.push(last - 1, 1).is_err(), "case {case}");
            }
        }
        let second = arena.begin_train();
        arena.push(0, 1).expect("fresh train restarts the clock");
        assert_eq!(arena.view(second).times(), &[0], "case {case}");
        assert_eq!(arena.view(idx).times(), owned.times(), "case {case}");
    }
}
