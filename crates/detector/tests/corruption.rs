//! Corruption-robustness fuzzing for every persistence reader.
//!
//! A checkpoint or trace that survived a crash, a torn write, or a bad
//! disk must never panic the recovery path: every reader has to return a
//! typed error (or, rarely, a still-valid parse) on arbitrary corruption,
//! with allocation bounded by the input size.
//!
//! The harness is a hand-rolled deterministic generator (no crates.io
//! access for proptest/cargo-fuzz): each case seeds a PRNG, picks a valid
//! artifact, applies a random corruption (truncation, bit flips, absurd
//! values, emptying, garbage splices), and feeds it to the reader under
//! `catch_unwind`. Assertion messages carry the case seed so failures
//! reproduce directly. `CCHUNTER_FUZZ_QUICK=1` trims the case count for
//! CI smoke runs.

use cchunter_detector::auditor::ConflictRecord;
use cchunter_detector::online::{Harvest, OnlineContentionDetector, OnlineOscillationDetector};
use cchunter_detector::store::CheckpointStore;
use cchunter_detector::trace::{
    read_checkpoint, read_conflicts, read_event_train, write_checkpoint, write_conflicts,
    write_event_train, Checkpoint, CheckpointSlot,
};
use cchunter_detector::{
    CcHunterConfig, DensityHistogram, DetectorError, EventTrain, HISTOGRAM_BINS,
};
use cchunter_detector::{StorageFaultClass, StorageFaultConfig, StorageFaultInjector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Full corpus size; CI smoke mode trims it.
fn cases() -> u64 {
    if std::env::var("CCHUNTER_FUZZ_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        50
    } else {
        200
    }
}

// ---------------------------------------------------------------------
// Valid artifacts to corrupt.
// ---------------------------------------------------------------------

fn contention_checkpoint_text(rng: &mut SmallRng) -> Vec<u8> {
    let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 16).unwrap();
    for _ in 0..rng.gen_range(1usize..20) {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = rng.gen_range(1_000u64..3_000);
        bins[rng.gen_range(10usize..HISTOGRAM_BINS)] = rng.gen_range(1u64..200);
        let histogram = DensityHistogram::from_bins(bins, 100_000).unwrap();
        match rng.gen_range(0u32..3) {
            0 => daemon.push_quantum(Harvest::Complete(histogram)),
            1 => daemon.push_quantum(Harvest::Partial {
                histogram,
                lost_fraction: rng.gen_range(0.0..0.9),
            }),
            _ => daemon.push_quantum(Harvest::Missed),
        };
    }
    let mut out = Vec::new();
    daemon.checkpoint(&mut out).unwrap();
    out
}

fn oscillation_checkpoint_text(rng: &mut SmallRng) -> Vec<u8> {
    let capacity = rng.gen_range(4usize..32);
    let slots = (0..rng.gen_range(1usize..capacity))
        .map(|_| CheckpointSlot {
            weight: rng.gen_range(0.0..=1.0),
            histogram: None,
            oscillatory: if rng.gen_bool(0.2) {
                None
            } else {
                Some(rng.gen_bool(0.5))
            },
        })
        .collect();
    let checkpoint = Checkpoint {
        kind: "oscillation".to_string(),
        capacity,
        slots,
    };
    let mut out = Vec::new();
    write_checkpoint(&checkpoint, &mut out).unwrap();
    out
}

fn event_train_text(rng: &mut SmallRng) -> Vec<u8> {
    let mut t = 0u64;
    let mut train = EventTrain::new();
    for _ in 0..rng.gen_range(0usize..64) {
        t += rng.gen_range(1u64..10_000);
        train.push(t, rng.gen_range(1u32..4));
    }
    let mut out = Vec::new();
    write_event_train(&train, &mut out).unwrap();
    out
}

fn conflicts_text(rng: &mut SmallRng) -> Vec<u8> {
    let mut cycle = 0u64;
    let records: Vec<_> = (0..rng.gen_range(0usize..64))
        .map(|_| {
            cycle += rng.gen_range(1u64..5_000);
            ConflictRecord {
                cycle,
                replacer: rng.gen_range(0u32..8) as u8,
                victim: rng.gen_range(0u32..8) as u8,
            }
        })
        .collect();
    let mut out = Vec::new();
    write_conflicts(&records, &mut out).unwrap();
    out
}

// ---------------------------------------------------------------------
// Corruptions.
// ---------------------------------------------------------------------

/// Applies one random corruption; returns a short label for diagnostics.
fn corrupt(rng: &mut SmallRng, bytes: &mut Vec<u8>) -> &'static str {
    match rng.gen_range(0u32..6) {
        0 => {
            bytes.clear();
            "emptied"
        }
        1 => {
            let keep = rng.gen_range(0..=bytes.len());
            bytes.truncate(keep);
            "truncated"
        }
        2 => {
            if !bytes.is_empty() {
                for _ in 0..rng.gen_range(1u32..9) {
                    let i = rng.gen_range(0..bytes.len());
                    let bit = rng.gen_range(0u32..8);
                    bytes[i] ^= 1 << bit;
                }
            }
            "bit-flipped"
        }
        3 => {
            // Splice an absurd numeric value over a random digit run.
            let absurd: &[u8] = match rng.gen_range(0u32..4) {
                0 => b"99999999999999999999999999",
                1 => b"18446744073709551615",
                2 => b"-1",
                _ => b"1e308",
            };
            if let Some(pos) = bytes.iter().position(|b| b.is_ascii_digit()) {
                let end = bytes[pos..]
                    .iter()
                    .position(|b| !b.is_ascii_digit())
                    .map(|off| pos + off)
                    .unwrap_or(bytes.len());
                bytes.splice(pos..end, absurd.iter().copied());
            }
            "absurd-value"
        }
        4 => {
            // Random garbage inserted at a random offset.
            let at = rng.gen_range(0..=bytes.len());
            let garbage: Vec<u8> = (0..rng.gen_range(1usize..40))
                .map(|_| rng.gen_range(0u32..256) as u8)
                .collect();
            bytes.splice(at..at, garbage);
            "garbage-spliced"
        }
        _ => {
            // Duplicate a random span (repeated lines, torn rewrites).
            if !bytes.is_empty() {
                let a = rng.gen_range(0..bytes.len());
                let b = rng.gen_range(a..=bytes.len());
                let span: Vec<u8> = bytes[a..b].to_vec();
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, span);
            }
            "span-duplicated"
        }
    }
}

/// Runs `parse` on the corrupted bytes and asserts it neither panics nor
/// allocates unboundedly (completion within the harness is the proxy:
/// none of the readers pre-allocate from parsed values).
fn assert_total<T, E: std::fmt::Debug>(
    label: &str,
    case: u64,
    what: &'static str,
    bytes: &[u8],
    parse: impl FnOnce(&[u8]) -> Result<T, E>,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = parse(bytes);
    }));
    assert!(
        outcome.is_ok(),
        "case {case}: {what} reader panicked on {label} input ({} bytes)",
        bytes.len()
    );
}

#[test]
fn corrupted_checkpoints_never_panic() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xC0_44F7 + case);
        let mut bytes = if rng.gen_bool(0.5) {
            contention_checkpoint_text(&mut rng)
        } else {
            oscillation_checkpoint_text(&mut rng)
        };
        let label = corrupt(&mut rng, &mut bytes);
        assert_total(label, case, "read_checkpoint", &bytes, |b| {
            read_checkpoint(b)
        });
        assert_total(label, case, "contention restore", &bytes, |b| {
            OnlineContentionDetector::restore(CcHunterConfig::default(), b)
        });
        assert_total(label, case, "oscillation restore", &bytes, |b| {
            OnlineOscillationDetector::restore(CcHunterConfig::default(), b)
        });
    }
}

#[test]
fn corrupted_event_trains_never_panic() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xE7_0441 + case);
        let mut bytes = event_train_text(&mut rng);
        let label = corrupt(&mut rng, &mut bytes);
        assert_total(label, case, "read_event_train", &bytes, |b| {
            read_event_train(b)
        });
    }
}

#[test]
fn corrupted_conflict_traces_never_panic() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xC0_4F11 + case);
        let mut bytes = conflicts_text(&mut rng);
        let label = corrupt(&mut rng, &mut bytes);
        assert_total(label, case, "read_conflicts", &bytes, |b| read_conflicts(b));
    }
}

/// A writer dying *mid-frame* leaves the newest generation truncated or
/// bit-flipped at an arbitrary byte offset — header, length field, CRC,
/// or payload, wherever the crash landed. With an older generation kept,
/// the store must roll back to the last durable one: never panic, never
/// serve a half-written frame as current state, never lose the durable
/// predecessor. One third of the corpus tears the write *through the
/// storage-fault injector* instead of editing bytes after the fact — the
/// injected torn write reports success to the caller, which is exactly
/// the failure the CRC envelope exists to catch.
#[test]
fn midwrite_corruption_at_any_offset_rolls_back_to_durable_generation() {
    let dir = std::env::temp_dir().join(format!(
        "cchunter-midwrite-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let injector = StorageFaultInjector::new(StorageFaultConfig::none(), 0x70_44);
    let store =
        CheckpointStore::open_with_medium(&dir, 3, std::sync::Arc::new(injector.clone())).unwrap();
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x41D_F0F5 + case);
        let name = format!("pair-{case}");
        let durable = contention_checkpoint_text(&mut rng);
        let durable_generation = store.save(&name, &durable).unwrap();
        let newer = contention_checkpoint_text(&mut rng);
        let (newer_generation, label, offset) = match rng.gen_range(0u32..3) {
            0 => {
                // The nastiest path: the medium itself tears the write to
                // a prefix and still reports success.
                injector.set_config(
                    StorageFaultConfig::none().with_rate(StorageFaultClass::TornWrite, 1.0),
                );
                let generation = store.save(&name, &newer).unwrap();
                injector.set_config(StorageFaultConfig::none());
                (generation, "injector-torn", 0usize)
            }
            kind => {
                let generation = store.save(&name, &newer).unwrap();
                let path = store.dir().join(format!("{name}.g{generation:08}.ckpt"));
                let mut bytes = std::fs::read(&path).unwrap();
                let offset = rng.gen_range(0..bytes.len());
                let label = if kind == 1 {
                    bytes.truncate(offset);
                    "torn-at-offset"
                } else {
                    let bit = rng.gen_range(0u32..8);
                    bytes[offset] ^= 1 << bit;
                    "flipped-at-offset"
                };
                std::fs::write(&path, &bytes).unwrap();
                (generation, label, offset)
            }
        };
        assert!(newer_generation > durable_generation);
        let loaded = catch_unwind(AssertUnwindSafe(|| store.load_latest(&name)))
            .unwrap_or_else(|_| {
                panic!("case {case}: store panicked on {label} frame (byte {offset})")
            })
            .unwrap_or_else(|e| {
                panic!("case {case}: {label} at byte {offset} was fatal, not rolled back: {e}")
            })
            .unwrap_or_else(|| {
                panic!("case {case}: {label} at byte {offset} lost the durable generation")
            });
        assert_eq!(
            loaded.generation, durable_generation,
            "case {case}: {label} at byte {offset} must roll back to the durable generation"
        );
        assert_eq!(
            loaded.rolled_back, 1,
            "case {case}: the rollback must be surfaced, not silent"
        );
        assert_eq!(
            loaded.payload, durable,
            "case {case}: the durable payload must survive byte-exact"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_frames_are_typed_not_fatal() {
    let dir = std::env::temp_dir().join(format!(
        "cchunter-corruption-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // keep=1: no older generation to roll back to, so corruption must be
    // reported, not silently absorbed.
    let store = CheckpointStore::open(&dir, 1).unwrap();
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x57_04E5 + case);
        let payload = contention_checkpoint_text(&mut rng);
        let name = format!("fuzz-{case}");
        let generation = store.save(&name, &payload).unwrap();
        let path = store.dir().join(format!("{name}.g{generation:08}.ckpt"));
        let mut bytes = std::fs::read(&path).unwrap();
        let before = bytes.clone();
        let label = corrupt(&mut rng, &mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| store.load_latest(&name)));
        match outcome {
            Err(_) => panic!("case {case}: store reader panicked on {label} frame"),
            Ok(Ok(Some(loaded))) => {
                // The corruption missed the frame's invariants (e.g. a
                // no-op splice): the payload must then be byte-exact.
                assert_eq!(
                    loaded.payload, payload,
                    "case {case}: {label} frame decoded to altered payload"
                );
                assert!(bytes == before, "case {case}: altered bytes passed CRC");
            }
            Ok(Ok(None)) => {
                // Unrecognizable file name after corruption of the dir
                // scan path cannot happen (we corrupt contents, not the
                // name); an empty result would mean the store lost a
                // generation it just wrote.
                panic!("case {case}: store silently dropped the {label} generation");
            }
            Ok(Err(e)) => {
                assert!(
                    matches!(e, DetectorError::CorruptCheckpoint(_)),
                    "case {case}: {label} frame produced untyped error {e}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
