//! Property tests for the observability layer: counter exactness under the
//! worker-pool concurrency the audit engine actually uses, Prometheus
//! exposition round-tripping through a parser, and supervisor
//! kill-and-restore preserving monotonic counters from the persisted
//! snapshot.

use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cchunter_detector::metrics::{parse_prometheus, Registry, LATENCY_BUCKETS_US};
use cchunter_detector::online::Harvest;
use cchunter_detector::span::Tracer;
use cchunter_detector::store::CheckpointStore;
use cchunter_detector::supervisor::{PairInput, ProbeFault, Supervisor, SupervisorConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cchunter-metrics-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Counters and histograms are exact (no lost updates) under `par_map` —
/// the same worker-pool fan-out `try_audit_pairs` uses — for arbitrary
/// seeded increment schedules.
#[test]
fn counters_are_exact_under_par_map_concurrency() {
    let mut rng = SmallRng::seed_from_u64(0xC0FF_EE00);
    for trial in 0..4 {
        let registry = Registry::new();
        let counter = registry.counter("test_hits_total", "test");
        let hist = registry.histogram("test_latency_us", "test", &LATENCY_BUCKETS_US);
        let family = registry.counter_family("test_pair_hits_total", "test", "pair");
        let jobs: Vec<(u64, usize)> = (0..64)
            .map(|_| (rng.gen_range(1..200u64), rng.gen_range(0..5usize)))
            .collect();
        let expected_total: u64 = jobs.iter().map(|(n, _)| n).sum();
        let counter = Arc::new(counter);
        let hist = Arc::new(hist);
        let family = Arc::new(family);
        let results = threadpool::par_map(&jobs, {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            let family = Arc::clone(&family);
            move |&(n, pair)| {
                for i in 0..n {
                    counter.inc();
                    hist.observe((i % 97) as f64);
                    family.with_label(&format!("pair-{pair}")).inc();
                }
                n
            }
        });
        assert_eq!(results.iter().sum::<u64>(), expected_total, "trial {trial}");
        assert_eq!(counter.get(), expected_total, "trial {trial}");
        assert_eq!(hist.count(), expected_total, "trial {trial}");
        let per_pair: u64 = family.snapshot().iter().map(|(_, c)| c.get()).sum();
        assert_eq!(per_pair, expected_total, "trial {trial}");
    }
}

/// Counter exactness holds through `par_catch_map` even when a fraction of
/// jobs panic mid-increment: completed increments are never lost, and the
/// total matches exactly what ran.
#[test]
fn counters_survive_contained_panics_under_par_catch_map() {
    let registry = Registry::new();
    let counter = Arc::new(registry.counter("test_survivor_total", "test"));
    let jobs: Vec<u64> = (0..48).collect();
    let results = threadpool::par_catch_map(&jobs, {
        let counter = Arc::clone(&counter);
        move |&job| {
            // Increment first, then panic on every 7th job: the increment
            // must still be visible (counters are atomics, not
            // transactional).
            counter.inc();
            if job % 7 == 0 {
                panic!("chaos job {job}");
            }
            job
        }
    });
    let panicked = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(panicked, 7, "jobs 0,7,..,42 panic");
    assert_eq!(counter.get(), jobs.len() as u64);
}

/// Prometheus text exposition round-trips through the parser: every
/// instrument kind (counter, gauge, histogram, labeled families) comes
/// back with its exact value, for arbitrary seeded contents.
#[test]
fn prometheus_exposition_round_trips_through_parser() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_CAFE);
    for trial in 0..8 {
        let registry = Registry::new();
        let counter = registry.counter("rt_ops_total", "ops");
        let gauge = registry.gauge("rt_level", "level");
        let hist = registry.histogram("rt_latency_us", "latency", &LATENCY_BUCKETS_US);
        let family = registry.counter_family("rt_pair_ops_total", "per-pair ops", "pair");

        let n = rng.gen_range(1..500u64);
        counter.inc_by(n);
        let level = rng.gen_range(-50.0..50.0f64);
        gauge.set(level);
        let observations = rng.gen_range(1..100usize);
        for _ in 0..observations {
            hist.observe(rng.gen_range(0.0..5_000.0));
        }
        let pairs = rng.gen_range(1..6usize);
        let mut per_pair = Vec::new();
        for p in 0..pairs {
            let hits = rng.gen_range(1..50u64);
            family.with_label(&format!("p{p}")).inc_by(hits);
            per_pair.push(hits);
        }

        let text = registry.render_prometheus();
        let scrape = parse_prometheus(&text);
        assert!(scrape.is_clean(), "trial {trial}: {:?}", scrape.skipped);
        let parsed = scrape.samples;
        let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
            parsed
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels.len() == labels.len()
                        && labels
                            .iter()
                            .all(|(k, v)| s.labels.iter().any(|(pk, pv)| pk == k && pv == v))
                })
                .unwrap_or_else(|| panic!("trial {trial}: sample {name} {labels:?} missing"))
                .value
        };

        assert_eq!(find("rt_ops_total", &[]) as u64, n, "trial {trial}");
        assert!(
            (find("rt_level", &[]) - level).abs() < 1e-9,
            "trial {trial}"
        );
        assert_eq!(
            find("rt_latency_us_count", &[]) as u64,
            observations as u64,
            "trial {trial}"
        );
        assert!(
            (find("rt_latency_us_sum", &[]) - hist.sum()).abs() < 1e-6,
            "trial {trial}"
        );
        // The +Inf bucket always equals the count.
        assert_eq!(
            find("rt_latency_us_bucket", &[("le", "+Inf")]) as u64,
            observations as u64,
            "trial {trial}"
        );
        for (p, hits) in per_pair.iter().enumerate() {
            let label = format!("p{p}");
            assert_eq!(
                find("rt_pair_ops_total", &[("pair", label.as_str())]) as u64,
                *hits,
                "trial {trial}"
            );
        }
    }
}

/// Kill-and-restore property for fleet metrics: after a crash, restoring
/// from the persisted snapshot re-seeds the monotonic counters (ticks,
/// per-pair failures/retries) so they never move backwards, at arbitrary
/// kill points.
#[test]
fn restore_reseeds_monotonic_counters_at_arbitrary_kill_points() {
    let mut probe = |pair: usize, tick: u64, attempt: u32| -> Result<PairInput, ProbeFault> {
        // Pair 0 fails every attempt on each 5th tick (a hard failure) and
        // misses only its first attempt on each 3rd (a retried slip), so
        // the failure AND retry counters both advance.
        if pair == 0 && tick.is_multiple_of(5) {
            return Err(ProbeFault {
                reason: "hard probe fault".to_string(),
            });
        }
        if pair == 0 && attempt == 0 && tick.is_multiple_of(3) {
            return Err(ProbeFault {
                reason: "transient slip".to_string(),
            });
        }
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_400 + tick % 7;
        bins[20] = 150;
        let hist = DensityHistogram::from_bins(bins, 100_000).unwrap();
        Ok(PairInput::Harvest(Harvest::Complete(hist)))
    };
    let config = || SupervisorConfig {
        window_quanta: 16,
        ..SupervisorConfig::default()
    };
    let build = |registry: Registry| {
        let mut fleet = Supervisor::new(config())
            .unwrap()
            .with_registry(registry)
            .with_tracer(Tracer::disabled());
        fleet.add_contention_pair("flaky-bus").unwrap();
        fleet.add_contention_pair("steady-bus").unwrap();
        fleet
    };

    let mut rng = SmallRng::seed_from_u64(0xDEAD_1E55);
    for trial in 0..4 {
        let kill_at = rng.gen_range(3..20u64);
        let dir = temp_dir(&format!("reseed-{trial}"));
        let store = CheckpointStore::open(&dir, 3).unwrap();
        let mut fleet = build(Registry::new()).with_store(store);
        for _ in 0..kill_at {
            fleet.tick(&mut probe);
        }
        fleet.checkpoint().unwrap();
        let before = fleet.metrics_snapshot();
        assert!(before.failures > 0, "trial {trial}: probe plan must fail");
        drop(fleet);

        // A "new process": fresh registry, state only from the store.
        let fresh = Registry::new();
        let (mut restored, _report) = Supervisor::restore_with_registry(
            config(),
            CheckpointStore::open(&dir, 3).unwrap(),
            fresh.clone(),
        )
        .unwrap();
        let after = restored.metrics_snapshot();
        assert_eq!(after.ticks, before.ticks, "trial {trial}");
        assert_eq!(after.failures, before.failures, "trial {trial}");
        assert_eq!(after.retries, before.retries, "trial {trial}");

        // The persisted counters are visible in the fresh registry's
        // exposition, and keep counting monotonically from there.
        let text = fresh.render_prometheus();
        let scrape = parse_prometheus(&text);
        assert!(scrape.is_clean(), "trial {trial}: {:?}", scrape.skipped);
        let ticks_sample = scrape
            .samples
            .iter()
            .find(|s| s.name == "cchunter_supervisor_ticks_total")
            .expect("seeded tick counter is exposed");
        assert_eq!(ticks_sample.value as u64, kill_at, "trial {trial}");

        for _ in 0..5 {
            restored.tick(&mut probe);
        }
        let later = restored.metrics_snapshot();
        assert_eq!(later.ticks, kill_at + 5, "trial {trial}");
        assert!(later.failures >= after.failures, "trial {trial}");
        // 5 post-restore ticks x 2 pairs, minus at most one failing tick
        // for the flaky pair.
        assert!(
            later.analyzed >= 9,
            "trial {trial}: post-restore audits must be counted"
        );
        cleanup(&dir);
    }
}
