//! Integration tests for the sharded fleet: a shard killed mid-checkpoint
//! rolls back to its last good generation on a survivor, active containment
//! re-asserts through the adoptive shard's enforcer, and the rendezvous
//! placement is stable and minimal under shard-count-preserving restarts.

use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cchunter_detector::mitigation::{ApplyError, MitigationEnforcer, MitigationLevel};
use cchunter_detector::online::Harvest;
use cchunter_detector::shard::{
    pair_key, rendezvous_shard, ShardHealth, ShardedFleet, ShardedFleetConfig,
};
use cchunter_detector::supervisor::{PairInput, ProbeFault, SupervisorConfig};
use cchunter_detector::{DetectorError, Verdict};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cchunter-sharding-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// A covert-looking per-quantum histogram, varied by tick.
fn covert_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_400 + (tick % 7) * 3;
    bins[19] = 20;
    bins[20] = 150 + (tick % 5);
    bins[21] = 25;
    DensityHistogram::from_bins(bins, 100_000).unwrap()
}

/// A benign per-quantum histogram.
fn quiet_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_490 + (tick % 9);
    bins[1] = 5;
    DensityHistogram::from_bins(bins, 100_000).unwrap()
}

/// An enforcer whose actuation log is shared with the test: each shard
/// gets one, so the test can see *which* failure domain asserted a rung.
type EnforcerLog = Arc<Mutex<Vec<(usize, MitigationLevel)>>>;

#[derive(Clone)]
struct SharedEnforcer {
    log: EnforcerLog,
}

impl SharedEnforcer {
    fn new() -> (Self, EnforcerLog) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (SharedEnforcer { log: log.clone() }, log)
    }
}

impl MitigationEnforcer for SharedEnforcer {
    fn apply(&mut self, pair: usize, level: MitigationLevel) -> Result<(), ApplyError> {
        self.log.lock().unwrap().push((pair, level));
        Ok(())
    }

    fn release(&mut self, _pair: usize, _level: MitigationLevel) -> Result<(), ApplyError> {
        Ok(())
    }
}

fn fleet_config(shards: usize) -> ShardedFleetConfig {
    ShardedFleetConfig {
        shards,
        base: SupervisorConfig {
            window_quanta: 8,
            ..SupervisorConfig::default()
        },
        ..ShardedFleetConfig::default()
    }
}

/// Pair 0 carries a covert channel; everything else is quiet.
fn probe(pair: usize, tick: u64, _attempt: u32) -> Result<PairInput, ProbeFault> {
    Ok(PairInput::Harvest(Harvest::Complete(if pair == 0 {
        covert_histogram(tick)
    } else {
        quiet_histogram(tick)
    })))
}

/// Flips one payload byte in every checkpoint file of the newest
/// generation in `dir` — a shard that died mid-checkpoint-write, leaving
/// the whole newest generation torn. Returns how many files were hit.
fn corrupt_newest_generation(dir: &Path) -> usize {
    let mut newest: u64 = 0;
    let mut files: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let Some(stem) = name.strip_suffix(".ckpt") else {
            continue;
        };
        let Some(pos) = stem.rfind(".g") else {
            continue;
        };
        let Ok(generation) = stem[pos + 2..].parse::<u64>() else {
            continue;
        };
        newest = newest.max(generation);
        files.push((generation, path));
    }
    let mut hit = 0;
    for (generation, path) in files {
        if generation != newest {
            continue;
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        hit += 1;
    }
    assert!(hit > 0, "no newest-generation files found in {dir:?}");
    hit
}

/// Satellite 3: kill a shard mid-checkpoint-write (newest generation torn
/// across every entry), and the survivor restores the last good generation
/// via rollback; the contained covert pair re-asserts its containment
/// through the adoptive shard's enforcer.
#[test]
fn shard_death_mid_checkpoint_rolls_back_and_reasserts_containment() {
    let root = temp_dir("midwrite");
    let mut fleet = ShardedFleet::with_store_root(fleet_config(2), &root).unwrap();
    let mut logs = Vec::new();
    for shard in 0..fleet.shard_count() {
        let (enforcer, log) = SharedEnforcer::new();
        fleet.set_enforcer(shard, Box::new(enforcer)).unwrap();
        logs.push(log);
    }
    let covert = fleet
        .add_contention_pair("memory-bus: pid 17 <-> pid 23")
        .unwrap();
    assert_eq!(covert, 0);
    for pair in 1..6 {
        fleet
            .add_contention_pair(format!("divider: pid {pair} <-> pid {}", pair + 40))
            .unwrap();
    }

    // Convict and contain the covert pair on its home shard.
    for _ in 0..24 {
        fleet.tick(&mut probe);
    }
    let home = fleet.shard_of(covert).expect("pair is assigned");
    assert!(
        fleet.containment(covert).unwrap().is_active(),
        "covert pair should be contained before the kill: {:?}",
        fleet.containment(covert)
    );
    assert!(
        !logs[home].lock().unwrap().is_empty(),
        "the home shard's enforcer must have asserted the rung"
    );

    // A good checkpoint, some more progress, then a torn one: every entry
    // of the newest generation is corrupt, as if the shard died with the
    // write in flight.
    fleet.checkpoint().unwrap();
    for _ in 0..4 {
        fleet.tick(&mut probe);
    }
    fleet.checkpoint().unwrap();
    corrupt_newest_generation(&root.join(format!("shard-{home:02}")));

    let survivor = 1 - home;
    let survivor_log_before = logs[survivor].lock().unwrap().len();
    let report = fleet.kill_shard(home).unwrap();
    assert!(report.migrated > 0, "{report:?}");
    assert_eq!(report.orphaned, 0, "{report:?}");

    // The covert pair landed on the survivor, restored from the rolled-back
    // generation — not degraded, provenance recorded.
    let status = &fleet.pair_statuses()[covert];
    assert_eq!(status.shard, Some(survivor));
    let restored = status
        .restored_from
        .expect("migrated pair must carry restore provenance");
    assert!(
        restored.rolled_back >= 1,
        "the torn newest generation must be rolled over: {restored:?}"
    );
    assert!(
        !status.degraded,
        "a good prior generation existed, the pair must not degrade"
    );
    // Until the survivor's first analysis the pair stands Inconclusive —
    // a migration must never read as an acquittal.
    assert_ne!(status.verdict, Verdict::Clean);

    // The restored containment re-asserts through the *survivor's*
    // enforcer on the next tick — active containment never silently lapses
    // across a migration.
    assert!(fleet.containment(covert).unwrap().is_active());
    fleet.tick(&mut probe);
    assert!(
        logs[survivor].lock().unwrap().len() > survivor_log_before,
        "adoptive shard's enforcer must re-assert the restored rung"
    );
    assert_eq!(fleet.shard_health(home), Some(ShardHealth::Dead));

    // And the channel keeps being convicted after the move.
    for _ in 0..8 {
        fleet.tick(&mut probe);
    }
    assert_eq!(
        fleet.pair_statuses()[covert].verdict,
        Verdict::CovertTimingChannel
    );
    cleanup(&root);
}

/// Two fleets must not interleave generations in one store root: the
/// second open fails with the typed busy error naming the owner.
#[test]
fn second_fleet_on_same_store_root_is_refused() {
    let root = temp_dir("busy");
    let fleet = ShardedFleet::with_store_root(fleet_config(2), &root).unwrap();
    let err = ShardedFleet::with_store_root(fleet_config(2), &root).unwrap_err();
    match err {
        DetectorError::StoreBusy { owner, .. } => assert_eq!(owner, "shard-00"),
        other => panic!("expected StoreBusy, got {other:?}"),
    }
    drop(fleet);
    // Releasing the first fleet releases the claims.
    let fleet = ShardedFleet::with_store_root(fleet_config(2), &root).unwrap();
    drop(fleet);
    cleanup(&root);
}

/// Satellite 4a: pair→shard assignment is a pure function of (label,
/// shard set) — a restart with the same shard count reproduces it exactly,
/// whatever order the pairs are added in.
#[test]
fn assignment_is_stable_across_shard_count_preserving_restarts() {
    let labels: Vec<String> = (0..96)
        .map(|i| format!("memory-bus: pid {i} <-> pid {}", i + 100))
        .collect();
    let mut first = ShardedFleet::new(fleet_config(8)).unwrap();
    for label in &labels {
        first.add_contention_pair(label.clone()).unwrap();
    }
    let homes: Vec<Option<usize>> = (0..labels.len()).map(|p| first.shard_of(p)).collect();
    drop(first);

    // Same shard count, reversed insertion order: same homes.
    let mut second = ShardedFleet::new(fleet_config(8)).unwrap();
    for label in labels.iter().rev() {
        second.add_contention_pair(label.clone()).unwrap();
    }
    for (i, label) in labels.iter().enumerate() {
        let rev_index = labels.len() - 1 - i;
        assert_eq!(
            second.shard_of(rev_index),
            homes[labels.len() - 1 - rev_index],
            "{label} moved across a restart"
        );
    }
}

/// Satellite 4b: removing one shard re-homes exactly that shard's pairs —
/// zero survivor churn for every choice of victim — and the per-death
/// movement averages to ≤ ⌈pairs/N⌉ across victims.
#[test]
fn removal_moves_only_the_victims_pairs() {
    const PAIRS: usize = 1_000;
    const SHARDS: usize = 8;
    let shards: Vec<usize> = (0..SHARDS).collect();
    let keys: Vec<u64> = (0..PAIRS)
        .map(|i| pair_key(&format!("l2-cache: pid {i} <-> pid {}", i * 7 + 3)))
        .collect();
    let full: Vec<usize> = keys
        .iter()
        .map(|&k| rendezvous_shard(k, &shards).unwrap())
        .collect();

    let mut total_moved = 0usize;
    for victim in 0..SHARDS {
        let remaining: Vec<usize> = shards.iter().copied().filter(|&s| s != victim).collect();
        let mut moved = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            let new_home = rendezvous_shard(k, &remaining).unwrap();
            if full[i] == victim {
                moved += 1;
            } else {
                assert_eq!(
                    new_home, full[i],
                    "pair {i} moved although its shard survived"
                );
            }
        }
        assert_eq!(
            moved,
            full.iter().filter(|&&s| s == victim).count(),
            "movement must equal the victim's population"
        );
        total_moved += moved;
    }
    let ceil_share = PAIRS.div_ceil(SHARDS);
    assert!(
        total_moved / SHARDS <= ceil_share,
        "average movement per death {} exceeds the fair share {ceil_share}",
        total_moved / SHARDS
    );
}

/// End to end: the same property holds inside a live fleet — killing one
/// shard leaves every surviving pair exactly where it was.
#[test]
fn live_kill_causes_zero_survivor_churn() {
    let mut fleet = ShardedFleet::new(fleet_config(4)).unwrap();
    for i in 0..64 {
        fleet
            .add_contention_pair(format!("memory-bus: pid {i} <-> pid {}", i + 100))
            .unwrap();
    }
    let before: Vec<Option<usize>> = (0..64).map(|p| fleet.shard_of(p)).collect();
    let victim = before[0].unwrap();
    fleet.kill_shard(victim).unwrap();
    for (pair, home) in before.iter().enumerate() {
        let home = home.unwrap();
        if home != victim {
            assert_eq!(
                fleet.shard_of(pair),
                Some(home),
                "pair {pair} churned although shard {home} survived"
            );
        } else {
            let new_home = fleet.shard_of(pair).expect("migrated, not orphaned");
            assert_ne!(new_home, victim);
        }
    }
}
