//! Integration tests for the supervised audit service: crash-safe
//! checkpointing, rollback over corrupt generations, and quarantine
//! isolation, driven end to end across the bus / divider / cache pair
//! kinds the paper audits.

use cchunter_detector::auditor::ConflictRecord;
use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cchunter_detector::mitigation::MitigationConfig;
use cchunter_detector::online::Harvest;
use cchunter_detector::policy::{BreakerState, QuarantineConfig};
use cchunter_detector::store::CheckpointStore;
use cchunter_detector::supervisor::{
    PairInput, PairKind, ProbeFault, Supervisor, SupervisorConfig,
};
use cchunter_detector::Verdict;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cchunter-supervision-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// A covert-looking per-quantum bus/divider histogram, varied by tick.
fn covert_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_400 + (tick % 7) * 3;
    bins[19] = 20;
    bins[20] = 150 + (tick % 5);
    bins[21] = 25;
    DensityHistogram::from_bins(bins, 100_000).unwrap()
}

/// A benign per-quantum histogram.
fn quiet_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_490 + (tick % 9);
    bins[1] = 5;
    DensityHistogram::from_bins(bins, 100_000).unwrap()
}

/// A strongly periodic conflict-record batch (a covert cache channel).
fn covert_conflicts(tick: u64) -> Vec<ConflictRecord> {
    (0..128u64)
        .map(|i| ConflictRecord {
            cycle: tick * 100_000 + i * 700,
            replacer: if i % 2 == 0 { 2 } else { 5 },
            victim: if i % 2 == 0 { 5 } else { 2 },
        })
        .collect()
}

/// The deterministic fleet input: pair 0 = covert bus, pair 1 = clean
/// divider, pair 2 = covert cache. A seeded per-(pair, tick) hash injects
/// transiently missed probes that resolve on retry, so the retry/backoff
/// path is exercised throughout.
fn probe(pair: usize, tick: u64, attempt: u32) -> Result<PairInput, ProbeFault> {
    let h = cchunter_detector::policy::mix_seed(0xFEED, pair as u64, tick);
    if attempt == 0 && h.is_multiple_of(11) {
        return Err(ProbeFault {
            reason: "transient harvest slip".to_string(),
        });
    }
    Ok(match pair {
        0 => PairInput::Harvest(Harvest::Complete(covert_histogram(tick))),
        1 => PairInput::Harvest(Harvest::Complete(quiet_histogram(tick))),
        _ => PairInput::Conflicts {
            records: covert_conflicts(tick),
            lost_fraction: if h.is_multiple_of(13) { 0.2 } else { 0.0 },
        },
    })
}

fn fleet_config() -> SupervisorConfig {
    SupervisorConfig {
        window_quanta: 16,
        ..SupervisorConfig::default()
    }
}

fn build_fleet(config: SupervisorConfig) -> Supervisor {
    let mut fleet = Supervisor::new(config).unwrap();
    fleet
        .add_contention_pair("memory-bus: pid 17 <-> pid 23")
        .unwrap();
    fleet
        .add_contention_pair("divider: pid 4 <-> pid 9")
        .unwrap();
    fleet
        .add_oscillation_pair("l2-cache: pid 17 <-> pid 23")
        .unwrap();
    fleet
}

fn final_verdicts(fleet: &Supervisor) -> Vec<Verdict> {
    fleet.pair_statuses().iter().map(|s| s.verdict).collect()
}

/// Kill-and-restore property: restarting the service from its checkpoint
/// store at an arbitrary quantum yields the same final verdicts as an
/// uninterrupted run.
#[test]
fn restart_at_arbitrary_quantum_preserves_final_verdicts() {
    const TICKS: u64 = 40;

    // The uninterrupted reference run.
    let mut reference = build_fleet(fleet_config());
    for _ in 0..TICKS {
        reference.tick(&mut probe);
    }
    let expected = final_verdicts(&reference);
    assert!(expected[0].is_covert(), "bus pair must read covert");
    assert_eq!(expected[1], Verdict::Clean, "divider pair must read clean");
    assert!(expected[2].is_covert(), "cache pair must read covert");

    let mut rng = SmallRng::seed_from_u64(0x04E5_70A7);
    for trial in 0..8 {
        let kill_at = rng.gen_range(1..TICKS);
        let dir = temp_dir(&format!("restart-{trial}"));
        let store = CheckpointStore::open(&dir, 3).unwrap();
        let mut fleet = build_fleet(fleet_config()).with_store(store);
        for _ in 0..kill_at {
            fleet.tick(&mut probe);
        }
        fleet.checkpoint().unwrap();
        // Simulated crash: the supervisor is dropped with all in-memory
        // state; a new process restores from the store alone.
        drop(fleet);
        let (mut restored, report) =
            Supervisor::restore(fleet_config(), CheckpointStore::open(&dir, 3).unwrap()).unwrap();
        assert_eq!(restored.tick_count(), kill_at, "trial {trial}");
        assert_eq!(report.total_rolled_back(), 0, "trial {trial}");
        for _ in kill_at..TICKS {
            restored.tick(&mut probe);
        }
        assert_eq!(
            final_verdicts(&restored),
            expected,
            "trial {trial}: restart at quantum {kill_at} diverged"
        );
        cleanup(&dir);
    }
}

/// Corrupting the newest on-disk generation is survived by rolling back
/// to the previous one, and the rollback is visible in the status — no
/// panic anywhere on the recovery path.
#[test]
fn corrupt_newest_generation_rolls_back_and_is_surfaced() {
    let dir = temp_dir("rollback");
    let store = CheckpointStore::open(&dir, 3).unwrap();
    let mut fleet = build_fleet(fleet_config()).with_store(store);
    for _ in 0..10 {
        fleet.tick(&mut probe);
    }
    fleet.checkpoint().unwrap();
    for _ in 0..5 {
        fleet.tick(&mut probe);
    }
    fleet.checkpoint().unwrap();
    drop(fleet);

    // Trash the newest generation of every entry (manifest included).
    let probe_store = CheckpointStore::open(&dir, 3).unwrap();
    for name in ["supervisor", "pair-0000", "pair-0001", "pair-0002"] {
        let newest = *probe_store.generations(name).unwrap().last().unwrap();
        let path = dir.join(format!("{name}.g{newest:08}.ckpt"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        let end = (mid + 16).min(bytes.len());
        for b in &mut bytes[mid..end] {
            *b ^= 0xA5;
        }
        std::fs::write(&path, &bytes).unwrap();
    }

    let (restored, report) =
        Supervisor::restore(fleet_config(), CheckpointStore::open(&dir, 3).unwrap()).unwrap();
    assert_eq!(
        restored.tick_count(),
        10,
        "must land on the older generation"
    );
    assert_eq!(report.manifest.rolled_back, 1);
    assert_eq!(report.total_rolled_back(), 4);
    for status in restored.pair_statuses() {
        let from = status
            .restored_from
            .expect("every pair carries its restore provenance");
        assert_eq!(
            from.rolled_back, 1,
            "pair {} must surface its rollback",
            status.index
        );
    }
    cleanup(&dir);
}

/// A pair whose probes fail 100% of the time is quarantined within the
/// failure window while every other pair's verdict stream is unchanged.
#[test]
fn fully_faulty_pair_is_quarantined_without_collateral() {
    let quarantine = QuarantineConfig {
        failure_window: 6,
        trip_threshold: 0.5,
        min_observations: 4,
        probe_interval: 16,
        recovery_successes: 2,
        confidence_decay: 0.7,
    };
    let config = SupervisorConfig {
        quarantine,
        ..fleet_config()
    };
    let run = |with_faulty: bool| {
        let mut fleet = Supervisor::new(config).unwrap();
        fleet.add_contention_pair("memory-bus").unwrap();
        let faulty = if with_faulty {
            Some(fleet.add_contention_pair("dead-monitor").unwrap())
        } else {
            None
        };
        fleet.add_oscillation_pair("l2-cache").unwrap();
        let healthy: Vec<usize> = (0..fleet.len()).filter(|&i| Some(i) != faulty).collect();
        let mut verdict_stream: Vec<Vec<Verdict>> = Vec::new();
        for _ in 0..20 {
            fleet.tick(&mut |pair: usize, tick: u64, _attempt: u32| {
                if Some(pair) == faulty {
                    Err(ProbeFault {
                        reason: "hardware interface wedged".to_string(),
                    })
                } else if pair == healthy[0] {
                    Ok(PairInput::Harvest(Harvest::Complete(covert_histogram(
                        tick,
                    ))))
                } else {
                    Ok(PairInput::Conflicts {
                        records: covert_conflicts(tick),
                        lost_fraction: 0.0,
                    })
                }
            });
            let statuses = fleet.pair_statuses();
            verdict_stream.push(healthy.iter().map(|&i| statuses[i].verdict).collect());
        }
        (fleet.pair_statuses(), verdict_stream, faulty, healthy)
    };

    let (with_statuses, with_stream, faulty, healthy) = run(true);
    let (_, without_stream, _, _) = run(false);
    let faulty = faulty.unwrap();

    assert_ne!(
        with_statuses[faulty].health,
        BreakerState::Closed,
        "100%-faulty pair must trip its breaker: {with_statuses:?}"
    );
    assert!(with_statuses[faulty].failures >= 4);
    assert_eq!(with_statuses[faulty].kind, PairKind::Contention);
    // Healthy pairs: identical verdict streams with or without the faulty
    // neighbor, and the expected detections.
    assert_eq!(with_stream, without_stream);
    assert!(with_statuses[healthy[0]].verdict.is_covert());
    assert!(with_statuses[healthy[1]].verdict.is_covert());
    assert_eq!(with_statuses[healthy[0]].health, BreakerState::Closed);
    assert_eq!(with_statuses[healthy[1]].health, BreakerState::Closed);
}

/// A pair that is both contained (convicted covert channel) and then
/// quarantined (wedged probe) must come back cleanly when its recovery
/// probes succeed: the breaker closes, full auditing resumes with
/// `Analyzed` outcomes, the containment state survives the quarantine
/// intact (no leaked or stuck state), the decayed confidence is restored
/// to the detector-reported value (no double decay), and every health
/// counter stays consistent between the per-pair status and the fleet
/// metrics snapshot.
#[test]
fn quarantined_pair_recovery_resumes_full_auditing_with_consistent_counters() {
    let quarantine = QuarantineConfig {
        failure_window: 6,
        trip_threshold: 0.5,
        min_observations: 4,
        probe_interval: 3,
        recovery_successes: 2,
        confidence_decay: 0.7,
    };
    let mitigation = MitigationConfig {
        convict_streak: 2,
        ..MitigationConfig::default()
    };
    let config = SupervisorConfig {
        quarantine,
        mitigation,
        ..fleet_config()
    };
    let mut fleet = Supervisor::new(config).unwrap();
    fleet
        .add_contention_pair("memory-bus: pid 17 <-> pid 23")
        .unwrap();
    let mut covert_probe = |_pair: usize, tick: u64, _attempt: u32| {
        Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(covert_histogram(
            tick,
        ))))
    };

    // Phase A: the channel is detected and contained.
    for _ in 0..12 {
        fleet.tick(&mut covert_probe);
    }
    let pre = &fleet.pair_statuses()[0];
    assert!(pre.verdict.is_covert());
    assert!(pre.containment.is_active(), "{:?}", pre.containment);
    let containment_before_quarantine = pre.containment;

    // Phase B: the probe wedges; the breaker trips and confidence decays.
    let mut wedged = |_pair: usize, _tick: u64, _attempt: u32| {
        Err::<PairInput, _>(ProbeFault {
            reason: "hardware interface wedged".to_string(),
        })
    };
    let mut decayed_confidence = f64::INFINITY;
    for _ in 0..12 {
        let report = fleet.tick(&mut wedged);
        if let cchunter_detector::supervisor::PairOutcome::Skipped { confidence } =
            report.reports[0].outcome
        {
            decayed_confidence = decayed_confidence.min(confidence);
        }
    }
    let during = fleet.pair_statuses();
    assert_ne!(during[0].health, BreakerState::Closed, "breaker tripped");
    assert!(
        decayed_confidence < 0.5,
        "quarantine skipped ticks and decayed confidence, got {decayed_confidence}"
    );
    assert_eq!(
        during[0].containment, containment_before_quarantine,
        "containment is frozen, not leaked, while quarantined"
    );

    // Phase C: the probe heals; recovery probes succeed and the breaker
    // closes again.
    let mut recovered_at = None;
    for i in 0..40 {
        fleet.tick(&mut covert_probe);
        if fleet.pair_statuses()[0].health == BreakerState::Closed {
            recovered_at = Some(i);
            break;
        }
    }
    assert!(recovered_at.is_some(), "breaker must close after recovery");

    // Full auditing resumes: every subsequent tick analyzes cleanly.
    for _ in 0..4 {
        let report = fleet.tick(&mut covert_probe);
        assert!(
            matches!(
                report.reports[0].outcome,
                cchunter_detector::supervisor::PairOutcome::Analyzed(_)
            ),
            "{:?}",
            report.reports[0].outcome
        );
    }

    let after = fleet.pair_statuses();
    let snapshot = fleet.metrics_snapshot();
    assert_eq!(after[0].health, BreakerState::Closed);
    assert_eq!(snapshot.quarantined_pairs, 0);
    assert!(after[0].verdict.is_covert(), "auditing is really back");
    // No double decay: the reported confidence snapped back to the
    // detector-reported value instead of continuing from the decayed floor.
    assert!(
        snapshot.mean_confidence > decayed_confidence + 0.2,
        "confidence restored after recovery: {} vs decayed {}",
        snapshot.mean_confidence,
        decayed_confidence
    );
    // The containment state is still active and never regressed below its
    // pre-quarantine rung (covert evidence continued, so it may have
    // escalated — but it must not have been dropped or wedged).
    assert!(after[0].containment.is_active());
    assert!(after[0].containment.level() >= containment_before_quarantine.level());
    assert_eq!(snapshot.contained_pairs, 1);
    // Health counters are consistent between the status table and the
    // fleet snapshot (single pair, so they must match exactly).
    assert_eq!(snapshot.failures, after[0].failures);
    assert_eq!(snapshot.panics, after[0].panics);
    assert_eq!(snapshot.deadline_misses, after[0].deadline_misses);
    assert_eq!(snapshot.retries, after[0].retries);
    assert!(snapshot.failures >= u64::from(quarantine.min_observations as u32));
    assert!(snapshot.quarantine_skips > 0);
    assert!(
        snapshot.breaker_transitions >= 2,
        "tripped and recovered: {}",
        snapshot.breaker_transitions
    );
    // The recovery is also visible in the Prometheus rendering.
    let prom = fleet.render_prometheus();
    assert!(prom.contains("cchunter_pair_quarantined{pair=\"memory-bus: pid 17 <-> pid 23\"} 0"));
}
