//! Property-based tests for the detector's core data structures and
//! invariants.

use cchunter_detector::auditor::{AuditorConfig, CcAuditor, HardwareUnit, Privilege};
use cchunter_detector::autocorr::Autocorrelogram;
use cchunter_detector::cluster::{discretize, kmeans};
use cchunter_detector::conflict::{
    ConflictClass, GenerationTracker, IdealLruTracker, MissClassifier,
};
use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cchunter_detector::events::EventTrain;
use cchunter_detector::BloomFilter;
use proptest::prelude::*;

/// Sorted event times within a bounded horizon.
fn times(max_len: usize, horizon: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..horizon, 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #[test]
    fn autocorrelation_is_bounded_and_one_at_lag_zero(
        samples in prop::collection::vec(-100.0f64..100.0, 3..200),
        max_lag in 1usize..64,
    ) {
        let c = Autocorrelogram::compute(&samples, max_lag);
        let variance: f64 = {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|x| (x - mean) * (x - mean)).sum()
        };
        if variance > 1e-9 {
            prop_assert!((c.coefficient(0) - 1.0).abs() < 1e-9);
        }
        for lag in 0..=max_lag {
            prop_assert!(c.coefficient(lag).abs() <= 1.0 + 1e-9, "lag {lag}");
        }
    }

    #[test]
    fn histogram_window_count_is_exact(
        times in times(300, 1_000_000),
        delta_t in 1u64..10_000,
    ) {
        let train = EventTrain::from_times(times);
        let h = DensityHistogram::from_train(&train, delta_t, 0, 1_000_000);
        prop_assert_eq!(h.total_windows(), 1_000_000u64.div_ceil(delta_t));
        prop_assert_eq!(h.bins().iter().sum::<u64>(), h.total_windows());
    }

    #[test]
    fn histogram_preserves_unsaturated_event_mass(
        times in times(200, 100_000),
        delta_t in 1_000u64..50_000,
    ) {
        // With ≤200 events and wide windows, saturation at bin 127 can
        // only occur when ≥127 events share a window; exclude by capping
        // event count below 127.
        let train = EventTrain::from_times(times.into_iter().take(120).collect());
        let h = DensityHistogram::from_train(&train, delta_t, 0, 100_000);
        let mass: u64 = h
            .bins()
            .iter()
            .enumerate()
            .map(|(bin, &f)| bin as u64 * f)
            .sum();
        prop_assert_eq!(mass, train.total_events());
    }

    #[test]
    fn histogram_merge_equals_concatenated_accumulation(
        a in times(150, 50_000),
        b in times(150, 50_000),
        delta_t in 100u64..5_000,
    ) {
        let ta = EventTrain::from_times(a);
        let tb = EventTrain::from_times(b.iter().map(|t| t + 50_000).collect());
        let mut merged = DensityHistogram::from_train(&ta, delta_t, 0, 50_000);
        merged.merge(&DensityHistogram::from_train(&tb, delta_t, 50_000, 100_000));
        let mut joined = DensityHistogram::empty(delta_t);
        joined.accumulate(&ta, 0, 50_000);
        joined.accumulate(&tb, 50_000, 100_000);
        prop_assert_eq!(merged.bins(), joined.bins());
    }

    #[test]
    fn event_train_windows_partition_events(
        times in times(300, 1_000_000),
        window in 1_000u64..200_000,
    ) {
        let train = EventTrain::from_times(times);
        let windows = train.windows(0, 1_000_000, window);
        let total: u64 = windows.iter().map(|w| w.total_events()).sum();
        prop_assert_eq!(total, train.total_events());
    }

    #[test]
    fn bloom_has_no_false_negatives(
        keys in prop::collection::hash_set(any::<u64>(), 1..200),
        bits in 64usize..8_192,
        hashes in 1u32..6,
    ) {
        let mut filter = BloomFilter::new(bits, hashes);
        for &k in &keys {
            filter.insert(k);
        }
        for &k in &keys {
            prop_assert!(filter.contains(k));
        }
    }

    #[test]
    fn kmeans_assignments_are_consistent(
        features in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 4),
            1..60,
        ),
        k in 1usize..6,
    ) {
        let clusters = kmeans(&features, k, 99, 30);
        prop_assert_eq!(clusters.assignments.len(), features.len());
        let k_eff = k.min(features.len());
        for &a in &clusters.assignments {
            prop_assert!(a < k_eff);
        }
        prop_assert_eq!(clusters.sizes.iter().sum::<usize>(), features.len());
        // Determinism.
        let again = kmeans(&features, k, 99, 30);
        prop_assert_eq!(clusters.assignments, again.assignments);
    }

    #[test]
    fn discretize_is_monotone_per_bin(
        freqs in prop::collection::vec(0u64..100_000, HISTOGRAM_BINS),
    ) {
        let total: u64 = freqs.iter().sum();
        prop_assume!(total > 0);
        let h = DensityHistogram::from_bins(freqs.clone(), 1_000);
        let s = discretize(&h);
        prop_assert_eq!(s.len(), HISTOGRAM_BINS);
        for (bin, &f) in freqs.iter().enumerate() {
            if f == 0 {
                prop_assert_eq!(s[bin], 0);
            } else {
                prop_assert!(s[bin] >= 1);
            }
        }
    }

    #[test]
    fn practical_tracker_never_misses_recent_conflicts(
        working_set in 4u64..40,
        rounds in 1usize..20,
    ) {
        // Blocks evicted and promptly re-accessed within a working set far
        // below the tracker window must always classify as conflicts.
        let mut tracker = GenerationTracker::for_cache(4_096);
        let blocks: Vec<u64> = (0..working_set).map(|i| i * 64).collect();
        for &b in &blocks {
            tracker.record_access(b);
        }
        for _ in 0..rounds {
            for &b in &blocks {
                tracker.record_replacement(b);
                prop_assert_eq!(tracker.classify_miss(b), ConflictClass::Conflict);
                tracker.record_access(b);
            }
        }
    }

    #[test]
    fn ideal_tracker_matches_reference_recency_model(
        accesses in prop::collection::vec(0u64..64, 1..300),
        capacity in 4usize..32,
    ) {
        let mut tracker = IdealLruTracker::new(capacity);
        let mut reference: Vec<u64> = Vec::new(); // recency list, MRU front
        for &a in &accesses {
            let block = a * 64;
            let expected = if reference.contains(&block) {
                ConflictClass::Conflict
            } else {
                ConflictClass::NonConflict
            };
            prop_assert_eq!(tracker.classify_miss(block), expected);
            tracker.record_access(block);
            reference.retain(|&b| b != block);
            reference.insert(0, block);
            reference.truncate(capacity);
        }
    }

    #[test]
    fn auditor_signal_path_matches_offline_histogram(
        times in times(200, 400_000),
        delta_t in 500u64..20_000,
    ) {
        // The hardware Δt/accumulator datapath must agree with the offline
        // DensityHistogram construction. The hardware only finalizes
        // *complete* Δt windows at harvest (a partial window carries into
        // the next quantum), so compare over an aligned horizon.
        let horizon = (400_000 / delta_t) * delta_t;
        let mut auditor = CcAuditor::new(AuditorConfig::default());
        let slot = auditor
            .program(HardwareUnit::MemoryBus, delta_t, Privilege::Supervisor)
            .unwrap();
        let train = EventTrain::from_times(times.into_iter().filter(|&t| t < horizon).collect());
        for (t, w) in train.iter() {
            auditor.signal(slot, t, w).unwrap();
        }
        let hw = auditor.harvest_histogram(slot, horizon).unwrap();
        let sw = DensityHistogram::from_train(&train, delta_t, 0, horizon);
        prop_assert_eq!(hw.bins(), sw.bins());
    }
}
