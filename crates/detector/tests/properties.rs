//! Property-based tests for the detector's core data structures and
//! invariants.
//!
//! The properties are exercised by a hand-rolled deterministic harness (the
//! build environment has no crates.io access for proptest): each property
//! runs over `CASES` seeded random inputs, and every assertion message
//! carries the case seed so a failure reproduces directly.

use cchunter_detector::auditor::{AuditorConfig, CcAuditor, HardwareUnit, Privilege};
use cchunter_detector::autocorr::Autocorrelogram;
use cchunter_detector::cluster::{discretize, kmeans};
use cchunter_detector::conflict::{
    ConflictClass, GenerationTracker, IdealLruTracker, MissClassifier,
};
use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cchunter_detector::events::{EventTrain, SymbolSeries};
use cchunter_detector::indicator::{
    indicator_by_name, score_sequences_in, Indicator, WindowObservation,
};
use cchunter_detector::BloomFilter;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Sorted event times within a bounded horizon.
fn times(rng: &mut SmallRng, max_len: usize, horizon: u64) -> Vec<u64> {
    let len = rng.gen_range(0..max_len);
    let mut v: Vec<u64> = (0..len).map(|_| rng.gen_range(0..horizon)).collect();
    v.sort_unstable();
    v
}

#[test]
fn autocorrelation_is_bounded_and_one_at_lag_zero() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA070_0000 + case);
        let n = rng.gen_range(3usize..200);
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let max_lag = rng.gen_range(1usize..64);
        let c = Autocorrelogram::compute(&samples, max_lag);
        let variance: f64 = {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|x| (x - mean) * (x - mean)).sum()
        };
        if variance > 1e-9 {
            assert!((c.coefficient(0) - 1.0).abs() < 1e-9, "case {case}");
        }
        for lag in 0..=max_lag {
            assert!(
                c.coefficient(lag).abs() <= 1.0 + 1e-9,
                "case {case} lag {lag}"
            );
        }
    }
}

#[test]
fn histogram_window_count_is_exact() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB170_0000 + case);
        let train = EventTrain::from_times(times(&mut rng, 300, 1_000_000));
        let delta_t = rng.gen_range(1u64..10_000);
        let h = DensityHistogram::from_train(&train, delta_t, 0, 1_000_000);
        assert_eq!(
            h.total_windows(),
            1_000_000u64.div_ceil(delta_t),
            "case {case}"
        );
        assert_eq!(
            h.bins().iter().sum::<u64>(),
            h.total_windows(),
            "case {case}"
        );
    }
}

#[test]
fn histogram_preserves_unsaturated_event_mass() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC270_0000 + case);
        // With ≤120 events, saturation at bin 127 cannot occur, so every
        // event lands in a bin at its exact density.
        let times: Vec<u64> = times(&mut rng, 200, 100_000)
            .into_iter()
            .take(120)
            .collect();
        let delta_t = rng.gen_range(1_000u64..50_000);
        let train = EventTrain::from_times(times);
        let h = DensityHistogram::from_train(&train, delta_t, 0, 100_000);
        let mass: u64 = h
            .bins()
            .iter()
            .enumerate()
            .map(|(bin, &f)| bin as u64 * f)
            .sum();
        assert_eq!(mass, train.total_events(), "case {case}");
    }
}

#[test]
fn histogram_merge_equals_concatenated_accumulation() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD370_0000 + case);
        let a = times(&mut rng, 150, 50_000);
        let b = times(&mut rng, 150, 50_000);
        let delta_t = rng.gen_range(100u64..5_000);
        let ta = EventTrain::from_times(a);
        let tb = EventTrain::from_times(b.iter().map(|t| t + 50_000).collect());
        let mut merged = DensityHistogram::from_train(&ta, delta_t, 0, 50_000);
        merged.merge(&DensityHistogram::from_train(&tb, delta_t, 50_000, 100_000));
        let mut joined = DensityHistogram::empty(delta_t);
        joined.accumulate(&ta, 0, 50_000);
        joined.accumulate(&tb, 50_000, 100_000);
        assert_eq!(merged.bins(), joined.bins(), "case {case}");
    }
}

#[test]
fn event_train_windows_partition_events() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xE470_0000 + case);
        let train = EventTrain::from_times(times(&mut rng, 300, 1_000_000));
        let window = rng.gen_range(1_000u64..200_000);
        let windows = train.windows(0, 1_000_000, window);
        let total: u64 = windows.iter().map(|w| w.total_events()).sum();
        assert_eq!(total, train.total_events(), "case {case}");
    }
}

#[test]
fn bloom_has_no_false_negatives() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF570_0000 + case);
        let n = rng.gen_range(1usize..200);
        let keys: std::collections::HashSet<u64> =
            (0..n).map(|_| rng.gen_range(0..u64::MAX)).collect();
        let bits = rng.gen_range(64usize..8_192);
        let hashes = rng.gen_range(1u32..6);
        let mut filter = BloomFilter::new(bits, hashes);
        for &k in &keys {
            filter.insert(k);
        }
        for &k in &keys {
            assert!(filter.contains(k), "case {case} key {k:#x}");
        }
    }
}

#[test]
fn kmeans_assignments_are_consistent() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1670_0000 + case);
        let n = rng.gen_range(1usize..60);
        let features: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let k = rng.gen_range(1usize..6);
        let clusters = kmeans(&features, k, 99, 30);
        assert_eq!(clusters.assignments.len(), features.len(), "case {case}");
        let k_eff = k.min(features.len());
        for &a in &clusters.assignments {
            assert!(a < k_eff, "case {case}");
        }
        assert_eq!(
            clusters.sizes.iter().sum::<usize>(),
            features.len(),
            "case {case}"
        );
        // Determinism.
        let again = kmeans(&features, k, 99, 30);
        assert_eq!(clusters.assignments, again.assignments, "case {case}");
    }
}

#[test]
fn discretize_is_monotone_per_bin() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x2770_0000 + case);
        let freqs: Vec<u64> = (0..HISTOGRAM_BINS)
            .map(|_| rng.gen_range(0u64..100_000))
            .collect();
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            continue;
        }
        let h = DensityHistogram::from_bins(freqs.clone(), 1_000).expect("128 bins, Δt > 0");
        let s = discretize(&h);
        assert_eq!(s.len(), HISTOGRAM_BINS, "case {case}");
        for (bin, &f) in freqs.iter().enumerate() {
            if f == 0 {
                assert_eq!(s[bin], 0, "case {case} bin {bin}");
            } else {
                assert!(s[bin] >= 1, "case {case} bin {bin}");
            }
        }
    }
}

#[test]
fn practical_tracker_never_misses_recent_conflicts() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3870_0000 + case);
        let working_set = rng.gen_range(4u64..40);
        let rounds = rng.gen_range(1usize..20);
        // Blocks evicted and promptly re-accessed within a working set far
        // below the tracker window must always classify as conflicts.
        let mut tracker = GenerationTracker::for_cache(4_096);
        let blocks: Vec<u64> = (0..working_set).map(|i| i * 64).collect();
        for &b in &blocks {
            tracker.record_access(b);
        }
        for _ in 0..rounds {
            for &b in &blocks {
                tracker.record_replacement(b);
                assert_eq!(
                    tracker.classify_miss(b),
                    ConflictClass::Conflict,
                    "case {case} block {b:#x}"
                );
                tracker.record_access(b);
            }
        }
    }
}

#[test]
fn ideal_tracker_matches_reference_recency_model() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x4970_0000 + case);
        let n = rng.gen_range(1usize..300);
        let accesses: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..64)).collect();
        let capacity = rng.gen_range(4usize..32);
        let mut tracker = IdealLruTracker::new(capacity);
        let mut reference: Vec<u64> = Vec::new(); // recency list, MRU front
        for &a in &accesses {
            let block = a * 64;
            let expected = if reference.contains(&block) {
                ConflictClass::Conflict
            } else {
                ConflictClass::NonConflict
            };
            assert_eq!(tracker.classify_miss(block), expected, "case {case}");
            tracker.record_access(block);
            reference.retain(|&b| b != block);
            reference.insert(0, block);
            reference.truncate(capacity);
        }
    }
}

#[test]
fn auditor_signal_path_matches_offline_histogram() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5A70_0000 + case);
        let times = times(&mut rng, 200, 400_000);
        let delta_t = rng.gen_range(500u64..20_000);
        // The hardware Δt/accumulator datapath must agree with the offline
        // DensityHistogram construction. The hardware only finalizes
        // *complete* Δt windows at harvest (a partial window carries into
        // the next quantum), so compare over an aligned horizon.
        let horizon = (400_000 / delta_t) * delta_t;
        let mut auditor = CcAuditor::new(AuditorConfig::default());
        let slot = auditor
            .program(HardwareUnit::MemoryBus, delta_t, Privilege::Supervisor)
            .unwrap();
        let train = EventTrain::from_times(times.into_iter().filter(|&t| t < horizon).collect());
        for (t, w) in train.iter() {
            auditor.signal(slot, t, w).unwrap();
        }
        let hw = auditor.harvest_histogram(slot, horizon).unwrap();
        let sw = DensityHistogram::from_train(&train, delta_t, 0, horizon);
        assert_eq!(hw.bins(), sw.bins(), "case {case}");
    }
}

#[test]
fn bin_zero_saturation_never_corrupts_neighboring_bins() {
    // Paper-strict sizing: 16-bit histogram entries clamp at u16::MAX.
    // Driving far more empty Δt windows than the entry cap must saturate
    // bin 0 exactly at the cap while every occupied bin keeps its exact
    // count — saturation may lose mass, never move it.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD370_0000 + case);
        let delta_t = 10u64;
        let horizon = 1_000_000u64; // 100_000 windows >> u16::MAX empties
        let n_occupied = rng.gen_range(20usize..60);
        let mut windows: Vec<u64> = (0..n_occupied)
            .map(|_| rng.gen_range(0..horizon / delta_t))
            .collect();
        windows.sort_unstable();
        windows.dedup();
        let mut expected = [0u64; HISTOGRAM_BINS];
        let mut auditor = CcAuditor::new(AuditorConfig::paper_strict());
        let slot = auditor
            .program(HardwareUnit::MemoryBus, delta_t, Privilege::Supervisor)
            .unwrap();
        for &w in &windows {
            let density = rng.gen_range(1u64..6);
            for k in 0..density {
                auditor.signal(slot, w * delta_t + k, 1).unwrap();
            }
            expected[density as usize] += 1;
        }
        let h = auditor.harvest_histogram(slot, horizon).unwrap();
        assert_eq!(
            h.frequency(0),
            u64::from(u16::MAX),
            "case {case}: bin 0 must clamp exactly at the 16-bit cap"
        );
        for (bin, &want) in expected.iter().enumerate().skip(1) {
            assert_eq!(
                h.frequency(bin),
                want,
                "case {case} bin {bin}: saturation of bin 0 leaked into a neighbor"
            );
        }
    }
}

#[test]
fn online_detector_survives_any_fault_sequence() {
    // For any seeded fault-injector sequence over any harvest stream,
    // push_quantum never panics, the sliding window never exceeds its
    // capacity, and confidence stays within [0, 1].
    use cchunter_detector::online::OnlineContentionDetector;
    use cchunter_detector::{CcHunterConfig, FaultClass, FaultConfig, FaultInjector};
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xE470_0000 + case);
        let mut config = FaultConfig::none();
        for class in FaultClass::ALL {
            config.set_rate(class, rng.gen_range(0.0..1.0));
        }
        config.jitter_cycles = rng.gen_range(0..5_000);
        let mut injector = FaultInjector::new(config, 0xFA17 + case);
        let capacity = rng.gen_range(1usize..16);
        let quantum = 100_000u64;
        let hunter = CcHunterConfig {
            quantum_cycles: quantum,
            ..CcHunterConfig::default()
        };
        let mut daemon = OnlineContentionDetector::new(hunter, capacity).unwrap();
        for _ in 0..rng.gen_range(1usize..40) {
            let train = EventTrain::from_times(times(&mut rng, 120, quantum));
            let histogram = DensityHistogram::from_train(&train, 1_000, 0, quantum);
            let status = daemon.push_quantum(injector.perturb_harvest(histogram));
            assert!(status.window_len <= capacity, "case {case}");
            assert!(
                status.observed_in_window <= status.window_len,
                "case {case}"
            );
            assert!(
                (0.0..=1.0).contains(&status.confidence),
                "case {case}: confidence {} out of range",
                status.confidence
            );
        }
    }
}

#[test]
fn fft_autocorrelogram_matches_naive_for_any_length() {
    // The FFT (Wiener–Khinchin) path and the direct lag-product path are
    // the same mathematical object; agreement must hold for arbitrary —
    // in particular non-power-of-two — series lengths and lag depths.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xFF70_0000 + case);
        let n = rng.gen_range(64usize..3000);
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let max_lag = rng.gen_range(32usize..1200);
        let fast = Autocorrelogram::compute(&samples, max_lag);
        let naive = Autocorrelogram::compute_naive(&samples, max_lag);
        for lag in 0..=max_lag {
            assert!(
                (fast.coefficient(lag) - naive.coefficient(lag)).abs() < 1e-9,
                "case {case} n {n} lag {lag}: fft {} vs naive {}",
                fast.coefficient(lag),
                naive.coefficient(lag)
            );
        }
    }
}

#[test]
fn incremental_window_state_matches_from_scratch_replay() {
    // The daemon's running aggregates (weight sum, observed/bursty counts,
    // memoized clustering) must be indistinguishable from a daemon that
    // recomputes everything from the retained window: replaying only the
    // last `capacity` harvests into a fresh daemon yields the same status.
    use cchunter_detector::online::{Harvest, OnlineContentionDetector};
    use cchunter_detector::CcHunterConfig;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x17C0_0000 + case);
        let capacity = rng.gen_range(1usize..24);
        let quantum = 100_000u64;
        let config = CcHunterConfig {
            quantum_cycles: quantum,
            ..CcHunterConfig::default()
        };
        let mut daemon = OnlineContentionDetector::new(config, capacity).unwrap();
        let steps = rng.gen_range(1usize..60);
        let mut harvests: Vec<Harvest> = Vec::new();
        let mut incremental = None;
        for _ in 0..steps {
            let harvest = match rng.gen_range(0u32..3) {
                2 => Harvest::Missed,
                kind => {
                    let train = EventTrain::from_times(times(&mut rng, 120, quantum));
                    let histogram = DensityHistogram::from_train(&train, 1_000, 0, quantum);
                    if kind == 0 {
                        Harvest::Complete(histogram)
                    } else {
                        Harvest::Partial {
                            histogram,
                            lost_fraction: rng.gen_range(0.0..1.0),
                        }
                    }
                }
            };
            harvests.push(harvest.clone());
            incremental = Some(daemon.push_quantum(harvest));
        }
        let incremental = incremental.unwrap();
        let tail = &harvests[harvests.len().saturating_sub(capacity)..];
        let mut fresh = OnlineContentionDetector::new(config, capacity).unwrap();
        let mut replay = None;
        for harvest in tail {
            replay = Some(fresh.push_quantum(harvest.clone()));
        }
        let replay = replay.unwrap();
        assert_eq!(incremental.window_len, replay.window_len, "case {case}");
        assert_eq!(
            incremental.observed_in_window, replay.observed_in_window,
            "case {case}"
        );
        assert_eq!(incremental.verdict, replay.verdict, "case {case}");
        let summarize = |s: &cchunter_detector::OnlineStatus| {
            s.recurrence.as_ref().map(|r| {
                (
                    r.windows,
                    r.bursty_windows,
                    r.largest_burst_cluster,
                    r.recurrent,
                )
            })
        };
        assert_eq!(summarize(&incremental), summarize(&replay), "case {case}");
        assert!(
            (incremental.confidence - replay.confidence).abs() < 1e-12,
            "case {case}: incremental confidence {} vs replay {}",
            incremental.confidence,
            replay.confidence
        );
    }
}

#[test]
fn par_map_is_thread_count_invariant() {
    // The determinism contract of the vendored pool: par_map output is
    // bit-identical to a serial map for any thread count.
    let mut pools: Vec<threadpool::Pool> = [1usize, 2, 7].map(threadpool::Pool::new).into();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9A40_0000 + case);
        let n = rng.gen_range(0usize..300);
        let items: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let f = |x: &f64| (x * 1.000_001).sin() + x / 3.0;
        let serial: Vec<f64> = items.iter().map(f).collect();
        for pool in &mut pools {
            let got = threadpool::par_map_in(pool, &items, f);
            assert_eq!(got.len(), serial.len(), "case {case}");
            for (i, (a, b)) in got.iter().zip(&serial).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "case {case} item {i} with {} threads",
                    pool.threads()
                );
            }
        }
    }
}

/// A seeded random observation: histogram, rate trace, and/or symbols with
/// a random weight, covering every field combination an indicator can see.
fn random_observation(rng: &mut SmallRng) -> WindowObservation {
    let mut obs = WindowObservation::missed().with_weight(rng.gen_range(0.0..=1.0));
    if rng.gen_bool(0.7) {
        let train = EventTrain::from_times(times(rng, 400, 40_000));
        obs.histogram = Some(DensityHistogram::from_train(&train, 100, 0, 40_000));
    }
    if rng.gen_bool(0.7) {
        let n = rng.gen_range(0usize..200);
        obs.rates = (0..n).map(|_| rng.gen_range(0.0..50.0)).collect();
    }
    if rng.gen_bool(0.5) {
        let n = rng.gen_range(0usize..300);
        let symbols: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..56)).collect();
        obs.symbols = Some(SymbolSeries::from_symbols(symbols));
    }
    obs
}

#[test]
fn indicator_scores_are_thread_count_invariant() {
    // Batched indicator scoring is bit-identical to serial scoring for any
    // pool size — the same contract the FFT batch engine holds, extended to
    // every Indicator implementation.
    let mut pools: Vec<threadpool::Pool> = [1usize, 2, 7].map(threadpool::Pool::new).into();
    for name in ["cchunter", "cusum", "spectral"] {
        let mut rng = SmallRng::seed_from_u64(0x1D1C_0000);
        let sequences: Vec<Vec<WindowObservation>> = (0..12)
            .map(|_| {
                let len = rng.gen_range(1usize..8);
                (0..len).map(|_| random_observation(&mut rng)).collect()
            })
            .collect();
        let make: &(dyn Fn() -> Box<dyn Indicator> + Sync) =
            &move || indicator_by_name(name).expect("built-in name");
        let serial: Vec<f64> = sequences.iter().map(|s| make().score_sequence(s)).collect();
        for pool in &mut pools {
            let got = score_sequences_in(pool, make, &sequences);
            for (i, (a, b)) in got.iter().zip(&serial).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} sequence {i} with {} threads",
                    pool.threads()
                );
            }
        }
    }
}

#[test]
fn indicator_online_push_equals_replay_from_scratch() {
    // The replay-consistency contract: after pushing any prefix of an
    // observation stream, the online score is bit-identical to a fresh
    // indicator replaying that prefix — the Indicator-trait analogue of the
    // sliding-window incremental-vs-scratch property.
    for name in ["cchunter", "cusum", "spectral"] {
        for case in 0..CASES / 4 {
            let mut rng = SmallRng::seed_from_u64(0x0E71_0000 + case);
            let stream: Vec<WindowObservation> = (0..rng.gen_range(1usize..10))
                .map(|_| random_observation(&mut rng))
                .collect();
            let mut online = indicator_by_name(name).expect("built-in name");
            for (k, obs) in stream.iter().enumerate() {
                let pushed = online.push(obs);
                assert_eq!(
                    pushed.to_bits(),
                    online.score().to_bits(),
                    "{name} case {case}: push return differs from score()"
                );
                let replayed = indicator_by_name(name)
                    .expect("built-in name")
                    .score_sequence(&stream[..=k]);
                assert_eq!(
                    pushed.to_bits(),
                    replayed.to_bits(),
                    "{name} case {case} prefix {}: online {pushed} vs replay {replayed}",
                    k + 1
                );
                assert!((0.0..=1.0).contains(&pushed), "{name} case {case}");
            }
        }
    }
}
