//! Property-based tests for the simulator substrate.
//!
//! Hand-rolled deterministic harness (no crates.io access for proptest):
//! each property runs over `CASES` seeded random inputs and assertion
//! messages carry the case seed for direct reproduction.

use cchunter_sim::engine::EventQueue;
use cchunter_sim::{
    Bus, BusConfig, Cache, CacheConfig, ContextId, Cycle, Machine, MachineConfig, Op, OpScript,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

const CASES: u64 = 48;

/// A reference per-set LRU model.
#[derive(Default)]
struct RefCache {
    sets: Vec<VecDeque<u64>>, // tag queues, MRU front
    ways: usize,
    set_mask: u64,
    line_shift: u32,
}

impl RefCache {
    fn new(sets: usize, ways: usize, line: u64) -> Self {
        RefCache {
            sets: vec![VecDeque::new(); sets],
            ways,
            set_mask: sets as u64 - 1,
            line_shift: line.trailing_zeros(),
        }
    }

    /// Returns (hit, victim block address).
    fn access(&mut self, addr: u64) -> (bool, Option<u64>) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.sets.len().trailing_zeros();
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_front(tag);
            return (true, None);
        }
        q.push_front(tag);
        let victim = if q.len() > self.ways {
            q.pop_back()
                .map(|t| ((t << self.sets.len().trailing_zeros()) | set as u64) << self.line_shift)
        } else {
            None
        };
        (false, victim)
    }
}

fn vec_of(rng: &mut SmallRng, lo: usize, hi: usize, max: u64) -> Vec<u64> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| rng.gen_range(0..max)).collect()
}

#[test]
fn cache_matches_reference_lru_model() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x51C0_0000 + case);
        let accesses = vec_of(&mut rng, 1, 400, 4_096);
        // 4 sets × 2 ways of 64 B lines.
        let config = CacheConfig {
            capacity_bytes: 512,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        };
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(4, 2, 64);
        let ctx = ContextId::new(0, 0);
        for &a in &accesses {
            let addr = a * 64;
            let out = cache.access(addr, ctx);
            let (ref_hit, ref_victim) = reference.access(addr);
            assert_eq!(out.hit, ref_hit, "case {case} addr {addr:#x}");
            assert_eq!(
                out.victim.map(|(b, _)| b),
                ref_victim,
                "case {case} addr {addr:#x}"
            );
        }
    }
}

#[test]
fn cache_occupancy_never_exceeds_capacity() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x0CC0_0000 + case);
        let accesses = vec_of(&mut rng, 1, 300, 100_000);
        let config = CacheConfig {
            capacity_bytes: 2_048,
            line_bytes: 64,
            ways: 4,
            hit_latency: 1,
        };
        let mut cache = Cache::new(config);
        let ctx = ContextId::new(1, 1);
        for &a in &accesses {
            cache.access(a * 64, ctx);
            assert!(cache.occupancy() <= 32, "case {case}");
        }
    }
}

#[test]
fn bus_grants_are_serialized_and_monotone() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB050_0000 + case);
        let n = rng.gen_range(1usize..100);
        let mut requests: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.gen_range(0u64..100_000), rng.gen_bool(0.5)))
            .collect();
        requests.sort_unstable_by_key(|&(t, _)| t);
        let mut bus = Bus::new(BusConfig {
            transaction_cycles: 10,
            dram_latency: 50,
            lock_hold_cycles: 40,
        });
        let mut last_release = Cycle::ZERO;
        for &(t, locked) in &requests {
            let grant = if locked {
                bus.lock(Cycle::new(t))
            } else {
                bus.transaction(Cycle::new(t))
            };
            assert!(grant.start >= Cycle::new(t), "case {case}");
            assert!(grant.start >= last_release, "case {case}: grants overlap");
            assert!(grant.release > grant.start, "case {case}");
            last_release = grant.release;
        }
    }
}

#[test]
fn event_queue_pops_in_time_then_fifo_order() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xE0E0_0000 + case);
        let events = vec_of(&mut rng, 1, 200, 1_000);
        let mut q = EventQueue::new();
        for (i, &t) in events.iter().enumerate() {
            q.push(Cycle::new(t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt, "case {case}");
                if t == lt {
                    assert!(i > li, "case {case}: same-instant events must pop FIFO");
                }
            }
            last = Some((t, i));
        }
    }
}

#[test]
fn machine_runs_random_scripts_deterministically() {
    for case in 0..12 {
        let mut rng = SmallRng::seed_from_u64(0xDE70_0000 + case);
        let n = rng.gen_range(1usize..60);
        let ops: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..6)).collect();
        let addr_seed = rng.gen_range(0u64..1_000);
        let build_script = |ops: &[u8]| -> Vec<Op> {
            ops.iter()
                .enumerate()
                .map(|(i, &k)| {
                    let addr = (addr_seed + i as u64) * 64;
                    match k {
                        0 => Op::Compute {
                            cycles: 10 + i as u64,
                        },
                        1 => Op::Load { addr },
                        2 => Op::Store { addr },
                        3 => Op::Div {
                            count: 1 + (i % 3) as u32,
                        },
                        4 => Op::Idle { cycles: 100 },
                        _ => Op::AtomicUnaligned { addr },
                    }
                })
                .collect()
        };
        let run = || {
            let mut m = Machine::new(
                MachineConfig::builder()
                    .quantum_cycles(10_000)
                    .build()
                    .unwrap(),
            );
            let trace = m.attach_trace();
            m.spawn(
                Box::new(OpScript::new("p", build_script(&ops))),
                m.config().context_id(0, 0),
            );
            m.run_for(10_000_000);
            let events = trace.borrow().len();
            (m.now(), m.stats(), events)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "case {case}");
        // Every scripted op commits (plus the final Halt).
        assert_eq!(a.1.committed_ops, ops.len() as u64 + 1, "case {case}");
    }
}

#[test]
fn simulated_time_never_runs_backwards() {
    for case in 0..12 {
        let mut rng = SmallRng::seed_from_u64(0x71FE_0000 + case);
        let n = rng.gen_range(1usize..40);
        let script: Vec<Op> = (0..n)
            .map(|i| match rng.gen_range(0u8..6) {
                0 => Op::Compute {
                    cycles: 1 + i as u64,
                },
                1 => Op::Load {
                    addr: i as u64 * 64,
                },
                2 => Op::Div { count: 2 },
                3 => Op::Idle { cycles: 50 },
                4 => Op::Yield,
                _ => Op::AtomicUnaligned {
                    addr: i as u64 * 128,
                },
            })
            .collect();
        let mut m = Machine::new(
            MachineConfig::builder()
                .quantum_cycles(5_000)
                .build()
                .unwrap(),
        );
        let trace = m.attach_trace();
        m.spawn(
            Box::new(OpScript::new("p", script)),
            m.config().context_id(0, 0),
        );
        m.run_for(5_000_000);
        let events = trace.borrow().events().to_vec();
        for pair in events.windows(2) {
            // Events from different resources may interleave slightly (a
            // divider wait is stamped at issue time); they must stay
            // within one op's span.
            let ordered = pair[1].cycle() >= pair[0].cycle()
                || pair[0].cycle().saturating_since(pair[1].cycle()) < 10_000;
            assert!(ordered, "case {case}");
        }
    }
}
