//! Aggregate run statistics.

/// Counters accumulated over a [`crate::Machine`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Total operations committed across all threads.
    pub committed_ops: u64,
    /// Total memory operations (loads, stores, atomics).
    pub memory_ops: u64,
    /// Total divisions issued.
    pub divisions: u64,
    /// Total multiplications issued.
    pub multiplications: u64,
    /// Total bus lock acquisitions.
    pub bus_locks: u64,
    /// Total OS context switches performed.
    pub context_switches: u64,
    /// Threads that have halted.
    pub halted_threads: u64,
    /// Engine events (op completions and wakes) dispatched by the event
    /// queue.
    pub events_dispatched: u64,
    /// Cache flushes performed by flush-on-switch containment.
    pub mitigation_flushes: u64,
    /// Dispatches deferred because a temporal-partition gate was closed.
    pub partition_stalls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = MachineStats::default();
        assert_eq!(s.committed_ops, 0);
        assert_eq!(s.context_switches, 0);
    }
}
