//! The abstract operations executed by simulated programs.

/// Width hint for a memory access. The simulator only distinguishes whether
/// the access stays within one cache line or (for atomic unaligned accesses)
/// spans two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemWidth {
    /// A normal access contained in one cache line.
    #[default]
    Word,
    /// An access spanning two cache lines (only meaningful for
    /// [`Op::AtomicUnaligned`]).
    SplitLine,
}

/// One abstract operation of a simulated program.
///
/// Programs are streams of `Op`s produced by [`crate::Program::next_op`].
/// Each op's latency is computed from the machine state (cache contents,
/// bus/divider occupancy) when it executes, and reported back to the program
/// through [`crate::ProgramView::last_latency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Pure computation for `cycles` cycles: occupies the context but no
    /// shared resources.
    Compute {
        /// Busy duration in cycles.
        cycles: u64,
    },
    /// A load from `addr`, walking L1 → L2 → bus/DRAM.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// A store to `addr`. Modeled with the same hierarchy walk as a load
    /// (write-allocate).
    Store {
        /// Byte address.
        addr: u64,
    },
    /// An atomic read-modify-write spanning two cache lines starting at
    /// `addr`: acquires the memory-bus lock for the whole operation. This is
    /// the trojan primitive of the memory-bus covert channel.
    AtomicUnaligned {
        /// Byte address of the first line touched.
        addr: u64,
    },
    /// Issue `count` back-to-back integer divisions, arbitrating for the
    /// core's divider bank. This is the primitive of the divider covert
    /// channel.
    Div {
        /// Number of divisions issued serially.
        count: u32,
    },
    /// Issue `count` back-to-back integer multiplications, arbitrating for
    /// the core's multiplier bank (the Wang & Lee SMT/multiplier channel's
    /// primitive).
    Mul {
        /// Number of multiplications issued serially.
        count: u32,
    },
    /// Sleep for `cycles` cycles without using the CPU: the OS deschedules
    /// the thread, so other runnable threads on the context may run.
    Idle {
        /// Sleep duration in cycles.
        cycles: u64,
    },
    /// Voluntarily yield the rest of the quantum to the next runnable thread
    /// on this context (runs again after one trip through the run queue).
    Yield,
    /// Terminate the thread. The program is never asked for ops again.
    Halt,
}

impl Op {
    /// Whether the op terminates the thread.
    pub fn is_halt(&self) -> bool {
        matches!(self, Op::Halt)
    }

    /// Whether the op touches the memory hierarchy.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Op::Load { .. } | Op::Store { .. } | Op::AtomicUnaligned { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(Op::Halt.is_halt());
        assert!(!Op::Yield.is_halt());
        assert!(Op::Load { addr: 0 }.is_memory());
        assert!(Op::Store { addr: 0 }.is_memory());
        assert!(Op::AtomicUnaligned { addr: 0 }.is_memory());
        assert!(!Op::Compute { cycles: 1 }.is_memory());
        assert!(!Op::Div { count: 1 }.is_memory());
    }
}
