//! OS thread scheduling over hardware contexts.
//!
//! Each hardware context owns a run queue of software threads (threads are
//! affine to a context unless respawned elsewhere, mirroring the pinned
//! trojan/spy placement of the paper's experiments). Threads rotate
//! round-robin at quantum boundaries; sleeping threads ([`crate::Op::Idle`])
//! leave the context free for other runnable threads.

use crate::probe::ThreadId;
use crate::time::Cycle;
use std::collections::VecDeque;

/// Lifecycle state of a software thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable (queued or currently on a context).
    Ready,
    /// Blocked in an [`crate::Op::Idle`] until the given instant.
    Sleeping {
        /// Wake-up time.
        until: Cycle,
    },
    /// Terminated.
    Halted,
}

/// Scheduling state of one hardware context.
#[derive(Debug, Clone)]
pub struct ContextSched {
    /// Runnable threads waiting for this context.
    pub queue: VecDeque<ThreadId>,
    /// Threads sleeping on this context.
    pub sleeping: Vec<ThreadId>,
    /// The thread currently running, if any.
    pub current: Option<ThreadId>,
    /// End of the running thread's quantum.
    pub quantum_end: Cycle,
    /// Whether an op-completion event is in flight for this context.
    pub busy: bool,
    /// Whether a wake event is already scheduled (avoids duplicates).
    pub wake_scheduled: bool,
}

impl ContextSched {
    /// Creates an idle context with no threads.
    pub fn new() -> Self {
        ContextSched {
            queue: VecDeque::new(),
            sleeping: Vec::new(),
            current: None,
            quantum_end: Cycle::ZERO,
            busy: false,
            wake_scheduled: false,
        }
    }

    /// Moves every sleeping thread whose wake time has passed back to the
    /// run queue; returns how many woke.
    pub fn wake_due(&mut self, now: Cycle, wake_time: impl Fn(ThreadId) -> Cycle) -> usize {
        let mut woke = 0;
        let mut i = 0;
        while i < self.sleeping.len() {
            if wake_time(self.sleeping[i]) <= now {
                let tid = self.sleeping.swap_remove(i);
                self.queue.push_back(tid);
                woke += 1;
            } else {
                i += 1;
            }
        }
        woke
    }

    /// Earliest wake time among sleeping threads.
    pub fn next_wake(&self, wake_time: impl Fn(ThreadId) -> Cycle) -> Option<Cycle> {
        self.sleeping.iter().map(|&t| wake_time(t)).min()
    }

    /// Whether any thread (running, queued, or sleeping) is attached.
    pub fn has_threads(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty() || !self.sleeping.is_empty()
    }
}

impl Default for ContextSched {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_due_moves_expired_sleepers() {
        let mut ctx = ContextSched::new();
        ctx.sleeping = vec![1, 2, 3];
        let wake = |t: ThreadId| Cycle::new(t as u64 * 100);
        let woke = ctx.wake_due(Cycle::new(250), wake);
        assert_eq!(woke, 2);
        assert_eq!(ctx.sleeping, vec![3]);
        assert_eq!(ctx.queue.len(), 2);
    }

    #[test]
    fn next_wake_is_minimum() {
        let mut ctx = ContextSched::new();
        ctx.sleeping = vec![5, 2, 9];
        let wake = |t: ThreadId| Cycle::new(t as u64);
        assert_eq!(ctx.next_wake(wake), Some(Cycle::new(2)));
    }

    #[test]
    fn has_threads_covers_all_holding_places() {
        let mut ctx = ContextSched::new();
        assert!(!ctx.has_threads());
        ctx.current = Some(1);
        assert!(ctx.has_threads());
        ctx.current = None;
        ctx.sleeping.push(2);
        assert!(ctx.has_threads());
    }
}
