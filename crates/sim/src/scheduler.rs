//! OS thread scheduling over hardware contexts.
//!
//! Each hardware context owns a run queue of software threads (threads are
//! affine to a context unless respawned elsewhere, mirroring the pinned
//! trojan/spy placement of the paper's experiments). Threads rotate
//! round-robin at quantum boundaries; sleeping threads ([`crate::Op::Idle`])
//! leave the context free for other runnable threads.

use crate::probe::ThreadId;
use crate::time::Cycle;
use std::collections::VecDeque;

/// Lifecycle state of a software thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable (queued or currently on a context).
    Ready,
    /// Blocked in an [`crate::Op::Idle`] until the given instant.
    Sleeping {
        /// Wake-up time.
        until: Cycle,
    },
    /// Terminated.
    Halted,
}

/// A time-division gate used for temporal partitioning of a context
/// (fence.t-style, Wistoff et al.): time is divided into slots of
/// `slot_cycles`, and the context may only run during slots of its `phase`
/// parity. Two contexts gated with opposite phases never co-execute, which
/// removes every contention-timing channel between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalGate {
    /// Slot length in cycles (nonzero).
    pub slot_cycles: u64,
    /// Which slot parity (0 or 1) this context owns.
    pub phase: u8,
}

impl TemporalGate {
    /// Whether the gate is open at `now`.
    pub fn allows(&self, now: Cycle) -> bool {
        (now.as_u64() / self.slot_cycles) % 2 == self.phase as u64 % 2
    }

    /// First cycle at or after `now` at which the gate is open.
    pub fn next_open(&self, now: Cycle) -> Cycle {
        if self.allows(now) {
            return now;
        }
        let slot = now.as_u64() / self.slot_cycles;
        Cycle::new((slot + 1) * self.slot_cycles)
    }
}

/// Scheduling state of one hardware context.
#[derive(Debug, Clone)]
pub struct ContextSched {
    /// Runnable threads waiting for this context.
    pub queue: VecDeque<ThreadId>,
    /// Threads sleeping on this context.
    pub sleeping: Vec<ThreadId>,
    /// The thread currently running, if any.
    pub current: Option<ThreadId>,
    /// End of the running thread's quantum.
    pub quantum_end: Cycle,
    /// Whether an op-completion event is in flight for this context.
    pub busy: bool,
    /// Whether a wake event is already scheduled (avoids duplicates).
    pub wake_scheduled: bool,
    /// Temporal-partition gate, if this context is being contained.
    pub gate: Option<TemporalGate>,
    /// Whether the context is parked (descheduled): attached threads are
    /// kept but nothing is dispatched until the context is resumed.
    pub parked: bool,
}

impl ContextSched {
    /// Creates an idle context with no threads.
    pub fn new() -> Self {
        ContextSched {
            queue: VecDeque::new(),
            sleeping: Vec::new(),
            current: None,
            quantum_end: Cycle::ZERO,
            busy: false,
            wake_scheduled: false,
            gate: None,
            parked: false,
        }
    }

    /// Moves every sleeping thread whose wake time has passed back to the
    /// run queue; returns how many woke.
    pub fn wake_due(&mut self, now: Cycle, wake_time: impl Fn(ThreadId) -> Cycle) -> usize {
        let mut woke = 0;
        let mut i = 0;
        while i < self.sleeping.len() {
            if wake_time(self.sleeping[i]) <= now {
                let tid = self.sleeping.swap_remove(i);
                self.queue.push_back(tid);
                woke += 1;
            } else {
                i += 1;
            }
        }
        woke
    }

    /// Earliest wake time among sleeping threads.
    pub fn next_wake(&self, wake_time: impl Fn(ThreadId) -> Cycle) -> Option<Cycle> {
        self.sleeping.iter().map(|&t| wake_time(t)).min()
    }

    /// Whether any thread (running, queued, or sleeping) is attached.
    pub fn has_threads(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty() || !self.sleeping.is_empty()
    }
}

impl Default for ContextSched {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_due_moves_expired_sleepers() {
        let mut ctx = ContextSched::new();
        ctx.sleeping = vec![1, 2, 3];
        let wake = |t: ThreadId| Cycle::new(t as u64 * 100);
        let woke = ctx.wake_due(Cycle::new(250), wake);
        assert_eq!(woke, 2);
        assert_eq!(ctx.sleeping, vec![3]);
        assert_eq!(ctx.queue.len(), 2);
    }

    #[test]
    fn next_wake_is_minimum() {
        let mut ctx = ContextSched::new();
        ctx.sleeping = vec![5, 2, 9];
        let wake = |t: ThreadId| Cycle::new(t as u64);
        assert_eq!(ctx.next_wake(wake), Some(Cycle::new(2)));
    }

    #[test]
    fn temporal_gate_alternates_slots() {
        let even = TemporalGate {
            slot_cycles: 100,
            phase: 0,
        };
        let odd = TemporalGate {
            slot_cycles: 100,
            phase: 1,
        };
        for t in [0u64, 50, 99, 200, 250] {
            assert!(even.allows(Cycle::new(t)), "even gate open at {t}");
            assert!(!odd.allows(Cycle::new(t)), "odd gate closed at {t}");
        }
        for t in [100u64, 199, 300] {
            assert!(!even.allows(Cycle::new(t)));
            assert!(odd.allows(Cycle::new(t)));
        }
        // Opposite phases are never simultaneously open.
        for t in 0..1000u64 {
            let now = Cycle::new(t);
            assert!(even.allows(now) != odd.allows(now));
        }
    }

    #[test]
    fn temporal_gate_next_open_is_slot_boundary() {
        let odd = TemporalGate {
            slot_cycles: 100,
            phase: 1,
        };
        assert_eq!(odd.next_open(Cycle::new(0)), Cycle::new(100));
        assert_eq!(odd.next_open(Cycle::new(99)), Cycle::new(100));
        assert_eq!(odd.next_open(Cycle::new(150)), Cycle::new(150), "open now");
        assert_eq!(odd.next_open(Cycle::new(200)), Cycle::new(300));
    }

    #[test]
    fn has_threads_covers_all_holding_places() {
        let mut ctx = ContextSched::new();
        assert!(!ctx.has_threads());
        ctx.current = Some(1);
        assert!(ctx.has_threads());
        ctx.current = None;
        ctx.sleeping.push(2);
        assert!(ctx.has_threads());
    }
}
