//! The memory hierarchy: per-core L1/L2 caches in front of a shared bus and
//! DRAM.
//!
//! Latency model per access:
//!
//! * L1 hit: `l1.hit_latency`
//! * L2 hit: `l1.hit_latency + l2.hit_latency`
//! * L2 miss: `l1 + l2 + bus wait + bus transaction + dram_latency`
//!
//! An atomic unaligned access spanning two lines bypasses the caches for its
//! locked bus phase (x86 split-lock behaviour) and holds the bus lock for
//! the configured duration.

use crate::bus::Bus;
use crate::cache::{Cache, CacheLevel};
use crate::config::MachineConfig;
use crate::probe::{ContextId, ProbeEvent};
use crate::time::Cycle;

/// Result of a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Whether the access hit in L1.
    pub l1_hit: bool,
    /// Whether the access hit in L2 (meaningless when `l1_hit`).
    pub l2_hit: bool,
}

/// The full memory system: per-core L1 and L2, one shared bus, DRAM.
#[derive(Debug)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    bus: Bus,
    l1_hit_latency: u64,
    l2_hit_latency: u64,
    dram_latency: u64,
    /// Emit per-access L2 probe events (hits and misses). Replacement
    /// events are always emitted; access events are only needed when a
    /// cache audit is active, and they dominate trace volume.
    pub trace_l2_accesses: bool,
}

impl MemorySystem {
    /// Builds the hierarchy for `config`.
    pub fn new(config: &MachineConfig) -> Self {
        MemorySystem {
            l1: (0..config.cores).map(|_| Cache::new(config.l1)).collect(),
            l2: (0..config.cores).map(|_| Cache::new(config.l2)).collect(),
            bus: Bus::new(config.bus),
            l1_hit_latency: config.l1.hit_latency,
            l2_hit_latency: config.l2.hit_latency,
            dram_latency: config.bus.dram_latency,
            trace_l2_accesses: true,
        }
    }

    /// Immutable view of the shared bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The L2 cache of `core`.
    pub fn l2(&self, core: u8) -> &Cache {
        &self.l2[core as usize]
    }

    /// Mutable access to the L2 cache of `core` (e.g. to install a
    /// way-partition mask).
    pub fn l2_mut(&mut self, core: u8) -> &mut Cache {
        &mut self.l2[core as usize]
    }

    /// Invalidates the entire private hierarchy (L1 and L2) of `core`; the
    /// enforcement half of flush-on-context-switch containment.
    pub fn flush_core(&mut self, core: u8) {
        self.l1[core as usize].flush();
        self.l2[core as usize].flush();
    }

    /// Performs a load or store by `ctx` at `addr`, starting at `now`.
    /// Probe events are appended to `events`.
    pub fn access(
        &mut self,
        ctx: ContextId,
        addr: u64,
        now: Cycle,
        events: &mut Vec<ProbeEvent>,
    ) -> MemAccess {
        let core = ctx.core() as usize;
        let l1_out = self.l1[core].access(addr, ctx);
        if l1_out.hit {
            return MemAccess {
                latency: self.l1_hit_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let l2_out = self.l2[core].access(addr, ctx);
        let block = self.l2[core].block_address(addr);
        if self.trace_l2_accesses {
            events.push(ProbeEvent::CacheAccess {
                cycle: now,
                level: CacheLevel::L2,
                core: ctx.core(),
                ctx,
                block,
                hit: l2_out.hit,
            });
        }
        if l2_out.hit {
            return MemAccess {
                latency: self.l1_hit_latency + self.l2_hit_latency,
                l1_hit: false,
                l2_hit: true,
            };
        }
        if let Some((victim_block, victim_owner)) = l2_out.victim {
            events.push(ProbeEvent::CacheReplacement {
                cycle: now,
                level: CacheLevel::L2,
                core: ctx.core(),
                set: l2_out.set,
                replacer: ctx,
                new_block: block,
                victim_block,
                victim_owner,
            });
        }
        // Miss: go over the shared bus to DRAM.
        let issue = now + self.l1_hit_latency + self.l2_hit_latency;
        let grant = self.bus.transaction(issue);
        events.push(ProbeEvent::BusTransaction {
            cycle: grant.start,
            ctx,
            wait: grant.wait,
        });
        let done = grant.release + self.dram_latency;
        MemAccess {
            latency: done - now,
            l1_hit: false,
            l2_hit: false,
        }
    }

    /// Performs an atomic unaligned access spanning the two lines at `addr`
    /// and `addr + line`: acquires the bus lock, emitting a
    /// [`ProbeEvent::BusLock`].
    ///
    /// Returns the end-to-end latency.
    pub fn atomic_unaligned(
        &mut self,
        ctx: ContextId,
        addr: u64,
        now: Cycle,
        events: &mut Vec<ProbeEvent>,
    ) -> u64 {
        let grant = self.bus.lock(now);
        events.push(ProbeEvent::BusLock {
            cycle: grant.start,
            ctx,
            hold: grant.release - grant.start,
        });
        // Keep the two touched lines warm in the local hierarchy (their
        // fills ride inside the locked window; no separate bus grant).
        let core = ctx.core() as usize;
        let line = self.l1[core].config().line_bytes;
        for a in [addr, addr + line] {
            let l1_out = self.l1[core].access(a, ctx);
            if !l1_out.hit {
                let l2_out = self.l2[core].access(a, ctx);
                let block = self.l2[core].block_address(a);
                if self.trace_l2_accesses {
                    events.push(ProbeEvent::CacheAccess {
                        cycle: grant.start,
                        level: CacheLevel::L2,
                        core: ctx.core(),
                        ctx,
                        block,
                        hit: l2_out.hit,
                    });
                }
                if let Some((victim_block, victim_owner)) = l2_out.victim {
                    events.push(ProbeEvent::CacheReplacement {
                        cycle: grant.start,
                        level: CacheLevel::L2,
                        core: ctx.core(),
                        set: l2_out.set,
                        replacer: ctx,
                        new_block: block,
                        victim_block,
                        victim_owner,
                    });
                }
            }
        }
        grant.release + self.dram_latency - now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(&MachineConfig::default())
    }

    fn ctx() -> ContextId {
        ContextId::new(0, 0)
    }

    #[test]
    fn cold_access_goes_to_dram() {
        let mut m = sys();
        let mut ev = Vec::new();
        let out = m.access(ctx(), 0x1000, Cycle::new(0), &mut ev);
        assert!(!out.l1_hit && !out.l2_hit);
        // l1 + l2 + bus transaction + dram.
        assert_eq!(out.latency, 3 + 15 + 36 + 160);
        assert!(ev
            .iter()
            .any(|e| matches!(e, ProbeEvent::BusTransaction { .. })));
        assert!(ev
            .iter()
            .any(|e| matches!(e, ProbeEvent::CacheAccess { hit: false, .. })));
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut m = sys();
        let mut ev = Vec::new();
        m.access(ctx(), 0x1000, Cycle::new(0), &mut ev);
        let out = m.access(ctx(), 0x1000, Cycle::new(500), &mut ev);
        assert!(out.l1_hit);
        assert_eq!(out.latency, 3);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = sys();
        let mut ev = Vec::new();
        // Fill one L1 set (64 sets × 8 ways; stride 64*64 = 4096 stays in
        // one L1 set; L2 has 512 sets so these spread across L2 sets 0,64,...
        // wrapping: 4096/64 = 64 line-index stride → L2 sets differ).
        for i in 0..9u64 {
            m.access(ctx(), i * 4096, Cycle::new(0), &mut ev);
        }
        // First address was evicted from 8-way L1 but still lives in L2.
        let out = m.access(ctx(), 0, Cycle::new(1_000), &mut ev);
        assert!(!out.l1_hit);
        assert!(out.l2_hit);
        assert_eq!(out.latency, 3 + 15);
    }

    #[test]
    fn atomic_unaligned_locks_bus_and_delays_others() {
        let mut m = sys();
        let mut ev = Vec::new();
        let lat = m.atomic_unaligned(ctx(), 0x2000, Cycle::new(0), &mut ev);
        assert!(lat >= 400, "lock hold dominates latency, got {lat}");
        assert!(ev.iter().any(|e| matches!(e, ProbeEvent::BusLock { .. })));
        // A miss from another core right behind the lock waits it out.
        let other = ContextId::new(1, 0);
        let out = m.access(other, 0x9000, Cycle::new(10), &mut ev);
        assert!(
            out.latency > 400,
            "load behind a bus lock should stall, got {}",
            out.latency
        );
    }

    #[test]
    fn l2_replacement_emits_victim_event() {
        let mut m = sys();
        let mut ev = Vec::new();
        // 9 distinct lines in one L2 set (stride = 512 sets × 64 B = 32 KB),
        // all missing L1 too (L1 set stride wraps at 4 KB so they also share
        // an L1 set, but L1 evictions are not probed).
        for i in 0..9u64 {
            m.access(
                ctx(),
                0x10_0000 + i * 32 * 1024,
                Cycle::new(i * 1000),
                &mut ev,
            );
        }
        let replacements: Vec<_> = ev
            .iter()
            .filter(|e| matches!(e, ProbeEvent::CacheReplacement { .. }))
            .collect();
        assert_eq!(replacements.len(), 1, "ninth line evicts the first");
        if let ProbeEvent::CacheReplacement {
            victim_block,
            new_block,
            ..
        } = replacements[0]
        {
            assert_eq!(*victim_block, 0x10_0000);
            assert_eq!(*new_block, 0x10_0000 + 8 * 32 * 1024);
        }
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut m = sys();
        m.trace_l2_accesses = false;
        let mut ev = Vec::new();
        m.access(ctx(), 0x1000, Cycle::new(0), &mut ev);
        assert!(!ev
            .iter()
            .any(|e| matches!(e, ProbeEvent::CacheAccess { .. })));
        // Bus transaction still visible.
        assert!(ev
            .iter()
            .any(|e| matches!(e, ProbeEvent::BusTransaction { .. })));
    }
}
