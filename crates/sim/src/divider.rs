//! Per-core integer divider bank with SMT arbitration.
//!
//! Divisions are non-pipelined: a unit is busy for the full division
//! latency. When a division from one hardware context must wait on a unit
//! occupied by an instruction from *another* context, the bank reports the
//! stalled cycles — the paper's indicator event for the integer-divider
//! covert channel ("the number of times a division instruction from one
//! process waits on a busy divider occupied by an instruction from another
//! context"; the detector counts the stalled *cycles*, which current
//! performance counters cannot measure, per §VII).

use crate::config::DividerConfig;
use crate::probe::ContextId;
use crate::time::Cycle;

/// Result of issuing one division.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivIssue {
    /// Instant the division began executing.
    pub start: Cycle,
    /// Cycles the division stalled waiting for a unit.
    pub wait: u64,
    /// Instant the division completes.
    pub complete: Cycle,
    /// If the stall was caused by another context's division: that context.
    pub contended_with: Option<ContextId>,
}

#[derive(Debug, Clone, Copy)]
struct Unit {
    busy_until: Cycle,
    owner: Option<ContextId>,
}

/// One core's bank of integer divider units, shared by its hyperthreads.
#[derive(Debug, Clone)]
pub struct DividerBank {
    config: DividerConfig,
    units: Vec<Unit>,
    issued: u64,
    cross_context_wait_cycles: u64,
}

impl DividerBank {
    /// Creates an idle bank.
    pub fn new(config: DividerConfig) -> Self {
        DividerBank {
            config,
            units: vec![
                Unit {
                    busy_until: Cycle::ZERO,
                    owner: None,
                };
                config.units_per_core as usize
            ],
            issued: 0,
            cross_context_wait_cycles: 0,
        }
    }

    /// The bank configuration.
    pub fn config(&self) -> &DividerConfig {
        &self.config
    }

    /// Issues one division from `ctx` at `now`, picking the
    /// earliest-available unit.
    pub fn issue(&mut self, ctx: ContextId, now: Cycle) -> DivIssue {
        self.issued += 1;
        let unit = self
            .units
            .iter_mut()
            .min_by_key(|u| u.busy_until)
            .expect("nonzero unit count");
        let start = unit.busy_until.max(now);
        let wait = start.saturating_since(now);
        let contended_with = if wait > 0 {
            unit.owner.filter(|owner| *owner != ctx)
        } else {
            None
        };
        if contended_with.is_some() {
            self.cross_context_wait_cycles += wait;
        }
        let complete = start + self.config.latency;
        unit.busy_until = complete;
        unit.owner = Some(ctx);
        DivIssue {
            start,
            wait,
            complete,
            contended_with,
        }
    }

    /// Total divisions issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total cycles divisions stalled behind *another* context's divisions.
    pub fn cross_context_wait_cycles(&self) -> u64 {
        self.cross_context_wait_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(units: u32) -> DividerBank {
        DividerBank::new(DividerConfig {
            units_per_core: units,
            latency: 20,
        })
    }

    fn ctx(smt: u8) -> ContextId {
        ContextId::new(0, smt)
    }

    #[test]
    fn idle_unit_no_wait() {
        let mut b = bank(1);
        let issue = b.issue(ctx(0), Cycle::new(100));
        assert_eq!(issue.start, Cycle::new(100));
        assert_eq!(issue.wait, 0);
        assert_eq!(issue.complete, Cycle::new(120));
        assert!(issue.contended_with.is_none());
    }

    #[test]
    fn same_context_back_to_back_is_not_cross_context_contention() {
        let mut b = bank(1);
        b.issue(ctx(0), Cycle::new(0));
        let second = b.issue(ctx(0), Cycle::new(0));
        assert_eq!(second.wait, 20);
        assert!(second.contended_with.is_none(), "own op occupies the unit");
        assert_eq!(b.cross_context_wait_cycles(), 0);
    }

    #[test]
    fn cross_context_wait_is_reported() {
        let mut b = bank(1);
        b.issue(ctx(0), Cycle::new(0));
        let issue = b.issue(ctx(1), Cycle::new(5));
        assert_eq!(issue.wait, 15);
        assert_eq!(issue.contended_with, Some(ctx(0)));
        assert_eq!(b.cross_context_wait_cycles(), 15);
    }

    #[test]
    fn two_units_absorb_two_streams() {
        let mut b = bank(2);
        let a = b.issue(ctx(0), Cycle::new(0));
        let c = b.issue(ctx(1), Cycle::new(0));
        assert_eq!(a.wait, 0);
        assert_eq!(c.wait, 0, "second unit picked up the second stream");
        let d = b.issue(ctx(1), Cycle::new(0));
        assert_eq!(d.wait, 20, "third op queues behind the earliest unit");
    }

    #[test]
    fn unit_frees_after_latency() {
        let mut b = bank(1);
        b.issue(ctx(0), Cycle::new(0));
        let later = b.issue(ctx(1), Cycle::new(50));
        assert_eq!(later.wait, 0);
        assert!(later.contended_with.is_none());
    }

    #[test]
    fn issue_count_tracks() {
        let mut b = bank(1);
        for _ in 0..5 {
            b.issue(ctx(0), Cycle::new(0));
        }
        assert_eq!(b.issued(), 5);
    }
}
