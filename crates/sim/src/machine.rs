//! The top-level simulated machine.

use crate::config::MachineConfig;
use crate::divider::DividerBank;
use crate::engine::EventQueue;
use crate::memory::MemorySystem;
use crate::ops::Op;
use crate::probe::{ContextId, ProbeEvent, ProbeSink, ThreadId, VecTrace};
use crate::program::{Program, ProgramView};
use crate::scheduler::{ContextSched, TemporalGate, ThreadState};
use crate::stats::MachineStats;
use crate::time::Cycle;
use std::cell::RefCell;
use std::rc::Rc;

struct Thread {
    program: Box<dyn Program>,
    state: ThreadState,
    last_latency: u64,
    ctx: ContextId,
    /// Migration target applied at the next op boundary.
    pending_ctx: Option<ContextId>,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("name", &self.program.name())
            .field("state", &self.state)
            .field("ctx", &self.ctx)
            .finish()
    }
}

#[derive(Debug, Clone, Copy)]
enum EngineEvent {
    /// An op completion for the context's running thread.
    OpComplete(usize),
    /// A (possibly spurious) request to dispatch work on an idle context.
    Wake(usize),
}

/// A simulated multicore machine.
///
/// Construct with a validated [`MachineConfig`], [`spawn`](Machine::spawn)
/// programs onto hardware contexts, attach [`ProbeSink`]s, and advance time
/// with [`run_for`](Machine::run_for) / [`run_until`](Machine::run_until).
///
/// Runs are fully deterministic: same configuration, same programs, same
/// event order.
pub struct Machine {
    config: MachineConfig,
    memory: MemorySystem,
    dividers: Vec<DividerBank>,
    multipliers: Vec<DividerBank>,
    threads: Vec<Thread>,
    contexts: Vec<ContextSched>,
    queue: EventQueue<EngineEvent>,
    probes: Vec<Rc<RefCell<dyn ProbeSink>>>,
    now: Cycle,
    stats: MachineStats,
    event_buf: Vec<ProbeEvent>,
    /// Flush the switching core's private caches at every context switch
    /// (the lowest rung of the containment escalation ladder).
    flush_on_switch: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("threads", &self.threads.len())
            .field("probes", &self.probes.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Machine {
    /// Builds an idle machine.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`MachineConfig::validate`].
    pub fn new(config: MachineConfig) -> Self {
        config.validate().expect("invalid machine configuration");
        let memory = MemorySystem::new(&config);
        let dividers = (0..config.cores)
            .map(|_| DividerBank::new(config.divider))
            .collect();
        let multipliers = (0..config.cores)
            .map(|_| DividerBank::new(config.multiplier))
            .collect();
        let contexts = (0..config.context_count())
            .map(|_| ContextSched::new())
            .collect();
        Machine {
            config,
            memory,
            dividers,
            multipliers,
            threads: Vec::new(),
            contexts,
            queue: EventQueue::new(),
            probes: Vec::new(),
            now: Cycle::ZERO,
            stats: MachineStats::default(),
            event_buf: Vec::new(),
            flush_on_switch: false,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// The memory system (for configuring tracing or inspecting caches).
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Mutable access to the memory system (e.g. to toggle
    /// [`MemorySystem::trace_l2_accesses`]).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.memory
    }

    /// The divider bank of `core`.
    pub fn divider(&self, core: u8) -> &DividerBank {
        &self.dividers[core as usize]
    }

    /// The multiplier bank of `core`.
    pub fn multiplier(&self, core: u8) -> &DividerBank {
        &self.multipliers[core as usize]
    }

    /// Attaches a probe sink that will observe all subsequent events.
    pub fn attach_probe(&mut self, sink: Rc<RefCell<dyn ProbeSink>>) {
        self.probes.push(sink);
    }

    /// Creates, attaches and returns a recording trace.
    pub fn attach_trace(&mut self) -> Rc<RefCell<VecTrace>> {
        let trace = Rc::new(RefCell::new(VecTrace::new()));
        self.attach_probe(trace.clone());
        trace
    }

    /// Spawns `program` as a software thread affine to hardware context
    /// `ctx`, returning its thread id. Multiple threads may share a context;
    /// the OS scheduler time-slices them.
    pub fn spawn(&mut self, program: Box<dyn Program>, ctx: ContextId) -> ThreadId {
        let idx = self.ctx_index(ctx);
        let tid = self.threads.len() as ThreadId;
        self.threads.push(Thread {
            program,
            state: ThreadState::Ready,
            last_latency: 0,
            ctx,
            pending_ctx: None,
        });
        self.contexts[idx].queue.push_back(tid);
        if !self.contexts[idx].busy {
            self.queue.push(self.now, EngineEvent::Wake(idx));
        }
        tid
    }

    /// The lifecycle state of a thread.
    pub fn thread_state(&self, tid: ThreadId) -> ThreadState {
        self.threads[tid as usize].state
    }

    /// Migrates a software thread to another hardware context (the OS
    /// rebalancing at a context switch, paper §V-A). Queued and sleeping
    /// threads move immediately; a thread whose op is in flight moves at
    /// the next op boundary.
    ///
    /// # Panics
    ///
    /// Panics if `new_ctx` is out of range or the thread has halted.
    pub fn migrate_thread(&mut self, tid: ThreadId, new_ctx: ContextId) {
        let new_idx = self.ctx_index(new_ctx);
        let thread = &mut self.threads[tid as usize];
        assert!(
            !matches!(thread.state, ThreadState::Halted),
            "cannot migrate a halted thread"
        );
        let old_ctx = thread.ctx;
        if old_ctx == new_ctx {
            return;
        }
        let old_idx = old_ctx.index(self.config.smt_per_core) as usize;
        if self.contexts[old_idx].current == Some(tid) {
            // Op in flight: defer to the next boundary.
            self.threads[tid as usize].pending_ctx = Some(new_ctx);
            return;
        }
        // Remove from the old context's holding structures.
        self.contexts[old_idx].queue.retain(|&t| t != tid);
        self.contexts[old_idx].sleeping.retain(|&t| t != tid);
        self.threads[tid as usize].ctx = new_ctx;
        match self.threads[tid as usize].state {
            ThreadState::Sleeping { .. } => {
                self.contexts[new_idx].sleeping.push(tid);
                // Re-arm the wake on the new context.
                self.contexts[new_idx].wake_scheduled = false;
                if let ThreadState::Sleeping { until } = self.threads[tid as usize].state {
                    self.contexts[new_idx].wake_scheduled = true;
                    self.queue.push(until, EngineEvent::Wake(new_idx));
                }
            }
            _ => {
                self.contexts[new_idx].queue.push_back(tid);
                if !self.contexts[new_idx].busy {
                    self.queue.push(self.now, EngineEvent::Wake(new_idx));
                }
            }
        }
        self.event_buf.push(ProbeEvent::ContextSwitch {
            cycle: self.now,
            ctx: new_ctx,
            from: None,
            to: Some(tid),
        });
        self.emit_events();
    }

    /// The context a thread is affine to.
    pub fn thread_context(&self, tid: ThreadId) -> ContextId {
        self.threads[tid as usize].ctx
    }

    /// Enables or disables flush-on-context-switch containment: while on,
    /// every context switch write-backs and invalidates the switching
    /// core's private L1/L2 and costs
    /// [`MitigationCostConfig::flush_cycles`](crate::config::MitigationCostConfig)
    /// extra cycles.
    pub fn set_flush_on_switch(&mut self, on: bool) {
        self.flush_on_switch = on;
    }

    /// Whether flush-on-context-switch containment is active.
    pub fn flush_on_switch(&self) -> bool {
        self.flush_on_switch
    }

    /// Installs (`Some(phase)`) or removes (`None`) a temporal-partition
    /// gate on `ctx`: gated contexts only dispatch during slots of their
    /// phase parity, so two contexts gated with opposite phases never
    /// co-execute. Slot length comes from the machine's
    /// [`MitigationCostConfig`](crate::config::MitigationCostConfig).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn set_temporal_phase(&mut self, ctx: ContextId, phase: Option<u8>) {
        let idx = self.ctx_index(ctx);
        match phase {
            Some(p) => {
                self.contexts[idx].gate = Some(TemporalGate {
                    slot_cycles: self.config.mitigation.partition_slot_cycles,
                    phase: p % 2,
                });
            }
            None => {
                self.contexts[idx].gate = None;
                if !self.contexts[idx].busy {
                    self.queue.push(self.now, EngineEvent::Wake(idx));
                }
            }
        }
    }

    /// The temporal-partition phase of `ctx`, if gated.
    pub fn temporal_phase(&self, ctx: ContextId) -> Option<u8> {
        self.contexts[ctx.index(self.config.smt_per_core) as usize]
            .gate
            .map(|g| g.phase)
    }

    /// Installs a way-partition mask restricting `ctx`'s fills into its
    /// core's L2 (see [`crate::Cache::set_way_mask`]).
    ///
    /// # Errors
    ///
    /// Returns a message if the mask selects no way.
    pub fn set_l2_way_mask(&mut self, ctx: ContextId, mask: u64) -> Result<(), String> {
        self.ctx_index(ctx); // bounds check
        self.memory.l2_mut(ctx.core()).set_way_mask(ctx, mask)
    }

    /// Removes any L2 way-partition mask for `ctx`.
    pub fn clear_l2_way_mask(&mut self, ctx: ContextId) {
        self.ctx_index(ctx); // bounds check
        self.memory.l2_mut(ctx.core()).clear_way_mask(ctx);
    }

    /// Parks (deschedules) a hardware context: its threads stay attached
    /// but nothing further is dispatched until
    /// [`resume_context`](Machine::resume_context). The op in flight, if
    /// any, completes first — containment takes effect at the next op
    /// boundary, like migration.
    pub fn park_context(&mut self, ctx: ContextId) {
        let idx = self.ctx_index(ctx);
        self.contexts[idx].parked = true;
    }

    /// Resumes a parked context after the configured deschedule cost.
    pub fn resume_context(&mut self, ctx: ContextId) {
        let idx = self.ctx_index(ctx);
        if !self.contexts[idx].parked {
            return;
        }
        self.contexts[idx].parked = false;
        let when = self.now + self.config.mitigation.deschedule_cycles;
        self.queue.push(when, EngineEvent::Wake(idx));
    }

    /// Whether `ctx` is currently parked.
    pub fn is_parked(&self, ctx: ContextId) -> bool {
        self.contexts[ctx.index(self.config.smt_per_core) as usize].parked
    }

    /// Runs the machine for `cycles` more cycles of simulated time.
    pub fn run_for(&mut self, cycles: u64) {
        let end = self.now + cycles;
        self.run_until(end);
    }

    /// Runs the machine until simulated time reaches `end`.
    pub fn run_until(&mut self, end: Cycle) {
        while let Some(when) = self.queue.peek_time() {
            if when > end {
                break;
            }
            // Invariant: peek_time() just returned Some, and nothing popped
            // in between.
            let (t, ev) = self.queue.pop().expect("peeked event");
            self.now = self.now.max(t);
            self.stats.events_dispatched += 1;
            match ev {
                EngineEvent::OpComplete(idx) => {
                    self.contexts[idx].busy = false;
                    self.dispatch(idx, t);
                }
                EngineEvent::Wake(idx) => {
                    self.contexts[idx].wake_scheduled = false;
                    if !self.contexts[idx].busy {
                        self.dispatch(idx, t);
                    }
                }
            }
        }
        self.now = self.now.max(end);
    }

    /// Whether any thread is still runnable or sleeping.
    pub fn has_live_threads(&self) -> bool {
        self.contexts.iter().any(|c| c.has_threads())
    }

    fn ctx_index(&self, ctx: ContextId) -> usize {
        assert!(
            ctx.core() < self.config.cores && ctx.smt() < self.config.smt_per_core,
            "context {ctx} out of range"
        );
        ctx.index(self.config.smt_per_core) as usize
    }

    fn flat_to_ctx(&self, idx: usize) -> ContextId {
        let smt = self.config.smt_per_core as usize;
        ContextId::new((idx / smt) as u8, (idx % smt) as u8)
    }

    fn emit_events(&mut self) {
        if self.event_buf.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.event_buf);
        for ev in &events {
            for probe in &self.probes {
                probe.borrow_mut().on_event(ev);
            }
        }
        self.event_buf = events;
        self.event_buf.clear();
    }

    /// Core scheduling + execution loop for one context, starting at `t`.
    /// Runs exactly one timed op (scheduling an `OpComplete`), or idles the
    /// context.
    fn dispatch(&mut self, idx: usize, mut t: Cycle) {
        let ctx_id = self.flat_to_ctx(idx);
        let quantum = self.config.scheduler.quantum_cycles;
        let switch_cost = self.config.scheduler.switch_cost;
        loop {
            // Containment: a parked context dispatches nothing until it is
            // resumed (the resume pushes the wake that restarts it).
            if self.contexts[idx].parked {
                self.contexts[idx].busy = false;
                self.emit_events();
                return;
            }

            // Containment: outside its temporal-partition slot the context
            // stalls until the slot reopens, plus the drain overhead the
            // handover costs.
            if let Some(gate) = self.contexts[idx].gate {
                if !gate.allows(t) {
                    self.stats.partition_stalls += 1;
                    if !self.contexts[idx].wake_scheduled {
                        self.contexts[idx].wake_scheduled = true;
                        let reopen =
                            gate.next_open(t) + self.config.mitigation.partition_drain_cycles;
                        self.queue.push(reopen, EngineEvent::Wake(idx));
                    }
                    self.contexts[idx].busy = false;
                    self.emit_events();
                    return;
                }
            }

            // Wake any sleepers that are due.
            {
                let threads = &self.threads;
                self.contexts[idx].wake_due(t, |tid| match threads[tid as usize].state {
                    ThreadState::Sleeping { until } => until,
                    _ => Cycle::ZERO,
                });
                for &tid in &self.contexts[idx].queue {
                    // Woken sleepers become Ready.
                    debug_assert!(!matches!(threads[tid as usize].state, ThreadState::Halted));
                }
                let queue: Vec<ThreadId> = self.contexts[idx].queue.iter().copied().collect();
                for tid in queue {
                    if matches!(
                        self.threads[tid as usize].state,
                        ThreadState::Sleeping { .. }
                    ) {
                        self.threads[tid as usize].state = ThreadState::Ready;
                    }
                }
            }

            // Deferred migration: the finished thread moves away now.
            if let Some(cur) = self.contexts[idx].current {
                if let Some(target) = self.threads[cur as usize].pending_ctx.take() {
                    self.contexts[idx].current = None;
                    self.threads[cur as usize].ctx = target;
                    let target_idx = self.ctx_index(target);
                    self.contexts[target_idx].queue.push_back(cur);
                    if target_idx != idx && !self.contexts[target_idx].busy {
                        self.queue.push(t, EngineEvent::Wake(target_idx));
                    }
                    self.stats.context_switches += 1;
                    self.event_buf.push(ProbeEvent::ContextSwitch {
                        cycle: t,
                        ctx: target,
                        from: None,
                        to: Some(cur),
                    });
                    continue;
                }
            }

            // Quantum rotation.
            if let Some(cur) = self.contexts[idx].current {
                if t >= self.contexts[idx].quantum_end && !self.contexts[idx].queue.is_empty() {
                    self.contexts[idx].queue.push_back(cur);
                    self.contexts[idx].current = None;
                    self.stats.context_switches += 1;
                    let next = self.contexts[idx].queue.front().copied();
                    self.event_buf.push(ProbeEvent::ContextSwitch {
                        cycle: t,
                        ctx: ctx_id,
                        from: Some(cur),
                        to: next,
                    });
                    t += switch_cost;
                    if self.flush_on_switch {
                        self.memory.flush_core(ctx_id.core());
                        self.stats.mitigation_flushes += 1;
                        t += self.config.mitigation.flush_cycles;
                    }
                }
            }

            // Pick a thread.
            if self.contexts[idx].current.is_none() {
                match self.contexts[idx].queue.pop_front() {
                    Some(next) => {
                        self.contexts[idx].current = Some(next);
                        self.contexts[idx].quantum_end = t + quantum;
                    }
                    None => {
                        // Idle: arm a wake for the earliest sleeper, if any.
                        let threads = &self.threads;
                        let next_wake =
                            self.contexts[idx].next_wake(|tid| match threads[tid as usize].state {
                                ThreadState::Sleeping { until } => until,
                                _ => Cycle::MAX,
                            });
                        if let Some(wake) = next_wake {
                            if !self.contexts[idx].wake_scheduled {
                                self.contexts[idx].wake_scheduled = true;
                                self.queue.push(wake, EngineEvent::Wake(idx));
                            }
                        }
                        self.contexts[idx].busy = false;
                        self.emit_events();
                        return;
                    }
                }
            }

            // Invariant: the dispatch path above either scheduled a thread
            // onto this context or returned early.
            let tid = self.contexts[idx].current.expect("thread picked");
            let view = ProgramView {
                now: t,
                last_latency: self.threads[tid as usize].last_latency,
                ctx: ctx_id,
                thread: tid,
            };
            let op = self.threads[tid as usize].program.next_op(&view);
            self.stats.committed_ops += 1;

            let done = match op {
                Op::Compute { cycles } => t + cycles.max(1),
                Op::Load { addr } | Op::Store { addr } => {
                    self.stats.memory_ops += 1;
                    let mut buf = std::mem::take(&mut self.event_buf);
                    let access = self.memory.access(ctx_id, addr, t, &mut buf);
                    self.event_buf = buf;
                    t + access.latency
                }
                Op::AtomicUnaligned { addr } => {
                    self.stats.memory_ops += 1;
                    self.stats.bus_locks += 1;
                    let mut buf = std::mem::take(&mut self.event_buf);
                    let latency = self.memory.atomic_unaligned(ctx_id, addr, t, &mut buf);
                    self.event_buf = buf;
                    t + latency
                }
                Op::Div { count } => {
                    self.stats.divisions += count as u64;
                    let mut cur = t;
                    let bank = &mut self.dividers[ctx_id.core() as usize];
                    for _ in 0..count {
                        let issue = bank.issue(ctx_id, cur);
                        if let Some(holder) = issue.contended_with {
                            self.event_buf.push(ProbeEvent::DividerWait {
                                start: cur,
                                cycles: issue.wait,
                                waiter: ctx_id,
                                holder,
                            });
                        }
                        cur = issue.complete;
                    }
                    cur.max(t + 1)
                }
                Op::Mul { count } => {
                    self.stats.multiplications += count as u64;
                    let mut cur = t;
                    let bank = &mut self.multipliers[ctx_id.core() as usize];
                    for _ in 0..count {
                        let issue = bank.issue(ctx_id, cur);
                        if let Some(holder) = issue.contended_with {
                            self.event_buf.push(ProbeEvent::MultiplierWait {
                                start: cur,
                                cycles: issue.wait,
                                waiter: ctx_id,
                                holder,
                            });
                        }
                        cur = issue.complete;
                    }
                    cur.max(t + 1)
                }
                Op::Idle { cycles } => {
                    self.threads[tid as usize].state = ThreadState::Sleeping {
                        until: t + cycles.max(1),
                    };
                    self.contexts[idx].sleeping.push(tid);
                    self.contexts[idx].current = None;
                    continue;
                }
                Op::Yield => {
                    self.contexts[idx].queue.push_back(tid);
                    self.contexts[idx].current = None;
                    self.stats.context_switches += 1;
                    t += switch_cost.max(1);
                    if self.flush_on_switch {
                        self.memory.flush_core(ctx_id.core());
                        self.stats.mitigation_flushes += 1;
                        t += self.config.mitigation.flush_cycles;
                    }
                    continue;
                }
                Op::Halt => {
                    self.threads[tid as usize].state = ThreadState::Halted;
                    self.contexts[idx].current = None;
                    self.stats.halted_threads += 1;
                    continue;
                }
            };

            self.threads[tid as usize].last_latency = done - t;
            self.contexts[idx].busy = true;
            self.queue.push(done, EngineEvent::OpComplete(idx));
            self.emit_events();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::program::OpScript;

    fn tiny_config() -> MachineConfig {
        MachineConfig::builder()
            .quantum_cycles(10_000)
            .switch_cost(10)
            .build()
            .unwrap()
    }

    #[test]
    fn compute_script_runs_to_halt() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        let tid = m.spawn(
            Box::new(OpScript::new(
                "t",
                vec![Op::Compute { cycles: 100 }, Op::Compute { cycles: 50 }],
            )),
            ctx,
        );
        m.run_for(1_000);
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
        assert_eq!(m.stats().committed_ops, 3); // two computes + halt
        assert!(!m.has_live_threads());
    }

    #[test]
    fn idle_thread_sleeps_and_wakes() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        let tid = m.spawn(
            Box::new(OpScript::new(
                "sleeper",
                vec![Op::Idle { cycles: 5_000 }, Op::Compute { cycles: 10 }],
            )),
            ctx,
        );
        m.run_for(1_000);
        assert!(matches!(m.thread_state(tid), ThreadState::Sleeping { .. }));
        m.run_for(10_000);
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
    }

    #[test]
    fn two_threads_share_a_context_via_quanta() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        let a = m.spawn(
            Box::new(OpScript::new("a", vec![Op::Compute { cycles: 30_000 }])),
            ctx,
        );
        let b = m.spawn(
            Box::new(OpScript::new("b", vec![Op::Compute { cycles: 30_000 }])),
            ctx,
        );
        // Each op is a single indivisible 30k-cycle chunk but rotation
        // happens at op boundaries; both threads eventually finish.
        m.run_for(200_000);
        assert_eq!(m.thread_state(a), ThreadState::Halted);
        assert_eq!(m.thread_state(b), ThreadState::Halted);
        assert!(m.stats().context_switches >= 1);
    }

    #[test]
    fn memory_ops_reach_the_bus() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        let trace = m.attach_trace();
        m.spawn(
            Box::new(OpScript::new(
                "loads",
                vec![Op::Load { addr: 0x1000 }, Op::Load { addr: 0x80_0000 }],
            )),
            ctx,
        );
        m.run_for(10_000);
        let events = trace.borrow();
        let bus_txns = events
            .events()
            .iter()
            .filter(|e| matches!(e, ProbeEvent::BusTransaction { .. }))
            .count();
        assert_eq!(bus_txns, 2, "both cold loads miss to DRAM");
    }

    #[test]
    fn atomic_unaligned_emits_bus_lock() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        let trace = m.attach_trace();
        m.spawn(
            Box::new(OpScript::new(
                "locker",
                vec![Op::AtomicUnaligned { addr: 0x1000 }],
            )),
            ctx,
        );
        m.run_for(10_000);
        assert_eq!(m.stats().bus_locks, 1);
        assert!(trace
            .borrow()
            .events()
            .iter()
            .any(|e| matches!(e, ProbeEvent::BusLock { .. })));
    }

    #[test]
    fn divider_contention_between_hyperthreads() {
        let mut m = Machine::new(tiny_config());
        let c0 = m.config().context_id(0, 0);
        let c1 = m.config().context_id(0, 1);
        let trace = m.attach_trace();
        m.spawn(
            Box::new(OpScript::new("d0", vec![Op::Div { count: 50 }])),
            c0,
        );
        m.spawn(
            Box::new(OpScript::new("d1", vec![Op::Div { count: 50 }])),
            c1,
        );
        m.run_for(100_000);
        let waits = trace
            .borrow()
            .events()
            .iter()
            .filter(|e| matches!(e, ProbeEvent::DividerWait { .. }))
            .count();
        assert!(waits > 0, "co-resident division streams must contend");
    }

    #[test]
    fn multiplier_contention_between_hyperthreads() {
        let mut m = Machine::new(tiny_config());
        let c0 = m.config().context_id(0, 0);
        let c1 = m.config().context_id(0, 1);
        let trace = m.attach_trace();
        m.spawn(
            Box::new(OpScript::new("m0", vec![Op::Mul { count: 50 }])),
            c0,
        );
        m.spawn(
            Box::new(OpScript::new("m1", vec![Op::Mul { count: 50 }])),
            c1,
        );
        m.run_for(100_000);
        assert_eq!(m.stats().multiplications, 100);
        let waits = trace
            .borrow()
            .events()
            .iter()
            .filter(|e| matches!(e, ProbeEvent::MultiplierWait { .. }))
            .count();
        assert!(waits > 0, "co-resident multiplication streams must contend");
        // Divider bank untouched.
        assert_eq!(m.divider(0).issued(), 0);
        assert_eq!(m.multiplier(0).issued(), 100);
    }

    #[test]
    fn determinism_same_seedless_run_twice() {
        let run = || {
            let mut m = Machine::new(tiny_config());
            let ctx = m.config().context_id(0, 0);
            let trace = m.attach_trace();
            m.spawn(
                Box::new(OpScript::new(
                    "x",
                    vec![
                        Op::Load { addr: 0x1000 },
                        Op::Div { count: 3 },
                        Op::AtomicUnaligned { addr: 0x40 },
                        Op::Compute { cycles: 77 },
                    ],
                )),
                ctx,
            );
            m.run_for(100_000);
            let events = trace.borrow().events().to_vec();
            (m.now(), m.stats(), events)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn run_until_advances_now_even_when_idle() {
        let mut m = Machine::new(tiny_config());
        m.run_until(Cycle::new(123_456));
        assert_eq!(m.now(), Cycle::new(123_456));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn spawn_on_invalid_context_panics() {
        let mut m = Machine::new(tiny_config());
        m.spawn(Box::new(OpScript::new("x", vec![])), ContextId::new(7, 0));
    }

    #[test]
    fn migration_moves_queued_thread_immediately() {
        let mut m = Machine::new(tiny_config());
        let c0 = m.config().context_id(0, 0);
        let c1 = m.config().context_id(2, 1);
        // Two threads on c0: the second sits queued.
        m.spawn(
            Box::new(OpScript::new("hog", vec![Op::Compute { cycles: 50_000 }])),
            c0,
        );
        let tid = m.spawn(
            Box::new(OpScript::new("mover", vec![Op::Compute { cycles: 10 }])),
            c0,
        );
        m.migrate_thread(tid, c1);
        assert_eq!(m.thread_context(tid), c1);
        m.run_for(1_000);
        assert_eq!(
            m.thread_state(tid),
            ThreadState::Halted,
            "ran on the new context"
        );
    }

    #[test]
    fn migration_of_running_thread_defers_to_op_boundary() {
        let mut m = Machine::new(tiny_config());
        let c0 = m.config().context_id(0, 0);
        let c1 = m.config().context_id(1, 0);
        let tid = m.spawn(
            Box::new(OpScript::new(
                "runner",
                vec![Op::Compute { cycles: 5_000 }, Op::Compute { cycles: 5_000 }],
            )),
            c0,
        );
        m.run_for(1_000); // first op in flight
        m.migrate_thread(tid, c1);
        assert_eq!(m.thread_context(tid), c0, "still on old context mid-op");
        m.run_for(20_000);
        assert_eq!(m.thread_context(tid), c1);
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
    }

    #[test]
    fn migration_moves_sleeping_thread() {
        let mut m = Machine::new(tiny_config());
        let c0 = m.config().context_id(0, 0);
        let c1 = m.config().context_id(3, 1);
        let tid = m.spawn(
            Box::new(OpScript::new(
                "sleeper",
                vec![Op::Idle { cycles: 5_000 }, Op::Compute { cycles: 10 }],
            )),
            c0,
        );
        m.run_for(1_000);
        assert!(matches!(m.thread_state(tid), ThreadState::Sleeping { .. }));
        m.migrate_thread(tid, c1);
        assert_eq!(m.thread_context(tid), c1);
        m.run_for(10_000);
        assert_eq!(
            m.thread_state(tid),
            ThreadState::Halted,
            "woke on new context"
        );
    }

    #[test]
    #[should_panic(expected = "halted")]
    fn migrating_halted_thread_panics() {
        let mut m = Machine::new(tiny_config());
        let c0 = m.config().context_id(0, 0);
        let tid = m.spawn(Box::new(OpScript::new("done", vec![])), c0);
        m.run_for(1_000);
        m.migrate_thread(tid, m.config().context_id(1, 0));
    }

    #[test]
    fn flush_on_switch_invalidates_private_caches() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        let trace = m.attach_trace();
        m.set_flush_on_switch(true);
        m.spawn(
            Box::new(OpScript::new(
                "reloader",
                vec![
                    Op::Load { addr: 0x1000 },
                    Op::Yield,
                    Op::Load { addr: 0x1000 },
                ],
            )),
            ctx,
        );
        m.run_for(100_000);
        assert!(m.stats().mitigation_flushes >= 1, "yield flushed the core");
        let misses = trace
            .borrow()
            .events()
            .iter()
            .filter(|e| matches!(e, ProbeEvent::CacheAccess { hit: false, .. }))
            .count();
        assert_eq!(misses, 2, "the re-load misses again after the flush");
    }

    #[test]
    fn temporal_gate_stalls_context_until_its_slot() {
        use crate::config::MitigationCostConfig;
        let config = MachineConfig::builder()
            .quantum_cycles(10_000)
            .switch_cost(10)
            .mitigation(MitigationCostConfig {
                partition_slot_cycles: 50_000,
                partition_drain_cycles: 100,
                ..MitigationCostConfig::default()
            })
            .build()
            .unwrap();
        let mut m = Machine::new(config);
        let ctx = m.config().context_id(0, 0);
        let tid = m.spawn(
            Box::new(OpScript::new("gated", vec![Op::Compute { cycles: 100 }])),
            ctx,
        );
        // Phase 1 owns odd slots: closed during [0, 50k).
        m.set_temporal_phase(ctx, Some(1));
        m.run_for(40_000);
        assert_eq!(m.stats().committed_ops, 0, "gate closed: nothing ran");
        assert!(m.stats().partition_stalls >= 1);
        m.run_for(20_000);
        assert_eq!(m.thread_state(tid), ThreadState::Halted, "slot opened");
        assert_eq!(m.temporal_phase(ctx), Some(1));
        m.set_temporal_phase(ctx, None);
        assert_eq!(m.temporal_phase(ctx), None);
    }

    #[test]
    fn parked_context_dispatches_nothing_until_resumed() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        let tid = m.spawn(
            Box::new(OpScript::new("parked", vec![Op::Compute { cycles: 10 }])),
            ctx,
        );
        m.park_context(ctx);
        assert!(m.is_parked(ctx));
        m.run_for(100_000);
        assert_eq!(m.stats().committed_ops, 0, "parked context never ran");
        m.resume_context(ctx);
        assert!(!m.is_parked(ctx));
        m.run_for(200_000);
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
    }

    #[test]
    fn l2_way_mask_installs_and_clears_through_machine() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        assert!(m.set_l2_way_mask(ctx, 0).is_err(), "empty mask rejected");
        m.set_l2_way_mask(ctx, 0b11).unwrap();
        assert!(m.memory().l2(0).is_way_partitioned());
        assert_eq!(m.memory().l2(0).way_mask(ctx), 0b11);
        m.clear_l2_way_mask(ctx);
        assert!(!m.memory().l2(0).is_way_partitioned());
    }

    #[test]
    fn yield_rotates_between_threads() {
        let mut m = Machine::new(tiny_config());
        let ctx = m.config().context_id(0, 0);
        let a = m.spawn(
            Box::new(OpScript::new(
                "y1",
                vec![Op::Yield, Op::Compute { cycles: 5 }],
            )),
            ctx,
        );
        let b = m.spawn(
            Box::new(OpScript::new("y2", vec![Op::Compute { cycles: 5 }])),
            ctx,
        );
        m.run_for(100_000);
        assert_eq!(m.thread_state(a), ThreadState::Halted);
        assert_eq!(m.thread_state(b), ThreadState::Halted);
    }
}
