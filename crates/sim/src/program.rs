//! The [`Program`] trait: how simulated software is expressed.

use crate::ops::Op;
use crate::probe::{ContextId, ThreadId};
use crate::time::Cycle;

/// Read-only view of the executing environment passed to
/// [`Program::next_op`].
///
/// The `last_latency` field is how covert-channel *spy* programs observe
/// timing: it reports the end-to-end latency (in cycles) of the previous op,
/// including all queuing and contention delays — the moral equivalent of
/// bracketing an operation with `rdtsc`.
#[derive(Debug, Clone, Copy)]
pub struct ProgramView {
    /// Current simulated time (the instant the previous op completed).
    pub now: Cycle,
    /// Latency of the previously executed op in cycles (0 before the first
    /// op, and for `Yield`).
    pub last_latency: u64,
    /// The hardware context the thread currently runs on.
    pub ctx: ContextId,
    /// This thread's identifier.
    pub thread: ThreadId,
}

/// A simulated program: a state machine producing a stream of [`Op`]s.
///
/// Programs observe time and latency through the [`ProgramView`] handed to
/// each [`next_op`](Program::next_op) call, which is sufficient to implement
/// both the trojan (timing modulation) and spy (timing observation) sides of
/// every covert channel in the paper, as well as benign workloads.
pub trait Program {
    /// Produces the next operation. Returning [`Op::Halt`] terminates the
    /// thread; `next_op` is never called again afterwards.
    fn next_op(&mut self, view: &ProgramView) -> Op;

    /// Short human-readable name used in traces and statistics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

impl Program for Box<dyn Program> {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        (**self).next_op(view)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A program that replays a fixed list of ops, then halts.
///
/// Useful in tests and as a building block for simple workloads.
///
/// ```
/// use cchunter_sim::{Op, OpScript};
/// let script = OpScript::new("demo", vec![Op::Compute { cycles: 10 }, Op::Load { addr: 64 }]);
/// assert_eq!(script.remaining(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct OpScript {
    name: String,
    ops: std::vec::IntoIter<Op>,
    remaining: usize,
}

impl OpScript {
    /// Creates a script that emits `ops` in order, then [`Op::Halt`].
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        let remaining = ops.len();
        OpScript {
            name: name.into(),
            ops: ops.into_iter(),
            remaining,
        }
    }

    /// Number of scripted ops not yet emitted.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Program for OpScript {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        match self.ops.next() {
            Some(op) => {
                self.remaining -= 1;
                op
            }
            None => Op::Halt,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A program built from a closure, for tests and one-off workloads.
pub struct FnProgram<F> {
    name: String,
    f: F,
}

impl<F: FnMut(&ProgramView) -> Op> FnProgram<F> {
    /// Wraps `f` as a [`Program`].
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnProgram {
            name: name.into(),
            f,
        }
    }
}

impl<F> std::fmt::Debug for FnProgram<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProgram")
            .field("name", &self.name)
            .finish()
    }
}

impl<F: FnMut(&ProgramView) -> Op> Program for FnProgram<F> {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        (self.f)(view)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> ProgramView {
        ProgramView {
            now: Cycle::ZERO,
            last_latency: 0,
            ctx: ContextId::new(0, 0),
            thread: 0,
        }
    }

    #[test]
    fn op_script_replays_then_halts() {
        let mut script = OpScript::new("s", vec![Op::Yield, Op::Compute { cycles: 5 }]);
        let v = view();
        assert_eq!(script.next_op(&v), Op::Yield);
        assert_eq!(script.remaining(), 1);
        assert_eq!(script.next_op(&v), Op::Compute { cycles: 5 });
        assert_eq!(script.next_op(&v), Op::Halt);
        assert_eq!(script.next_op(&v), Op::Halt);
        assert_eq!(script.name(), "s");
    }

    #[test]
    fn fn_program_sees_latency() {
        let mut last = 0;
        let mut prog = FnProgram::new("f", |v: &ProgramView| {
            last = v.last_latency;
            Op::Halt
        });
        let mut v = view();
        v.last_latency = 99;
        let _ = prog.next_op(&v);
        assert_eq!(last, 99);
    }
}
