//! The shared memory bus, including x86 bus-lock semantics.
//!
//! All L2 misses from every core are serialized on one bus. An atomic
//! unaligned access spanning two cache lines acquires the bus *lock*:
//! the bus is quiesced and held for [`crate::BusConfig::lock_hold_cycles`],
//! delaying every other requester — exactly the contention the memory-bus
//! covert channel modulates (and QPI platforms still emulate, per the
//! paper §IV-A).

use crate::config::BusConfig;
use crate::time::Cycle;

/// Grant returned by the bus for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// Instant the request was granted the bus.
    pub start: Cycle,
    /// Cycles the request waited behind earlier traffic and locks.
    pub wait: u64,
    /// Instant the request releases the bus.
    pub release: Cycle,
}

/// The shared memory bus: a single serially-granted resource.
#[derive(Debug, Clone)]
pub struct Bus {
    config: BusConfig,
    next_free: Cycle,
    transactions: u64,
    locks: u64,
    total_wait: u64,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(config: BusConfig) -> Self {
        Bus {
            config,
            next_free: Cycle::ZERO,
            transactions: 0,
            locks: 0,
            total_wait: 0,
        }
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Requests a normal cache-line transfer at time `now`.
    ///
    /// The grant serializes behind all earlier traffic, including lock
    /// holds.
    pub fn transaction(&mut self, now: Cycle) -> BusGrant {
        self.grant(now, self.config.transaction_cycles, false)
    }

    /// Requests a locked atomic unaligned operation at time `now`: holds
    /// the bus for [`BusConfig::lock_hold_cycles`].
    pub fn lock(&mut self, now: Cycle) -> BusGrant {
        self.grant(now, self.config.lock_hold_cycles, true)
    }

    /// The earliest instant a new request issued now would be granted.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total transactions granted (including locks).
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total lock grants.
    pub fn locks(&self) -> u64 {
        self.locks
    }

    /// Sum of wait cycles across all grants (a congestion measure).
    pub fn total_wait(&self) -> u64 {
        self.total_wait
    }

    fn grant(&mut self, now: Cycle, occupancy: u64, locked: bool) -> BusGrant {
        let start = self.next_free.max(now);
        let wait = start - now.min(start);
        let release = start + occupancy;
        self.next_free = release;
        self.transactions += 1;
        if locked {
            self.locks += 1;
        }
        self.total_wait += wait;
        BusGrant {
            start,
            wait,
            release,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> Bus {
        Bus::new(BusConfig {
            transaction_cycles: 10,
            dram_latency: 100,
            lock_hold_cycles: 50,
        })
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut b = bus();
        let g = b.transaction(Cycle::new(5));
        assert_eq!(g.start, Cycle::new(5));
        assert_eq!(g.wait, 0);
        assert_eq!(g.release, Cycle::new(15));
    }

    #[test]
    fn back_to_back_requests_serialize() {
        let mut b = bus();
        let g1 = b.transaction(Cycle::new(0));
        let g2 = b.transaction(Cycle::new(0));
        assert_eq!(g1.release, Cycle::new(10));
        assert_eq!(g2.start, Cycle::new(10));
        assert_eq!(g2.wait, 10);
    }

    #[test]
    fn lock_delays_subsequent_traffic() {
        let mut b = bus();
        let lock = b.lock(Cycle::new(0));
        assert_eq!(lock.release, Cycle::new(50));
        let g = b.transaction(Cycle::new(3));
        assert_eq!(g.start, Cycle::new(50));
        assert_eq!(g.wait, 47);
        assert_eq!(b.locks(), 1);
        assert_eq!(b.transactions(), 2);
    }

    #[test]
    fn bus_frees_after_gap() {
        let mut b = bus();
        b.lock(Cycle::new(0));
        let g = b.transaction(Cycle::new(1_000));
        assert_eq!(g.wait, 0);
        assert_eq!(g.start, Cycle::new(1_000));
    }

    #[test]
    fn wait_accounting_accumulates() {
        let mut b = bus();
        b.transaction(Cycle::new(0));
        b.transaction(Cycle::new(0));
        b.transaction(Cycle::new(0));
        assert_eq!(b.total_wait(), 10 + 20);
    }
}
