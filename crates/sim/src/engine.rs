//! The discrete-event kernel: a time-ordered event queue with deterministic
//! FIFO tie-breaking.

use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue.
///
/// Events at the same instant are delivered in insertion order, which makes
/// whole-machine runs deterministic.
///
/// ```
/// use cchunter_sim::engine::EventQueue;
/// use cchunter_sim::Cycle;
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(10), "b");
/// q.push(Cycle::new(5), "a");
/// q.push(Cycle::new(10), "c");
/// assert_eq!(q.pop(), Some((Cycle::new(5), "a")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), "b")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Cycle, u64, Slot<T>)>>,
    seq: u64,
    capacity: Option<usize>,
    shed: u64,
}

/// Wrapper so the payload never participates in heap ordering.
#[derive(Debug)]
struct Slot<T>(T);

impl<T> PartialEq for Slot<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for Slot<T> {}
impl<T> PartialOrd for Slot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Slot<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with unbounded capacity.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            capacity: None,
            shed: 0,
        }
    }

    /// Creates an empty queue that never holds more than `capacity` pending
    /// events.
    ///
    /// Once full, [`EventQueue::try_push`] refuses new events (drop-newest)
    /// and counts them in [`EventQueue::shed`]; memory stays bounded no
    /// matter how fast producers schedule. A `capacity` of zero sheds
    /// everything.
    pub fn bounded(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            capacity: Some(capacity),
            shed: 0,
        }
    }

    /// Schedules `payload` at `when`.
    ///
    /// On a bounded queue that is full the event is shed (counted, not
    /// stored); use [`EventQueue::try_push`] to observe admission.
    pub fn push(&mut self, when: Cycle, payload: T) {
        let _ = self.try_push(when, payload);
    }

    /// Schedules `payload` at `when`, reporting whether it was admitted.
    ///
    /// Returns `false` (and increments [`EventQueue::shed`]) only when the
    /// queue was created with [`EventQueue::bounded`] and is at capacity.
    pub fn try_push(&mut self, when: Cycle, payload: T) -> bool {
        if let Some(cap) = self.capacity {
            if self.heap.len() >= cap {
                self.shed += 1;
                return false;
            }
        }
        self.seq += 1;
        self.heap.push(Reverse((when, self.seq, Slot(payload))));
        true
    }

    /// Number of events refused because a bounded queue was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The capacity ceiling, if this queue is bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|Reverse((when, _, Slot(p)))| (when, p))
    }

    /// The instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((when, _, _))| *when)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(3), 30);
        q.push(Cycle::new(1), 10);
        q.push(Cycle::new(3), 31);
        q.push(Cycle::new(2), 20);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![10, 20, 30, 31]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(7), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.capacity(), None);
        assert_eq!(q.shed(), 0);
    }

    #[test]
    fn bounded_queue_sheds_newest_and_counts() {
        let mut q = EventQueue::bounded(2);
        assert!(q.try_push(Cycle::new(1), "a"));
        assert!(q.try_push(Cycle::new(2), "b"));
        assert!(!q.try_push(Cycle::new(3), "c"));
        q.push(Cycle::new(4), "d"); // also shed, silently
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed(), 2);
        assert_eq!(q.capacity(), Some(2));
        // Popping frees a slot; admission resumes.
        assert_eq!(q.pop(), Some((Cycle::new(1), "a")));
        assert!(q.try_push(Cycle::new(5), "e"));
        assert_eq!(q.shed(), 2);
    }

    #[test]
    fn zero_capacity_queue_sheds_everything() {
        let mut q = EventQueue::bounded(0);
        assert!(!q.try_push(Cycle::new(1), ()));
        assert!(q.is_empty());
        assert_eq!(q.shed(), 1);
    }
}
