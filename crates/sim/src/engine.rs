//! The discrete-event kernel: a time-ordered event queue with deterministic
//! FIFO tie-breaking.

use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue.
///
/// Events at the same instant are delivered in insertion order, which makes
/// whole-machine runs deterministic.
///
/// ```
/// use cchunter_sim::engine::EventQueue;
/// use cchunter_sim::Cycle;
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(10), "b");
/// q.push(Cycle::new(5), "a");
/// q.push(Cycle::new(10), "c");
/// assert_eq!(q.pop(), Some((Cycle::new(5), "a")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), "b")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Cycle, u64, Slot<T>)>>,
    seq: u64,
}

/// Wrapper so the payload never participates in heap ordering.
#[derive(Debug)]
struct Slot<T>(T);

impl<T> PartialEq for Slot<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for Slot<T> {}
impl<T> PartialOrd for Slot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Slot<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `when`.
    pub fn push(&mut self, when: Cycle, payload: T) {
        self.seq += 1;
        self.heap.push(Reverse((when, self.seq, Slot(payload))));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|Reverse((when, _, Slot(p)))| (when, p))
    }

    /// The instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((when, _, _))| *when)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(3), 30);
        q.push(Cycle::new(1), 10);
        q.push(Cycle::new(3), 31);
        q.push(Cycle::new(2), 20);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![10, 20, 30, 31]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(7), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
