//! Probe events: the indicator-event firehose consumed by CC-Hunter.
//!
//! The paper's CC-auditor receives wired event signals from the hardware
//! units under audit. The simulator reports the same signals through the
//! [`ProbeSink`] trait: bus lock acquisitions, integer-divider wait cycles,
//! and shared-cache accesses/replacements annotated with the hardware
//! contexts involved. Sinks are attached to a [`crate::Machine`] before a
//! run.

use crate::cache::CacheLevel;
use crate::time::Cycle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Identifier of a physical core.
pub type CoreId = u8;

/// Identifier of a software thread managed by the simulated OS.
pub type ThreadId = u32;

/// A hardware context: one SMT thread slot of one core.
///
/// The paper's conflict-miss tracker stores three-bit context IDs (four
/// cores × two SMT threads); [`ContextId::index`] yields exactly that
/// encoding.
///
/// ```
/// use cchunter_sim::ContextId;
/// let ctx = ContextId::new(2, 1);
/// assert_eq!(ctx.core(), 2);
/// assert_eq!(ctx.smt(), 1);
/// assert_eq!(ctx.index(2), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId {
    core: CoreId,
    smt: u8,
}

impl ContextId {
    /// Creates a context identifier for SMT slot `smt` of core `core`.
    pub const fn new(core: CoreId, smt: u8) -> Self {
        ContextId { core, smt }
    }

    /// The physical core this context belongs to.
    pub const fn core(self) -> CoreId {
        self.core
    }

    /// The SMT slot within the core.
    pub const fn smt(self) -> u8 {
        self.smt
    }

    /// Flat index of this context given `smt_per_core` slots per core.
    ///
    /// This matches the three-bit context ID stored in cache block metadata
    /// by the paper's conflict-miss tracker.
    pub const fn index(self, smt_per_core: u8) -> u8 {
        self.core * smt_per_core + self.smt
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}t{}", self.core, self.smt)
    }
}

/// A microarchitectural indicator event reported by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// The memory bus was locked (x86 `LOCK` semantics for an atomic
    /// unaligned access spanning two cache lines). This is the indicator
    /// event of the memory-bus covert channel.
    BusLock {
        /// Instant the lock was granted.
        cycle: Cycle,
        /// Context that acquired the lock.
        ctx: ContextId,
        /// Number of cycles the bus stays locked.
        hold: u64,
    },
    /// A regular (unlocked) bus transaction was granted.
    BusTransaction {
        /// Instant the transaction started on the bus.
        cycle: Cycle,
        /// Requesting context.
        ctx: ContextId,
        /// Cycles the request waited for the bus (queuing + lock delays).
        wait: u64,
    },
    /// A division from `waiter` stalled on a divider occupied by an
    /// instruction from `holder`. One event covers a contiguous run of
    /// `cycles` wait cycles starting at `start`; this is the indicator event
    /// of the integer-divider covert channel ("cycles where one thread waits
    /// for another").
    DividerWait {
        /// First stalled cycle.
        start: Cycle,
        /// Length of the stall in cycles.
        cycles: u64,
        /// Context whose division stalled.
        waiter: ContextId,
        /// Context whose division occupies the unit.
        holder: ContextId,
    },
    /// A multiplication from `waiter` stalled on a multiplier occupied by
    /// an instruction from `holder` (run semantics as [`ProbeEvent::DividerWait`]).
    MultiplierWait {
        /// First stalled cycle.
        start: Cycle,
        /// Length of the stall in cycles.
        cycles: u64,
        /// Context whose multiplication stalled.
        waiter: ContextId,
        /// Context whose multiplication occupies the unit.
        holder: ContextId,
    },
    /// An access to a monitored cache level completed.
    CacheAccess {
        /// Instant the access was issued.
        cycle: Cycle,
        /// Which cache level (only the shared L2 is reported by default).
        level: CacheLevel,
        /// Core whose cache was accessed.
        core: CoreId,
        /// Accessing context.
        ctx: ContextId,
        /// Block (line-aligned) address.
        block: u64,
        /// Whether the access hit.
        hit: bool,
    },
    /// A cache miss evicted a resident block. This is the raw material of
    /// the conflict-miss trackers: the detector classifies the miss as a
    /// conflict miss and labels it replacer→victim.
    CacheReplacement {
        /// Instant of the miss.
        cycle: Cycle,
        /// Which cache level.
        level: CacheLevel,
        /// Core whose cache was accessed.
        core: CoreId,
        /// Set index the replacement happened in.
        set: u32,
        /// Context that requested the incoming block.
        replacer: ContextId,
        /// Incoming block (line-aligned) address.
        new_block: u64,
        /// Evicted block (line-aligned) address.
        victim_block: u64,
        /// Owner context recorded in the evicted block's metadata.
        victim_owner: ContextId,
    },
    /// The OS switched the software thread running on a context.
    ContextSwitch {
        /// Instant of the switch.
        cycle: Cycle,
        /// The hardware context affected.
        ctx: ContextId,
        /// Outgoing thread, if any.
        from: Option<ThreadId>,
        /// Incoming thread, if any.
        to: Option<ThreadId>,
    },
}

impl ProbeEvent {
    /// The instant the event occurred (start instant for run events).
    pub fn cycle(&self) -> Cycle {
        match *self {
            ProbeEvent::BusLock { cycle, .. }
            | ProbeEvent::BusTransaction { cycle, .. }
            | ProbeEvent::CacheAccess { cycle, .. }
            | ProbeEvent::CacheReplacement { cycle, .. }
            | ProbeEvent::ContextSwitch { cycle, .. } => cycle,
            ProbeEvent::DividerWait { start, .. } | ProbeEvent::MultiplierWait { start, .. } => {
                start
            }
        }
    }
}

/// Observer of probe events. Implementations must be cheap: they run inline
/// with the simulation.
pub trait ProbeSink {
    /// Called for every probe event, in nondecreasing `cycle` order per
    /// resource (global order is nondecreasing by construction of the
    /// discrete-event engine).
    fn on_event(&mut self, event: &ProbeEvent);
}

/// A sink that records every event into a vector, for offline analysis.
#[derive(Debug, Default)]
pub struct VecTrace {
    events: Vec<ProbeEvent>,
}

impl VecTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events.
    pub fn events(&self) -> &[ProbeEvent] {
        &self.events
    }

    /// Consumes the trace, returning the recorded events.
    pub fn into_events(self) -> Vec<ProbeEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl ProbeSink for VecTrace {
    fn on_event(&mut self, event: &ProbeEvent) {
        self.events.push(*event);
    }
}

/// A sink with a hard capacity ceiling, modelling the finite FIFO between
/// a hardware unit and the CC-auditor.
///
/// Real auditor wiring cannot buffer an unbounded event firehose: the
/// paper's CC-auditor harvests per OS quantum, and anything the FIFO cannot
/// hold between harvests is lost. `BoundedTrace` reproduces that contract
/// in the simulator: it retains at most `capacity` events, drops the
/// *oldest* on overflow (the auditor always sees the most recent signal
/// window), and counts every loss in [`BoundedTrace::shed`] so harvest glue
/// can report a quantified loss fraction instead of silently thinning the
/// train. Memory use is bounded by `capacity` regardless of event rate.
#[derive(Debug)]
pub struct BoundedTrace {
    ring: std::collections::VecDeque<ProbeEvent>,
    capacity: usize,
    offered: u64,
    shed: u64,
}

impl BoundedTrace {
    /// Creates a sink that retains at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        BoundedTrace {
            ring: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            offered: 0,
            shed: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ProbeEvent> {
        self.ring.iter()
    }

    /// Total events offered to the sink so far (retained + shed).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events dropped because the ring was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The capacity ceiling.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Fraction of offered events lost since the last [`BoundedTrace::drain`].
    pub fn lost_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Removes and returns the retained events (oldest first), resetting
    /// the offered/shed accounting for the next harvest interval.
    pub fn drain(&mut self) -> Vec<ProbeEvent> {
        self.offered = 0;
        self.shed = 0;
        self.ring.drain(..).collect()
    }
}

impl ProbeSink for BoundedTrace {
    fn on_event(&mut self, event: &ProbeEvent) {
        self.offered += 1;
        if self.capacity == 0 {
            self.shed += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.shed += 1;
        }
        self.ring.push_back(*event);
    }
}

/// A sink that keeps only events matching a predicate.
pub struct FilteredTrace<F> {
    inner: VecTrace,
    keep: F,
}

impl<F: Fn(&ProbeEvent) -> bool> FilteredTrace<F> {
    /// Creates a trace retaining only events for which `keep` returns true.
    pub fn new(keep: F) -> Self {
        FilteredTrace {
            inner: VecTrace::new(),
            keep,
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[ProbeEvent] {
        self.inner.events()
    }

    /// Consumes the trace, returning the recorded events.
    pub fn into_events(self) -> Vec<ProbeEvent> {
        self.inner.into_events()
    }
}

impl<F> fmt::Debug for FilteredTrace<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilteredTrace")
            .field("recorded", &self.inner.len())
            .finish()
    }
}

impl<F: Fn(&ProbeEvent) -> bool> ProbeSink for FilteredTrace<F> {
    fn on_event(&mut self, event: &ProbeEvent) {
        if (self.keep)(event) {
            self.inner.on_event(event);
        }
    }
}

/// A lossy wrapper around another sink that models a degraded harvest path.
///
/// Real CC-auditor wiring can lose or delay indicator signals: the event
/// queue between the hardware unit and the auditor can overflow, and
/// signal propagation can smear timestamps. `DegradedProbe` reproduces
/// both effects deterministically from a seed so fault-tolerance tests
/// are repeatable: each event is independently dropped with probability
/// `drop_rate`, and surviving events have their cycle stamp jittered
/// forward by up to `jitter_cycles`.
///
/// Jitter is clamped so the per-resource nondecreasing-cycle contract of
/// [`ProbeSink::on_event`] still holds for the wrapped sink: a jittered
/// timestamp is never allowed to move behind the last cycle already
/// forwarded for the same resource class.
pub struct DegradedProbe {
    inner: Rc<RefCell<dyn ProbeSink>>,
    drop_rate: f64,
    jitter_cycles: u64,
    rng: SmallRng,
    dropped: u64,
    jittered: u64,
    forwarded: u64,
    // Last forwarded cycle per resource class (bus, divider, multiplier,
    // cache, scheduler) — the floor for jittered timestamps.
    floor: [u64; 5],
}

impl DegradedProbe {
    /// Wraps `inner`, dropping each event with probability `drop_rate`
    /// (clamped to `[0, 1]`) and jittering survivors forward by up to
    /// `jitter_cycles`. All randomness derives from `seed`.
    pub fn new(
        inner: Rc<RefCell<dyn ProbeSink>>,
        drop_rate: f64,
        jitter_cycles: u64,
        seed: u64,
    ) -> Self {
        DegradedProbe {
            inner,
            drop_rate: drop_rate.clamp(0.0, 1.0),
            jitter_cycles,
            rng: SmallRng::seed_from_u64(seed),
            dropped: 0,
            jittered: 0,
            forwarded: 0,
            floor: [0; 5],
        }
    }

    /// Number of events silently dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events whose timestamp was perturbed so far.
    pub fn jittered(&self) -> u64 {
        self.jittered
    }

    /// Number of events forwarded to the wrapped sink so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn class(event: &ProbeEvent) -> usize {
        match event {
            ProbeEvent::BusLock { .. } | ProbeEvent::BusTransaction { .. } => 0,
            ProbeEvent::DividerWait { .. } => 1,
            ProbeEvent::MultiplierWait { .. } => 2,
            ProbeEvent::CacheAccess { .. } | ProbeEvent::CacheReplacement { .. } => 3,
            ProbeEvent::ContextSwitch { .. } => 4,
        }
    }

    fn restamp(event: &ProbeEvent, cycle: Cycle) -> ProbeEvent {
        let mut out = *event;
        match &mut out {
            ProbeEvent::BusLock { cycle: c, .. }
            | ProbeEvent::BusTransaction { cycle: c, .. }
            | ProbeEvent::CacheAccess { cycle: c, .. }
            | ProbeEvent::CacheReplacement { cycle: c, .. }
            | ProbeEvent::ContextSwitch { cycle: c, .. } => *c = cycle,
            ProbeEvent::DividerWait { start, .. } | ProbeEvent::MultiplierWait { start, .. } => {
                *start = cycle
            }
        }
        out
    }
}

impl fmt::Debug for DegradedProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DegradedProbe")
            .field("drop_rate", &self.drop_rate)
            .field("jitter_cycles", &self.jitter_cycles)
            .field("dropped", &self.dropped)
            .field("jittered", &self.jittered)
            .field("forwarded", &self.forwarded)
            .finish()
    }
}

impl ProbeSink for DegradedProbe {
    fn on_event(&mut self, event: &ProbeEvent) {
        if self.drop_rate > 0.0 && self.rng.gen_bool(self.drop_rate) {
            self.dropped += 1;
            return;
        }
        let class = Self::class(event);
        let mut cycle = event.cycle().as_u64();
        if self.jitter_cycles > 0 {
            let shift = self.rng.gen_range(0..=self.jitter_cycles);
            if shift > 0 {
                cycle = cycle.saturating_add(shift);
                self.jittered += 1;
            }
        }
        // Never move behind what the wrapped sink already saw for this
        // resource: the auditor requires nondecreasing signal times.
        cycle = cycle.max(self.floor[class]);
        self.floor[class] = cycle;
        self.forwarded += 1;
        if cycle == event.cycle().as_u64() {
            self.inner.borrow_mut().on_event(event);
        } else {
            self.inner
                .borrow_mut()
                .on_event(&Self::restamp(event, Cycle::new(cycle)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_id_flat_index_matches_three_bit_encoding() {
        // Four cores, two hyperthreads: indices 0..8 fit in three bits.
        let mut seen = Vec::new();
        for core in 0..4 {
            for smt in 0..2 {
                seen.push(ContextId::new(core, smt).index(2));
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn vec_trace_records_in_order() {
        let mut trace = VecTrace::new();
        for i in 0..4u64 {
            trace.on_event(&ProbeEvent::BusLock {
                cycle: Cycle::new(i * 10),
                ctx: ContextId::new(0, 0),
                hold: 5,
            });
        }
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.events()[3].cycle(), Cycle::new(30));
    }

    #[test]
    fn filtered_trace_drops_unmatched() {
        let mut trace = FilteredTrace::new(|e| matches!(e, ProbeEvent::BusLock { .. }));
        trace.on_event(&ProbeEvent::BusLock {
            cycle: Cycle::new(1),
            ctx: ContextId::new(0, 0),
            hold: 1,
        });
        trace.on_event(&ProbeEvent::BusTransaction {
            cycle: Cycle::new(2),
            ctx: ContextId::new(0, 0),
            wait: 0,
        });
        assert_eq!(trace.events().len(), 1);
    }

    #[test]
    fn event_cycle_accessor_covers_all_variants() {
        let ctx = ContextId::new(1, 0);
        let events = [
            ProbeEvent::BusLock {
                cycle: Cycle::new(1),
                ctx,
                hold: 2,
            },
            ProbeEvent::BusTransaction {
                cycle: Cycle::new(2),
                ctx,
                wait: 0,
            },
            ProbeEvent::DividerWait {
                start: Cycle::new(3),
                cycles: 4,
                waiter: ctx,
                holder: ContextId::new(1, 1),
            },
            ProbeEvent::ContextSwitch {
                cycle: Cycle::new(4),
                ctx,
                from: None,
                to: Some(7),
            },
        ];
        let cycles: Vec<u64> = events.iter().map(|e| e.cycle().as_u64()).collect();
        assert_eq!(cycles, vec![1, 2, 3, 4]);
    }

    #[test]
    fn context_display_is_compact() {
        assert_eq!(ContextId::new(3, 1).to_string(), "c3t1");
    }

    fn bus_lock_at(cycle: u64) -> ProbeEvent {
        ProbeEvent::BusLock {
            cycle: Cycle::new(cycle),
            ctx: ContextId::new(0, 0),
            hold: 5,
        }
    }

    #[test]
    fn bounded_trace_drops_oldest_and_quantifies_loss() {
        let mut sink = BoundedTrace::new(4);
        for i in 0..10u64 {
            sink.on_event(&bus_lock_at(i * 10));
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.offered(), 10);
        assert_eq!(sink.shed(), 6);
        assert!((sink.lost_fraction() - 0.6).abs() < 1e-12);
        // The survivors are the *newest* events.
        let kept: Vec<u64> = sink.events().map(|e| e.cycle().as_u64()).collect();
        assert_eq!(kept, vec![60, 70, 80, 90]);
        // Draining resets the accounting for the next quantum.
        let drained = sink.drain();
        assert_eq!(drained.len(), 4);
        assert!(sink.is_empty());
        assert_eq!(sink.offered(), 0);
        assert_eq!(sink.lost_fraction(), 0.0);
    }

    #[test]
    fn bounded_trace_zero_capacity_sheds_everything() {
        let mut sink = BoundedTrace::new(0);
        sink.on_event(&bus_lock_at(5));
        assert!(sink.is_empty());
        assert_eq!(sink.shed(), 1);
        assert_eq!(sink.lost_fraction(), 1.0);
    }

    #[test]
    fn degraded_probe_is_transparent_at_zero_rates() {
        let trace = Rc::new(RefCell::new(VecTrace::new()));
        let mut probe = DegradedProbe::new(trace.clone(), 0.0, 0, 7);
        for i in 0..16u64 {
            probe.on_event(&bus_lock_at(i * 10));
        }
        assert_eq!(probe.dropped(), 0);
        assert_eq!(probe.jittered(), 0);
        assert_eq!(probe.forwarded(), 16);
        let recorded: Vec<u64> = trace
            .borrow()
            .events()
            .iter()
            .map(|e| e.cycle().as_u64())
            .collect();
        assert_eq!(recorded, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn degraded_probe_drops_and_is_deterministic() {
        let run = |seed| {
            let trace = Rc::new(RefCell::new(VecTrace::new()));
            let mut probe = DegradedProbe::new(trace.clone(), 0.5, 0, seed);
            for i in 0..256u64 {
                probe.on_event(&bus_lock_at(i * 10));
            }
            let kept = trace.borrow().len();
            (probe.dropped(), kept)
        };
        let (dropped, kept) = run(42);
        assert!(dropped > 0, "a 50% drop rate must lose something");
        assert_eq!(dropped as usize + kept, 256);
        assert_eq!(run(42), (dropped, kept), "same seed, same losses");
    }

    #[test]
    fn degraded_probe_jitter_preserves_per_resource_order() {
        let trace = Rc::new(RefCell::new(VecTrace::new()));
        let mut probe = DegradedProbe::new(trace.clone(), 0.0, 500, 3);
        for i in 0..128u64 {
            probe.on_event(&bus_lock_at(i * 10));
        }
        assert!(probe.jittered() > 0, "a 500-cycle jitter must fire");
        let recorded: Vec<u64> = trace
            .borrow()
            .events()
            .iter()
            .map(|e| e.cycle().as_u64())
            .collect();
        assert!(
            recorded.windows(2).all(|w| w[0] <= w[1]),
            "jittered bus events must stay nondecreasing: {recorded:?}"
        );
    }
}
