//! # cchunter-sim
//!
//! A deterministic, discrete-event multicore processor simulator that serves
//! as the substrate for the CC-Hunter reproduction (Chen & Venkataramani,
//! MICRO 2014).
//!
//! The original paper evaluates CC-Hunter inside the MARSSx86 full-system
//! simulator. CC-Hunter itself only consumes *microarchitectural event
//! trains* — memory-bus lock events, integer-divider wait cycles, and cache
//! conflict misses labeled with their replacer/victim hardware contexts —
//! plus the latencies observed by the covert-channel processes themselves.
//! This crate therefore models exactly the shared-hardware behaviour those
//! event trains depend on:
//!
//! * a quad-core, 2-way SMT processor clocked at 2.5 GHz (configurable),
//! * per-core L1 and L2 set-associative caches shared between hyperthreads,
//! * a shared memory bus with x86 `LOCK` semantics for atomic unaligned
//!   accesses spanning two cache lines,
//! * a per-core bank of non-pipelined integer dividers with SMT arbitration,
//! * an OS scheduler with configurable time quanta,
//! * a probe interface that reports indicator events to observers (the
//!   CC-auditor model lives in `cchunter-detector`).
//!
//! Programs are expressed as streams of abstract operations ([`Op`]) produced
//! by implementations of the [`Program`] trait; the simulator is fully
//! deterministic for a given configuration and seed.
//!
//! ## Example
//!
//! ```
//! use cchunter_sim::{Machine, MachineConfig, Op, Program, ProgramView};
//!
//! /// A program that performs one million cycles of pure compute.
//! struct Busy {
//!     remaining: u64,
//! }
//!
//! impl Program for Busy {
//!     fn next_op(&mut self, _view: &ProgramView) -> Op {
//!         if self.remaining == 0 {
//!             return Op::Halt;
//!         }
//!         let chunk = self.remaining.min(10_000);
//!         self.remaining -= chunk;
//!         Op::Compute { cycles: chunk }
//!     }
//! }
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let ctx = machine.config().context_id(0, 0);
//! machine.spawn(Box::new(Busy { remaining: 1_000_000 }), ctx);
//! machine.run_for(2_000_000);
//! assert!(machine.stats().committed_ops > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod cache;
pub mod config;
pub mod divider;
pub mod engine;
pub mod machine;
pub mod memory;
pub mod ops;
pub mod probe;
pub mod program;
pub mod scheduler;
pub mod stats;
pub mod time;

pub use bus::{Bus, BusGrant};
pub use cache::{Cache, CacheAccessOutcome, CacheLevel};
pub use config::{
    BusConfig, CacheConfig, ConfigError, DividerConfig, MachineConfig, MachineConfigBuilder,
    MitigationCostConfig, SchedulerConfig,
};
pub use divider::{DivIssue, DividerBank};
pub use machine::Machine;
pub use memory::{MemAccess, MemorySystem};
pub use ops::{MemWidth, Op};
pub use probe::{
    BoundedTrace, ContextId, CoreId, DegradedProbe, FilteredTrace, ProbeEvent, ProbeSink, ThreadId,
    VecTrace,
};
pub use program::{FnProgram, OpScript, Program, ProgramView};
pub use scheduler::{TemporalGate, ThreadState};
pub use stats::MachineStats;
pub use time::{cycles_per_second, Cycle, DEFAULT_CLOCK_HZ};
