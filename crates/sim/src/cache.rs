//! Set-associative cache model with true-LRU replacement and per-block
//! owner-context metadata.
//!
//! The owner context stored in each block's metadata is what the paper's
//! conflict-miss tracker reads to label a replacement's *victim*; the
//! requesting context is the *replacer*.

use crate::config::CacheConfig;
use crate::probe::ContextId;

/// Identifies a cache level in probe events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// Private per-core L1 (shared by a core's hyperthreads).
    L1,
    /// Per-core L2 (shared by a core's hyperthreads); the shared resource of
    /// the cache covert channel.
    L2,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Set index the access mapped to.
    pub set: u32,
    /// If the fill evicted a valid block: `(block_address, owner_context)`.
    pub victim: Option<(u64, ContextId)>,
}

#[derive(Debug, Clone, Copy)]
struct Block {
    tag: u64,
    owner: ContextId,
    /// LRU timestamp: larger is more recent.
    stamp: u64,
    valid: bool,
}

impl Block {
    fn empty() -> Self {
        Block {
            tag: 0,
            owner: ContextId::new(0, 0),
            stamp: 0,
            valid: false,
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are byte addresses; the cache works on line-aligned block
/// addresses internally. The model tracks contents and ownership only — data
/// values are irrelevant to timing channels.
///
/// ```
/// use cchunter_sim::{Cache, CacheConfig, ContextId};
/// let cfg = CacheConfig { capacity_bytes: 1024, line_bytes: 64, ways: 2, hit_latency: 3 };
/// let mut cache = Cache::new(cfg);
/// let ctx = ContextId::new(0, 0);
/// assert!(!cache.access(0, ctx).hit);   // cold miss
/// assert!(cache.access(0, ctx).hit);    // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: u32,
    ways: u32,
    blocks: Vec<Block>,
    tick: u64,
    line_shift: u32,
    /// Per-context fill restrictions (way-partitioning, Intel CAT style):
    /// a restricted context may only *allocate* into its masked ways; hits
    /// anywhere still hit. Empty when no partition is active.
    way_masks: Vec<(ContextId, u64)>,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache geometry");
        let sets = config.sets();
        let ways = config.ways;
        Cache {
            config,
            sets,
            ways,
            blocks: vec![Block::empty(); (sets * ways) as usize],
            tick: 0,
            line_shift: config.line_bytes.trailing_zeros(),
            way_masks: Vec::new(),
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Line-aligned block address for a byte address.
    pub fn block_address(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    /// Set index a byte address maps to.
    pub fn set_index(&self, addr: u64) -> u32 {
        ((addr >> self.line_shift) & (self.sets as u64 - 1)) as u32
    }

    /// Full way mask for this geometry (all ways allocatable).
    fn full_mask(&self) -> u64 {
        if self.ways as usize >= u64::BITS as usize {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    /// Restricts `ctx` to allocate only into the ways selected by `mask`
    /// (bit *i* set ⇒ way *i* allowed). Hits in other ways are unaffected;
    /// only victim selection on a fill is masked, mirroring way-partitioning
    /// hardware such as Intel CAT.
    ///
    /// # Errors
    ///
    /// Returns a message if `mask` selects no way within this cache's
    /// associativity (which would make every fill impossible).
    pub fn set_way_mask(&mut self, ctx: ContextId, mask: u64) -> Result<(), String> {
        if mask & self.full_mask() == 0 {
            return Err(format!(
                "way mask {mask:#x} selects no way of a {}-way cache",
                self.ways
            ));
        }
        let mask = mask & self.full_mask();
        match self.way_masks.iter_mut().find(|(c, _)| *c == ctx) {
            Some(entry) => entry.1 = mask,
            None => self.way_masks.push((ctx, mask)),
        }
        Ok(())
    }

    /// Removes any fill restriction for `ctx`.
    pub fn clear_way_mask(&mut self, ctx: ContextId) {
        self.way_masks.retain(|(c, _)| *c != ctx);
    }

    /// The effective allocation mask for `ctx` (the full mask when no
    /// partition is active).
    pub fn way_mask(&self, ctx: ContextId) -> u64 {
        self.way_masks
            .iter()
            .find(|(c, _)| *c == ctx)
            .map(|(_, m)| *m)
            .unwrap_or_else(|| self.full_mask())
    }

    /// Whether any context currently has a fill restriction.
    pub fn is_way_partitioned(&self) -> bool {
        !self.way_masks.is_empty()
    }

    /// Accesses `addr` on behalf of `ctx`: returns hit/miss and, on a miss
    /// that evicts a valid block, the victim's block address and owner.
    ///
    /// On a miss the line is filled (write-allocate) and owned by `ctx`; on
    /// a hit the block's recency is refreshed and ownership transfers to the
    /// accessor, mirroring the paper's "current owner context" metadata.
    pub fn access(&mut self, addr: u64, ctx: ContextId) -> CacheAccessOutcome {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        let tag = addr >> self.line_shift >> self.sets.trailing_zeros();
        let set_shift = self.sets.trailing_zeros();
        let line_shift = self.line_shift;
        let mask = self.way_mask(ctx);
        let base = (set * self.ways) as usize;
        let slots = &mut self.blocks[base..base + self.ways as usize];

        // Hit path.
        if let Some(block) = slots.iter_mut().find(|b| b.valid && b.tag == tag) {
            block.stamp = tick;
            block.owner = ctx;
            return CacheAccessOutcome {
                hit: true,
                set,
                victim: None,
            };
        }

        // Miss: fill into an invalid allowed way, else evict the true-LRU
        // block among the allowed ways.
        let allowed = |i: usize| mask & (1u64 << i) != 0;
        let (way, victim) = match slots
            .iter()
            .enumerate()
            .position(|(i, b)| allowed(i) && !b.valid)
        {
            Some(way) => (way, None),
            None => {
                let way = slots
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| allowed(*i))
                    .min_by_key(|(_, b)| b.stamp)
                    .map(|(i, _)| i)
                    .expect("mask selects at least one way");
                let evicted = slots[way];
                let victim_addr = ((evicted.tag << set_shift) | set as u64) << line_shift;
                (way, Some((victim_addr, evicted.owner)))
            }
        };
        slots[way] = Block {
            tag,
            owner: ctx,
            stamp: tick,
            valid: true,
        };
        CacheAccessOutcome {
            hit: false,
            set,
            victim,
        }
    }

    /// Probes whether `addr` is resident without disturbing LRU state.
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = addr >> self.line_shift >> self.sets.trailing_zeros();
        let base = (set * self.ways) as usize;
        self.blocks[base..base + self.ways as usize]
            .iter()
            .any(|b| b.valid && b.tag == tag)
    }

    /// Number of valid blocks currently resident.
    pub fn occupancy(&self) -> usize {
        self.blocks.iter().filter(|b| b.valid).count()
    }

    /// Invalidates all contents.
    pub fn flush(&mut self) {
        for b in &mut self.blocks {
            b.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64B lines.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        })
    }

    fn ctx(n: u8) -> ContextId {
        ContextId::new(n, 0)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let out = c.access(0x40, ctx(0));
        assert!(!out.hit);
        assert!(out.victim.is_none());
        assert!(c.access(0x40, ctx(0)).hit);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn same_set_eviction_is_lru_and_reports_victim() {
        let mut c = small();
        // Addresses mapping to set 0: stride = sets*line = 4*64 = 256.
        let a = 0u64;
        let b = 256u64;
        let d = 512u64;
        c.access(a, ctx(0));
        c.access(b, ctx(1));
        c.access(a, ctx(0)); // refresh a; b is now LRU
        let out = c.access(d, ctx(2));
        assert!(!out.hit);
        let (victim_addr, victim_owner) = out.victim.unwrap();
        assert_eq!(victim_addr, b);
        assert_eq!(victim_owner, ctx(1));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn ownership_transfers_on_hit() {
        let mut c = small();
        c.access(0, ctx(0));
        c.access(0, ctx(1)); // hit by another context takes ownership
        c.access(256, ctx(2));
        // Fill the set and evict the LRU (address 0, now owned by ctx 1).
        let out = c.access(512, ctx(2));
        assert_eq!(out.victim.unwrap(), (0, ctx(1)));
    }

    #[test]
    fn victim_address_reconstruction_roundtrips() {
        let mut c = small();
        for i in 0..3u64 {
            let addr = 0x1000 + i * 256; // same set, different tags
            let out = c.access(addr, ctx(0));
            if let Some((victim, _)) = out.victim {
                assert_eq!(victim, 0x1000, "oldest block evicted first");
            }
        }
    }

    #[test]
    fn set_index_and_block_address() {
        let c = small();
        assert_eq!(c.set_index(0x40), 1);
        assert_eq!(c.set_index(0x100), 0);
        assert_eq!(c.block_address(0x47), 0x40);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        c.access(0, ctx(0));
        c.access(64, ctx(0));
        assert_eq!(c.occupancy(), 2);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        // 8 lines across 4 sets: fits exactly (2 ways each), no evictions.
        for i in 0..8u64 {
            let out = c.access(i * 64, ctx(0));
            assert!(out.victim.is_none());
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn way_mask_confines_fills_to_allowed_ways() {
        let mut c = small();
        // Restrict ctx 1 to way 0 only; ctx 0 stays unrestricted.
        c.set_way_mask(ctx(1), 0b01).unwrap();
        // ctx 0 fills both ways of set 0.
        c.access(0, ctx(0));
        c.access(256, ctx(0));
        // ctx 1 must always evict way 0's occupant and never touch way 1.
        let out = c.access(512, ctx(1));
        assert_eq!(out.victim.unwrap().0, 0, "way 0 (LRU-oldest fill) evicted");
        let out = c.access(768, ctx(1));
        assert_eq!(out.victim.unwrap().0, 512, "ctx 1 churns only way 0");
        assert!(c.contains(256), "way 1 line untouched by partition");
    }

    #[test]
    fn way_mask_does_not_block_hits() {
        let mut c = small();
        c.access(0, ctx(0)); // fills way 0
        c.set_way_mask(ctx(1), 0b10).unwrap();
        assert!(
            c.access(0, ctx(1)).hit,
            "hit in a disallowed way still hits"
        );
    }

    #[test]
    fn way_mask_rejects_empty_and_clears() {
        let mut c = small();
        assert!(c.set_way_mask(ctx(0), 0).is_err());
        assert!(c.set_way_mask(ctx(0), 0b100).is_err(), "outside 2 ways");
        c.set_way_mask(ctx(0), 0b01).unwrap();
        assert!(c.is_way_partitioned());
        assert_eq!(c.way_mask(ctx(0)), 0b01);
        c.clear_way_mask(ctx(0));
        assert!(!c.is_way_partitioned());
        assert_eq!(c.way_mask(ctx(0)), 0b11, "back to the full mask");
    }

    #[test]
    fn paper_l2_geometry_has_512_sets() {
        let c = Cache::new(CacheConfig {
            capacity_bytes: 256 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency: 15,
        });
        assert_eq!(c.sets(), 512);
    }
}
