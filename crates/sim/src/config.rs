//! Machine configuration.
//!
//! Defaults mirror the paper's evaluation platform: a quad-core 2.5 GHz
//! processor with two hyperthreads per core, private 32 KB L1 and 256 KB L2
//! caches (shared between the hyperthreads of a core), a shared memory bus,
//! and an OS scheduler with 0.1 s time quanta.

use crate::probe::ContextId;
use crate::time::DEFAULT_CLOCK_HZ;
use std::fmt;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> u32 {
        let lines = self.capacity_bytes / self.line_bytes;
        assert_eq!(
            lines % self.ways as u64,
            0,
            "cache lines not divisible by ways"
        );
        (lines / self.ways as u64) as u32
    }

    /// Total number of cache blocks (lines).
    pub fn total_blocks(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if any field is zero, the line size
    /// is not a power of two, or the geometry does not divide evenly.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 || self.line_bytes == 0 || self.ways == 0 {
            return Err("cache geometry fields must be nonzero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("cache line size must be a power of two".into());
        }
        let lines = self.capacity_bytes / self.line_bytes;
        if lines == 0 || !lines.is_multiple_of(self.ways as u64) {
            return Err("cache capacity must be a whole number of sets".into());
        }
        if !(lines / self.ways as u64).is_power_of_two() {
            return Err("number of cache sets must be a power of two".into());
        }
        Ok(())
    }
}

/// Shared memory bus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Cycles one cache-line transfer occupies the bus.
    pub transaction_cycles: u64,
    /// DRAM access latency in cycles (added after the bus grant).
    pub dram_latency: u64,
    /// Cycles the bus stays locked for an atomic unaligned access spanning
    /// two lines (two transfers plus the quiesce the lock protocol imposes).
    pub lock_hold_cycles: u64,
}

/// Integer divider bank parameters (per core, shared between hyperthreads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DividerConfig {
    /// Number of divider units per core.
    pub units_per_core: u32,
    /// Latency of one non-pipelined division in cycles.
    pub latency: u64,
}

/// OS scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Time quantum in cycles (0.1 s = 250 M cycles at 2.5 GHz).
    pub quantum_cycles: u64,
    /// Direct cost of a context switch in cycles.
    pub switch_cost: u64,
}

/// Cycle costs charged when the machine enforces a mitigation response
/// (the per-response overhead knobs of the containment escalation ladder).
///
/// Flushing caches on a context switch, draining shared resources at a
/// temporal-partition handover, and parking a context are not free on real
/// hardware; these knobs let the benign-workload overhead of each response
/// be modeled and measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MitigationCostConfig {
    /// Extra cycles a context switch costs while flush-on-switch is active
    /// (write-back and invalidate of the core's private caches).
    pub flush_cycles: u64,
    /// Length of one temporal-partition slot in cycles. Gated contexts run
    /// only in alternating slots, so the pair never co-executes.
    pub partition_slot_cycles: u64,
    /// Drain overhead charged when a gated context's slot reopens (shared
    /// queues and in-flight traffic must quiesce at the handover, after
    /// fence.t-style temporal partitioning).
    pub partition_drain_cycles: u64,
    /// Cycles charged when a parked (descheduled) context is resumed.
    pub deschedule_cycles: u64,
}

impl Default for MitigationCostConfig {
    fn default() -> Self {
        MitigationCostConfig {
            flush_cycles: 30_000,
            partition_slot_cycles: 2_000_000,
            partition_drain_cycles: 5_000,
            deschedule_cycles: 50_000,
        }
    }
}

/// Full machine configuration.
///
/// Use [`MachineConfig::default`] for the paper's platform or
/// [`MachineConfig::builder`] to customize. All geometry is validated when a
/// [`crate::Machine`] is constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of physical cores.
    pub cores: u8,
    /// SMT hardware threads per core.
    pub smt_per_core: u8,
    /// Core clock in Hz (used only for cycle↔second conversions).
    pub clock_hz: u64,
    /// Private L1 cache (shared between a core's hyperthreads).
    pub l1: CacheConfig,
    /// Private L2 cache (shared between a core's hyperthreads).
    pub l2: CacheConfig,
    /// Shared memory bus.
    pub bus: BusConfig,
    /// Integer divider bank.
    pub divider: DividerConfig,
    /// Integer multiplier bank (the other contended execution unit of
    /// Wang & Lee's SMT channels).
    pub multiplier: DividerConfig,
    /// OS scheduler.
    pub scheduler: SchedulerConfig,
    /// Per-response cost knobs for mitigation enforcement.
    pub mitigation: MitigationCostConfig,
}

impl Default for MachineConfig {
    /// The paper's evaluation platform: 4 cores × 2 SMT @ 2.5 GHz,
    /// 32 KB/8-way L1 (3-cycle), 256 KB/8-way L2 (15-cycle, 512 sets),
    /// ~200-cycle DRAM behind a shared bus, and 0.1 s scheduler quanta.
    fn default() -> Self {
        MachineConfig {
            cores: 4,
            smt_per_core: 2,
            clock_hz: DEFAULT_CLOCK_HZ,
            l1: CacheConfig {
                capacity_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                hit_latency: 3,
            },
            l2: CacheConfig {
                capacity_bytes: 256 * 1024,
                line_bytes: 64,
                ways: 8,
                hit_latency: 15,
            },
            bus: BusConfig {
                transaction_cycles: 36,
                dram_latency: 160,
                // An atomic unaligned access quiesces all outstanding bus
                // traffic before and after its two locked transfers; the
                // effective hold matches the paper's observed lock-event
                // period (≈ 20 locks per 100 k-cycle Δt window, Figure 6a)
                // and the Figure 2 spy-latency swing.
                lock_hold_cycles: 4_000,
            },
            divider: DividerConfig {
                units_per_core: 1,
                latency: 24,
            },
            multiplier: DividerConfig {
                units_per_core: 1,
                latency: 6,
            },
            scheduler: SchedulerConfig {
                quantum_cycles: 250_000_000,
                switch_cost: 2_000,
            },
            mitigation: MitigationCostConfig::default(),
        }
    }
}

impl MachineConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder {
            config: MachineConfig::default(),
        }
    }

    /// Total number of hardware contexts.
    pub fn context_count(&self) -> usize {
        self.cores as usize * self.smt_per_core as usize
    }

    /// The [`ContextId`] for SMT slot `smt` of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `smt` is out of range.
    pub fn context_id(&self, core: u8, smt: u8) -> ContextId {
        assert!(core < self.cores, "core {core} out of range");
        assert!(smt < self.smt_per_core, "smt slot {smt} out of range");
        ContextId::new(core, smt)
    }

    /// Enumerates all hardware contexts in flat-index order.
    pub fn contexts(&self) -> impl Iterator<Item = ContextId> + '_ {
        (0..self.cores)
            .flat_map(move |core| (0..self.smt_per_core).map(move |smt| ContextId::new(core, smt)))
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field group.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 || self.smt_per_core == 0 {
            return Err(ConfigError("machine needs at least one context".into()));
        }
        if self.context_count() > 8 {
            // The paper's conflict-miss tracker stores 3-bit context IDs.
            return Err(ConfigError(
                "at most 8 hardware contexts supported (3-bit context IDs)".into(),
            ));
        }
        if self.clock_hz == 0 {
            return Err(ConfigError("clock frequency must be nonzero".into()));
        }
        self.l1
            .validate()
            .map_err(|m| ConfigError(format!("L1: {m}")))?;
        self.l2
            .validate()
            .map_err(|m| ConfigError(format!("L2: {m}")))?;
        if self.l1.line_bytes != self.l2.line_bytes {
            return Err(ConfigError("L1 and L2 line sizes must match".into()));
        }
        if self.bus.transaction_cycles == 0 || self.bus.lock_hold_cycles == 0 {
            return Err(ConfigError("bus timings must be nonzero".into()));
        }
        if self.divider.units_per_core == 0 || self.divider.latency == 0 {
            return Err(ConfigError("divider parameters must be nonzero".into()));
        }
        if self.multiplier.units_per_core == 0 || self.multiplier.latency == 0 {
            return Err(ConfigError("multiplier parameters must be nonzero".into()));
        }
        if self.scheduler.quantum_cycles == 0 {
            return Err(ConfigError("scheduler quantum must be nonzero".into()));
        }
        if self.mitigation.partition_slot_cycles == 0 {
            return Err(ConfigError(
                "temporal partition slot must be nonzero".into(),
            ));
        }
        Ok(())
    }
}

/// Error returned when a [`MachineConfig`] is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid machine configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`MachineConfig`].
///
/// ```
/// use cchunter_sim::MachineConfig;
/// let config = MachineConfig::builder()
///     .cores(2)
///     .quantum_cycles(1_000_000)
///     .build()
///     .unwrap();
/// assert_eq!(config.cores, 2);
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    config: MachineConfig,
}

impl MachineConfigBuilder {
    /// Sets the number of physical cores.
    pub fn cores(mut self, cores: u8) -> Self {
        self.config.cores = cores;
        self
    }

    /// Sets SMT threads per core.
    pub fn smt_per_core(mut self, smt: u8) -> Self {
        self.config.smt_per_core = smt;
        self
    }

    /// Sets the modeled clock frequency.
    pub fn clock_hz(mut self, hz: u64) -> Self {
        self.config.clock_hz = hz;
        self
    }

    /// Replaces the L1 configuration.
    pub fn l1(mut self, l1: CacheConfig) -> Self {
        self.config.l1 = l1;
        self
    }

    /// Replaces the L2 configuration.
    pub fn l2(mut self, l2: CacheConfig) -> Self {
        self.config.l2 = l2;
        self
    }

    /// Replaces the bus configuration.
    pub fn bus(mut self, bus: BusConfig) -> Self {
        self.config.bus = bus;
        self
    }

    /// Replaces the divider configuration.
    pub fn divider(mut self, divider: DividerConfig) -> Self {
        self.config.divider = divider;
        self
    }

    /// Replaces the multiplier configuration.
    pub fn multiplier(mut self, multiplier: DividerConfig) -> Self {
        self.config.multiplier = multiplier;
        self
    }

    /// Sets the scheduler time quantum in cycles.
    pub fn quantum_cycles(mut self, cycles: u64) -> Self {
        self.config.scheduler.quantum_cycles = cycles;
        self
    }

    /// Sets the context-switch cost in cycles.
    pub fn switch_cost(mut self, cycles: u64) -> Self {
        self.config.scheduler.switch_cost = cycles;
        self
    }

    /// Replaces the mitigation cost knobs.
    pub fn mitigation(mut self, mitigation: MitigationCostConfig) -> Self {
        self.config.mitigation = mitigation;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper() {
        let config = MachineConfig::default();
        config.validate().unwrap();
        assert_eq!(config.cores, 4);
        assert_eq!(config.smt_per_core, 2);
        assert_eq!(config.l2.sets(), 512, "256KB/64B/8-way L2 has 512 sets");
        assert_eq!(config.l1.sets(), 64);
        assert_eq!(config.l2.total_blocks(), 4096);
        // 0.1 s quantum at 2.5 GHz.
        assert_eq!(config.scheduler.quantum_cycles, 250_000_000);
    }

    #[test]
    fn builder_overrides_fields() {
        let config = MachineConfig::builder()
            .cores(1)
            .smt_per_core(2)
            .quantum_cycles(42)
            .switch_cost(0)
            .build()
            .unwrap();
        assert_eq!(config.cores, 1);
        assert_eq!(config.scheduler.quantum_cycles, 42);
        assert_eq!(config.scheduler.switch_cost, 0);
    }

    #[test]
    fn rejects_too_many_contexts() {
        let err = MachineConfig::builder().cores(8).smt_per_core(2).build();
        assert!(err.is_err());
    }

    #[test]
    fn rejects_bad_cache_geometry() {
        let bad = CacheConfig {
            capacity_bytes: 1000, // not a whole number of 8-way 64B sets
            line_bytes: 64,
            ways: 8,
            hit_latency: 1,
        };
        assert!(bad.validate().is_err());
        let err = MachineConfig::builder().l1(bad).build();
        assert!(err.is_err());
    }

    #[test]
    fn rejects_non_pow2_line() {
        let bad = CacheConfig {
            capacity_bytes: 48 * 1024,
            line_bytes: 48,
            ways: 8,
            hit_latency: 1,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn context_enumeration_is_flat_ordered() {
        let config = MachineConfig::default();
        let all: Vec<_> = config.contexts().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], ContextId::new(0, 0));
        assert_eq!(all[7], ContextId::new(3, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn context_id_bounds_checked() {
        let config = MachineConfig::default();
        let _ = config.context_id(9, 0);
    }

    #[test]
    fn config_error_displays_reason() {
        let err = MachineConfig::builder().clock_hz(0).build().unwrap_err();
        assert!(err.to_string().contains("clock"));
    }

    #[test]
    fn mitigation_costs_default_and_validate() {
        let config = MachineConfig::default();
        assert!(config.mitigation.partition_slot_cycles > 0);
        let err = MachineConfig::builder()
            .mitigation(MitigationCostConfig {
                partition_slot_cycles: 0,
                ..MitigationCostConfig::default()
            })
            .build();
        assert!(err.is_err(), "zero partition slot rejected");
        let ok = MachineConfig::builder()
            .mitigation(MitigationCostConfig {
                flush_cycles: 1,
                partition_slot_cycles: 100,
                partition_drain_cycles: 2,
                deschedule_cycles: 3,
            })
            .build()
            .unwrap();
        assert_eq!(ok.mitigation.partition_slot_cycles, 100);
    }
}
