//! Cycle-denominated simulated time.
//!
//! All simulator timekeeping is in CPU cycles of the modeled clock
//! (2.5 GHz by default, matching the paper's MARSSx86 configuration). A
//! [`Cycle`] is an absolute point on the simulated timeline; durations are
//! plain `u64` cycle counts.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// The modeled core clock of the paper's machine: 2.5 GHz.
pub const DEFAULT_CLOCK_HZ: u64 = 2_500_000_000;

/// An absolute instant on the simulated timeline, measured in CPU cycles
/// since machine reset.
///
/// `Cycle` is ordered and supports the arithmetic needed by resource
/// timelines (`cycle + duration`, `cycle - cycle -> duration`).
///
/// ```
/// use cchunter_sim::Cycle;
/// let t = Cycle::ZERO + 100;
/// assert_eq!(t.as_u64(), 100);
/// assert_eq!(t - Cycle::ZERO, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Machine reset time.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable instant (used as an "infinitely far"
    /// sentinel by resource timelines).
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates an instant from a raw cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Converts this instant to seconds under the given clock frequency.
    ///
    /// ```
    /// use cchunter_sim::{Cycle, DEFAULT_CLOCK_HZ};
    /// let t = Cycle::new(DEFAULT_CLOCK_HZ); // one second of cycles
    /// assert!((t.as_seconds(DEFAULT_CLOCK_HZ) - 1.0).abs() < 1e-12);
    /// ```
    pub fn as_seconds(self, clock_hz: u64) -> f64 {
        self.0 as f64 / clock_hz as f64
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle duration");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

/// Number of cycles in `seconds` of wall time under `clock_hz`.
///
/// ```
/// use cchunter_sim::{cycles_per_second, DEFAULT_CLOCK_HZ};
/// // One OS time quantum of 0.1 s is 250M cycles at 2.5 GHz.
/// assert_eq!(cycles_per_second(0.1, DEFAULT_CLOCK_HZ), 250_000_000);
/// ```
pub fn cycles_per_second(seconds: f64, clock_hz: u64) -> u64 {
    (seconds * clock_hz as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_roundtrips() {
        let a = Cycle::new(10);
        let b = a + 32;
        assert_eq!(b.as_u64(), 42);
        assert_eq!(b - a, 32);
        assert_eq!(a.saturating_since(b), 0);
        assert_eq!(b.saturating_since(a), 32);
    }

    #[test]
    fn cycle_add_saturates() {
        let far = Cycle::MAX + 10;
        assert_eq!(far, Cycle::MAX);
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Cycle::new(5) < Cycle::new(6));
        assert!(Cycle::ZERO < Cycle::MAX);
    }

    #[test]
    fn seconds_conversion() {
        let quantum = Cycle::new(250_000_000);
        assert!((quantum.as_seconds(DEFAULT_CLOCK_HZ) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(7).to_string(), "7cyc");
    }

    #[test]
    fn cycles_per_second_rounds() {
        assert_eq!(cycles_per_second(1.0, 1000), 1000);
        assert_eq!(cycles_per_second(0.0004, 1000), 0);
    }
}
