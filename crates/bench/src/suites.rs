//! The detector benchmark suite, callable both from the `cargo bench`
//! harness (`benches/detector.rs`) and from the bench-runner binary
//! (`cargo run -p cchunter-bench --release`), which serializes the results
//! to `BENCH_detector.json`.

use crate::{bursty_train, covert_histogram, quantum_conflicts, random_blocks};
use cchunter_detector::autocorr::Autocorrelogram;
use cchunter_detector::burst::BurstDetector;
use cchunter_detector::cluster::{discretize, kmeans};
use cchunter_detector::conflict::{GenerationTracker, IdealLruTracker, MissClassifier};
use cchunter_detector::density::DensityHistogram;
use cchunter_detector::ingest::{IngestConfig, IngestPipeline, RawEvent};
use cchunter_detector::mitigation::MitigationConfig;
use cchunter_detector::online::{Harvest, OnlineContentionDetector};
use cchunter_detector::pipeline::symbol_series;
use cchunter_detector::shard::{ShardedFleet, ShardedFleetConfig};
use cchunter_detector::supervisor::{PairInput, ProbeFault, Supervisor, SupervisorConfig};
use cchunter_detector::{
    AdvisoryEnforcer, BloomFilter, CcHunter, CcHunterConfig, PairAudit, PairEvidence,
};
use criterion::{black_box, Criterion};

/// Runs every detector benchmark against `c`.
pub fn detector_suite(c: &mut Criterion) {
    bench_autocorrelation(c);
    bench_batched_autocorrelation(c);
    bench_density(c);
    bench_arena_ingest(c);
    bench_burst(c);
    bench_clustering(c);
    bench_online_push(c);
    bench_audit_pairs(c);
    bench_supervisor_tick(c);
    bench_sharded_tick(c);
    bench_mitigation_tick(c);
    bench_bloom(c);
    bench_trackers(c);
}

fn bench_autocorrelation(c: &mut Criterion) {
    let records = quantum_conflicts(10, 256);
    let series = symbol_series(&records, 0, u64::MAX);
    let samples = series.as_f64();
    c.bench_function("autocorrelogram_5120_events_1000_lags", |b| {
        b.iter(|| Autocorrelogram::compute(black_box(&samples), 1000))
    });
    // The direct lag-product reference the FFT path replaced; kept so the
    // speedup stays visible in every BENCH_detector.json.
    c.bench_function("autocorrelogram_5120_events_1000_lags_naive", |b| {
        b.iter(|| Autocorrelogram::compute_naive(black_box(&samples), 1000))
    });
}

fn bench_batched_autocorrelation(c: &mut Criterion) {
    // Eight pairs' symbol series correlated in one batch: the planner reuses
    // one FFT plan (twiddles + scratch) across all eight same-length series.
    let records = quantum_conflicts(10, 256);
    let series = symbol_series(&records, 0, u64::MAX);
    let samples = series.as_f64();
    let batch: Vec<Vec<f64>> = (0..8).map(|_| samples.clone()).collect();
    c.bench_function("batched_autocorrelogram_8x5120", |b| {
        b.iter(|| Autocorrelogram::compute_batch(black_box(&batch), 1000))
    });
}

fn bench_arena_ingest(c: &mut Criterion) {
    // One full hardened-ingest quantum: offer 4096 clean events, then
    // drain → sanitize-into-arena → density histogram from the borrowed
    // view. Steady state reuses the queue, arena slabs, and histogram
    // scratch, so this measures the zero-copy path end to end.
    let mut pipeline = IngestPipeline::new(IngestConfig {
        delta_t: 1_000,
        ..IngestConfig::default()
    })
    .expect("valid ingest config");
    let events: Vec<RawEvent> = (0..4_096u64)
        .map(|i| RawEvent {
            time: i * 100,
            weight: 1 + (i % 3) as u32,
            context: (i % 4) as u8,
        })
        .collect();
    c.bench_function("arena_ingest_quantum_4096_events", |b| {
        b.iter(|| {
            for &e in &events {
                pipeline.offer(e);
            }
            black_box(pipeline.end_quantum(0, 409_600))
        })
    });
}

fn bench_density(c: &mut Criterion) {
    let train = bursty_train(100, 25, 100_000);
    c.bench_function("density_histogram_2500_events", |b| {
        b.iter(|| DensityHistogram::from_train(black_box(&train), 100_000, 0, 10_000_000))
    });
}

fn bench_burst(c: &mut Criterion) {
    let histogram = covert_histogram(20, 2_500);
    let detector = BurstDetector::default();
    c.bench_function("burst_analyze", |b| {
        b.iter(|| detector.analyze(black_box(&histogram)))
    });
}

fn bench_clustering(c: &mut Criterion) {
    // 512 quanta of discretized histograms: the paper's clustering window.
    let features: Vec<Vec<f64>> = (0..512)
        .map(|i| {
            let h = covert_histogram(18 + (i % 5), 2_500);
            discretize(&h).into_iter().map(f64::from).collect()
        })
        .collect();
    c.bench_function("kmeans_512_quanta_window", |b| {
        b.iter(|| kmeans(black_box(&features), 3, 42, 50))
    });
}

fn bench_online_push(c: &mut Criterion) {
    // Steady state of the streaming daemon: a full 512-quantum window with
    // every push evicting the oldest slot.
    let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 512)
        .expect("512-quantum window is valid");
    let histograms: Vec<DensityHistogram> =
        (0..8).map(|i| covert_histogram(16 + i, 2_500)).collect();
    for i in 0..512usize {
        daemon.push_quantum(histograms[i % histograms.len()].clone());
    }
    let mut i = 0usize;
    c.bench_function("online_contention_push_512_window", |b| {
        b.iter(|| {
            i += 1;
            daemon.push_quantum(black_box(histograms[i % histograms.len()].clone()))
        })
    });
}

fn bench_audit_pairs(c: &mut Criterion) {
    // Eight principal pairs with 64-quantum contention windows each: the
    // multi-pair fan-out the parallel audit engine targets.
    let hunter = CcHunter::new(CcHunterConfig::default());
    let audits: Vec<PairAudit> = (0..8)
        .map(|pair| PairAudit {
            label: format!("memory-bus: pair {pair}"),
            evidence: PairEvidence::Contention(
                (0..64)
                    .map(|q| Harvest::Complete(covert_histogram(14 + ((pair + q) % 7), 2_500)))
                    .collect(),
            ),
        })
        .collect();
    c.bench_function("audit_8_pairs_serial", |b| {
        b.iter(|| {
            audits
                .iter()
                .map(|a| hunter.audit_pair(black_box(a)))
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("audit_8_pairs_parallel", |b| {
        b.iter(|| hunter.audit_pairs(black_box(&audits)))
    });

    // A wider fan-out through the batch engine: 64 pairs with 16-quantum
    // windows each, stressing planner/scratch reuse across many pairs
    // rather than depth within one.
    let wide: Vec<PairAudit> = (0..64)
        .map(|pair| PairAudit {
            label: format!("memory-bus: pair {pair}"),
            evidence: PairEvidence::Contention(
                (0..16)
                    .map(|q| Harvest::Complete(covert_histogram(14 + ((pair + q) % 7), 2_500)))
                    .collect(),
            ),
        })
        .collect();
    c.bench_function("audit_64_pairs_batched", |b| {
        b.iter(|| hunter.audit_pairs(black_box(&wide)))
    });
}

fn bench_supervisor_tick(c: &mut Criterion) {
    // One supervised tick of an 8-pair fleet at steady state (full
    // 64-quantum windows): the per-quantum cost of the whole supervision
    // layer — probe dispatch, watchdogged parallel analysis, breaker
    // bookkeeping — on top of the raw per-pair pushes.
    let config = SupervisorConfig {
        window_quanta: 64,
        ..SupervisorConfig::default()
    };
    let mut fleet = Supervisor::new(config).expect("valid supervisor config");
    for pair in 0..8 {
        fleet
            .add_contention_pair(format!("memory-bus: pair {pair}"))
            .expect("valid pair config");
    }
    let histograms: Vec<DensityHistogram> = (0..8)
        .map(|i| covert_histogram(14 + (i % 7), 2_500))
        .collect();
    let mut source = |pair: usize, tick: u64, _attempt: u32| {
        Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(
            histograms[(pair + tick as usize) % histograms.len()].clone(),
        )))
    };
    for _ in 0..64 {
        fleet.tick(&mut source);
    }
    c.bench_function("supervisor_tick_8_pairs_64_window", |b| {
        b.iter(|| black_box(fleet.tick(&mut source)))
    });
}

fn bench_sharded_tick(c: &mut Criterion) {
    // The same 8-pair steady-state workload as `supervisor_tick`, run
    // through the sharded coordinator with a single shard: the measured
    // delta over the flat supervisor is the pure cost of the coordinator
    // layer (global probe + mailbox hand-off + heartbeat settle). The
    // second shape spreads 64 pairs across 8 failure domains — the
    // per-tick cost of a realistically partitioned fleet.
    let histograms: Vec<DensityHistogram> = (0..8)
        .map(|i| covert_histogram(14 + (i % 7), 2_500))
        .collect();
    for (pairs, shards) in [(8usize, 1usize), (64, 8)] {
        let config = ShardedFleetConfig {
            shards,
            base: SupervisorConfig {
                window_quanta: 64,
                ..SupervisorConfig::default()
            },
            ..ShardedFleetConfig::default()
        };
        let mut fleet = ShardedFleet::new(config).expect("valid fleet config");
        for pair in 0..pairs {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .expect("valid pair config");
        }
        let mut source = |pair: usize, tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(
                histograms[(pair + tick as usize) % histograms.len()].clone(),
            )))
        };
        for _ in 0..64 {
            fleet.tick(&mut source);
        }
        let name = format!(
            "sharded_tick_{pairs}_pairs_{shards}_shard{}",
            if shards == 1 { "" } else { "s" }
        );
        c.bench_function(&name, |b| b.iter(|| black_box(fleet.tick(&mut source))));
    }
}

fn bench_mitigation_tick(c: &mut Criterion) {
    // The supervisor tick with the containment layer fully engaged: every
    // pair convicted, its ladder driven each tick (streak bookkeeping,
    // enforcement calls, metrics) — the marginal cost of closed-loop
    // mitigation over plain supervision.
    let config = SupervisorConfig {
        window_quanta: 64,
        mitigation: MitigationConfig {
            convict_streak: 2,
            ..MitigationConfig::default()
        },
        ..SupervisorConfig::default()
    };
    let mut fleet = Supervisor::new(config).expect("valid supervisor config");
    for pair in 0..8 {
        fleet
            .add_contention_pair(format!("memory-bus: pair {pair}"))
            .expect("valid pair config");
    }
    let histograms: Vec<DensityHistogram> = (0..8)
        .map(|i| covert_histogram(14 + (i % 7), 2_500))
        .collect();
    let mut source = |pair: usize, tick: u64, _attempt: u32| {
        Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(
            histograms[(pair + tick as usize) % histograms.len()].clone(),
        )))
    };
    let mut enforcer = AdvisoryEnforcer;
    // Warm past conviction so every pair holds an active containment.
    for _ in 0..64 {
        fleet.tick_with_enforcer(&mut source, &mut enforcer);
    }
    assert!(fleet.metrics_snapshot().contained_pairs > 0);
    c.bench_function("mitigation_tick_8_pairs_contained", |b| {
        b.iter(|| black_box(fleet.tick_with_enforcer(&mut source, &mut enforcer)))
    });
}

fn bench_bloom(c: &mut Criterion) {
    let blocks = random_blocks(4_096, 4_096, 7);
    c.bench_function("bloom_insert_4096", |b| {
        b.iter(|| {
            let mut f = BloomFilter::new(4_096, 3);
            for &k in &blocks {
                f.insert(k);
            }
            f
        })
    });
    let mut filter = BloomFilter::new(4_096, 3);
    for &k in &blocks[..1024] {
        filter.insert(k);
    }
    c.bench_function("bloom_query", |b| {
        b.iter(|| {
            blocks
                .iter()
                .filter(|&&k| filter.contains(black_box(k)))
                .count()
        })
    });
}

fn bench_trackers(c: &mut Criterion) {
    let accesses = random_blocks(100_000, 8_192, 11);
    c.bench_function("generation_tracker_100k_accesses", |b| {
        b.iter(|| {
            let mut t = GenerationTracker::for_cache(4_096);
            for &block in &accesses {
                if t.classify_miss(block).is_conflict() {
                    black_box(());
                }
                t.record_access(block);
            }
            t
        })
    });
    c.bench_function("ideal_lru_tracker_100k_accesses", |b| {
        b.iter(|| {
            let mut t = IdealLruTracker::new(4_096);
            for &block in &accesses {
                if t.classify_miss(block).is_conflict() {
                    black_box(());
                }
                t.record_access(block);
            }
            t
        })
    });
}
