//! Bench runner: `cargo run -p cchunter-bench --release` runs the detector
//! suite through the criterion shim and writes `BENCH_detector.json` at the
//! repository root — a flat map of bench name → ns/op plus the host core
//! count (parallel speedups are only meaningful relative to it).
//!
//! Set `CCHUNTER_BENCH_QUICK=1` for a fast low-precision smoke run (used by
//! CI); the `quick` field in the output records which mode produced it.

use cchunter_bench::suites::detector_suite;
use criterion::Criterion;
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    let mut c = Criterion::default();
    detector_suite(&mut c);

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let quick = criterion::quick_mode();
    let mut json = String::from("{\n");
    writeln!(json, "  \"host_cores\": {host_cores},").expect("string write");
    writeln!(json, "  \"quick\": {quick},").expect("string write");
    json.push_str("  \"benches_ns_per_op\": {\n");
    let results = c.results();
    for (i, (name, t)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        writeln!(json, "    \"{name}\": {}{comma}", t.as_nanos()).expect("string write");
    }
    json.push_str("  }\n}\n");

    let out = repo_root().join("BENCH_detector.json");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("\nwrote {}", out.display());
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.join("../..").canonicalize().unwrap_or(manifest)
}
