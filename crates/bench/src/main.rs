//! Bench runner: `cargo run -p cchunter-bench --release` runs the detector
//! suite through the criterion shim and writes `BENCH_detector.json` at the
//! repository root — a flat map of bench name → ns/op, per-bench latency
//! distributions, and the host core count (parallel speedups are only
//! meaningful relative to it).
//!
//! `--check` instead runs the suite in quick mode and compares it against
//! the committed `BENCH_detector.json`, printing a per-suite report and
//! exiting nonzero when any suite slowed down by more than 25% (or went
//! missing) — the CI perf-regression gate. The baseline file is never
//! rewritten in this mode.
//!
//! Set `CCHUNTER_BENCH_QUICK=1` for a fast low-precision smoke run (used by
//! CI); the `quick` field in the output records which mode produced it.
//! `CCHUNTER_BENCH_HANDICAP="suite:factor"` multiplies one suite's fresh
//! time before the `--check` comparison — a test hook to prove the gate
//! actually fails on a slowed suite.

use cchunter_bench::check;
use cchunter_bench::suites::detector_suite;
use criterion::{BenchResult, Criterion};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Failing ratio for `--check`: fail when a suite is >25% slower.
const CHECK_THRESHOLD: f64 = 1.25;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let delta_mode = args.iter().any(|a| a == "--delta");
    if let Some(unknown) = args.iter().find(|a| *a != "--check" && *a != "--delta") {
        eprintln!("unknown argument {unknown:?} (supported: --check, --delta)");
        return ExitCode::FAILURE;
    }

    if check_mode {
        // The gate always measures in quick mode: CI compares coarse fresh
        // numbers against the committed full-precision baseline, and the
        // 25% threshold absorbs the precision gap.
        std::env::set_var("CCHUNTER_BENCH_QUICK", "1");
        return run_check();
    }
    if delta_mode {
        std::env::set_var("CCHUNTER_BENCH_QUICK", "1");
        return run_delta();
    }

    // Baseline mode runs the whole suite several times and merges per
    // suite: the headline `benches_ns_per_op` keeps the best (minimum)
    // round, while the merged sample distributions span all rounds. The
    // host drifts through multi-minute performance phases (±30% on shared
    // containers), so a single round's minimum can record an
    // unrepresentatively fast phase; cross-round distributions give the
    // gate a stable typical value (p50) to compare against.
    const BASELINE_ROUNDS: u32 = 3;
    let mut merged: Vec<BenchResult> = Vec::new();
    for round in 1..=BASELINE_ROUNDS {
        let mut c = Criterion::default();
        detector_suite(&mut c);
        for r in c.results_detailed() {
            match merged.iter_mut().find(|m| m.name == r.name) {
                Some(m) => {
                    m.best = m.best.min(r.best);
                    m.samples.extend_from_slice(&r.samples);
                }
                None => merged.push(r.clone()),
            }
        }
        if round < BASELINE_ROUNDS {
            println!("— round {round}/{BASELINE_ROUNDS} done —");
        }
    }
    let out = repo_root().join("BENCH_detector.json");
    let json = render_json(&merged);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("\nwrote {}", out.display());
    ExitCode::SUCCESS
}

/// Measures the suite and compares against the committed baseline,
/// printing the per-suite report. A failing round is re-measured (up to
/// [`CHECK_ROUNDS`] rounds, keeping each suite's minimum across rounds):
/// a genuine regression stays slow on every round, while a noisy-neighbor
/// or frequency-scaling spike on the CI host does not. Nonzero exit when
/// the merged result still regresses.
fn run_check() -> ExitCode {
    const CHECK_ROUNDS: u32 = 3;

    let baseline_path = repo_root().join("BENCH_detector.json");
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let baseline = match check::parse_json(&text).and_then(|doc| check::gate_baseline_ns(&doc)) {
        Ok(map) => map,
        Err(e) => {
            eprintln!("malformed baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };

    // Host-speed correction: the baseline carries the calibration kernel's
    // speed on the machine that recorded it; re-measuring it here cancels
    // global drift (frequency scaling, noisy neighbors) from the ratios.
    let baseline_calibration = check::parse_json(&text)
        .ok()
        .and_then(|doc| doc.get("calibration_ns").and_then(check::Json::as_f64));

    let handicap = std::env::var("CCHUNTER_BENCH_HANDICAP").ok();
    let mut merged: BTreeMap<String, f64> = BTreeMap::new();
    let mut best_calibration = f64::INFINITY;
    let mut report = None;
    let mut scale = 1.0;
    for round in 1..=CHECK_ROUNDS {
        best_calibration = best_calibration.min(check::measure_calibration());
        scale = match baseline_calibration {
            Some(base) => check::host_speed_scale(base, best_calibration),
            None => 1.0,
        };
        let mut c = Criterion::default();
        detector_suite(&mut c);
        for (name, t) in c.results() {
            let ns = t.as_nanos() as f64;
            merged
                .entry(name)
                .and_modify(|m| *m = m.min(ns))
                .or_insert(ns);
        }
        let mut fresh: BTreeMap<String, f64> =
            merged.iter().map(|(k, v)| (k.clone(), v * scale)).collect();
        if let Some(spec) = &handicap {
            check::apply_handicap(&mut fresh, spec);
            eprintln!("(test handicap applied: {spec})");
        }
        let r = check::compare(&baseline, &fresh, CHECK_THRESHOLD);
        let failed = r.failed();
        report = Some(r);
        if !failed {
            break;
        }
        if round < CHECK_ROUNDS {
            eprintln!("\nround {round} regressed — re-measuring to rule out host noise");
        }
    }

    let report = report.expect("at least one round ran");
    println!("\nperf gate vs {}:", baseline_path.display());
    match baseline_calibration {
        Some(base) => println!(
            "host speed: calibration {base:.2} ns/iter at baseline, {best_calibration:.2} now (scale {scale:.3})"
        ),
        None => println!("host speed: baseline has no calibration_ns — comparing unscaled"),
    }
    print!("{}", report.render());
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--delta`: measures the suite once in quick mode, compares it against
/// the *committed* baseline (`git show HEAD:BENCH_detector.json`, falling
/// back to the working-tree file), and writes the Markdown comparison to
/// `bench_delta.md` at the repo root. Purely informational — always exits
/// zero when the baseline is readable; CI uploads the file as an artifact
/// so a PR's perf impact is one click away.
fn run_delta() -> ExitCode {
    let baseline_path = repo_root().join("BENCH_detector.json");
    let committed = std::process::Command::new("git")
        .args(["show", "HEAD:BENCH_detector.json"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok());
    let text = match committed {
        Some(t) => t,
        None => match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
    };
    let baseline = match check::parse_json(&text).and_then(|doc| check::gate_baseline_ns(&doc)) {
        Ok(map) => map,
        Err(e) => {
            eprintln!("malformed baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_calibration = check::parse_json(&text)
        .ok()
        .and_then(|doc| doc.get("calibration_ns").and_then(check::Json::as_f64));
    let scale = match baseline_calibration {
        Some(base) => check::host_speed_scale(base, check::measure_calibration()),
        None => 1.0,
    };

    let mut c = Criterion::default();
    detector_suite(&mut c);
    let fresh: BTreeMap<String, f64> = c
        .results()
        .into_iter()
        .map(|(name, t)| (name, t.as_nanos() as f64 * scale))
        .collect();
    let report = check::compare(&baseline, &fresh, CHECK_THRESHOLD);

    let out = repo_root().join("bench_delta.md");
    let md = report.render_markdown();
    std::fs::write(&out, &md).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    print!("{md}");
    println!("\nwrote {}", out.display());
    ExitCode::SUCCESS
}

/// Serializes results as the `BENCH_detector.json` document: the headline
/// `benches_ns_per_op` map plus per-bench `distributions_ns` summaries.
fn render_json(detailed: &[BenchResult]) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let quick = criterion::quick_mode();

    let mut json = String::from("{\n");
    writeln!(json, "  \"host_cores\": {host_cores},").expect("string write");
    writeln!(json, "  \"quick\": {quick},").expect("string write");
    writeln!(
        json,
        "  \"calibration_ns\": {:.4},",
        check::measure_calibration()
    )
    .expect("string write");
    json.push_str("  \"benches_ns_per_op\": {\n");
    for (i, r) in detailed.iter().enumerate() {
        let comma = if i + 1 == detailed.len() { "" } else { "," };
        writeln!(json, "    \"{}\": {}{comma}", r.name, r.best.as_nanos()).expect("string write");
    }
    json.push_str("  },\n");
    json.push_str("  \"distributions_ns\": {\n");
    for (i, r) in detailed.iter().enumerate() {
        let comma = if i + 1 == detailed.len() { "" } else { "," };
        writeln!(json, "    \"{}\": {}{comma}", r.name, distribution_json(r))
            .expect("string write");
    }
    json.push_str("  }\n}\n");
    json
}

/// One bench's latency distribution as an inline JSON object.
fn distribution_json(r: &BenchResult) -> String {
    let mut sorted: Vec<Duration> = r.samples.clone();
    sorted.sort();
    let nth = |q: f64| -> u128 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx].as_nanos()
    };
    let samples: Vec<String> = r.samples.iter().map(|d| d.as_nanos().to_string()).collect();
    format!(
        "{{\"min\": {}, \"p50\": {}, \"p90\": {}, \"max\": {}, \"samples\": [{}]}}",
        sorted.first().map(|d| d.as_nanos()).unwrap_or(0),
        nth(0.5),
        nth(0.9),
        sorted.last().map(|d| d.as_nanos()).unwrap_or(0),
        samples.join(", ")
    )
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.join("../..").canonicalize().unwrap_or(manifest)
}
