//! Shared input generators for the CC-Hunter benchmarks, plus the
//! [`suites`] module holding the benchmark bodies shared by the `cargo
//! bench` harnesses and the bench-runner binary.

pub mod check;
pub mod suites;

use cchunter_detector::auditor::ConflictRecord;
use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cchunter_detector::events::EventTrain;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A covert-channel-shaped event train: `bursts` bursts of `events_per_burst`
/// events, `spacing` cycles apart.
pub fn bursty_train(bursts: u64, events_per_burst: u64, spacing: u64) -> EventTrain {
    let mut train = EventTrain::new();
    for b in 0..bursts {
        let base = b * spacing;
        for e in 0..events_per_burst {
            train.push(base + e * 50, 1);
        }
    }
    train
}

/// A covert-channel-shaped density histogram (bin 0 heavy + compact burst
/// cluster).
pub fn covert_histogram(peak: usize, windows: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = windows * 9 / 10;
    bins[peak.saturating_sub(1)] = windows / 50;
    bins[peak] = windows / 15;
    bins[peak + 1] = windows / 60;
    let used: u64 = bins.iter().sum();
    bins[0] += windows.saturating_sub(used);
    DensityHistogram::from_bins(bins, 100_000).expect("synthetic bins are 128 long")
}

/// One OS quantum's worth of cache-channel conflict records (the paper's
/// per-quantum autocorrelation input).
pub fn quantum_conflicts(bits: usize, sets_per_group: u64) -> Vec<ConflictRecord> {
    let mut records = Vec::new();
    let mut cycle = 0u64;
    for _ in 0..bits {
        for _ in 0..sets_per_group {
            records.push(ConflictRecord {
                cycle,
                replacer: 0,
                victim: 1,
            });
            cycle += 120;
        }
        for _ in 0..sets_per_group {
            records.push(ConflictRecord {
                cycle,
                replacer: 1,
                victim: 0,
            });
            cycle += 200;
        }
    }
    records
}

/// Uniform random block addresses for tracker benchmarks.
pub fn random_blocks(count: usize, distinct: u64, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| rng.gen_range(0..distinct) * 64)
        .collect()
}
