//! The CI perf-regression gate: compares a fresh quick-mode bench run
//! against the committed `BENCH_detector.json` baseline and fails when any
//! suite slowed down past the threshold.
//!
//! The comparison is deliberately coarse — quick-mode timings on shared CI
//! hosts are noisy, so the gate only catches large (default > 25%)
//! regressions, per suite, with a per-suite report. A suite present in the
//! baseline but missing from the fresh run also fails (a silently dropped
//! benchmark would otherwise blind the gate); a brand-new suite is
//! reported but passes, since its baseline lands with the same change.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// A minimal JSON value, parsed by [`parse_json`]. Covers the subset the
/// bench runner emits (objects, arrays, numbers, strings, booleans, null);
/// no dependency on an external JSON crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as f64 (bench values are well under 2^53).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, reason: impl Into<String>) -> String {
        format!("at byte {}: {}", self.pos, reason.into())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {:?}, found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(self.error(format!("unexpected {:?}", other.map(|c| c as char)))),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("bad literal (expected {text})")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                other => {
                    return Err(self.error(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(self.error(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        other => {
                            return Err(self.error(format!(
                                "unsupported escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str upstream,
                    // so byte-level continuation handling is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }
}

/// Parses `text` as JSON.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage after JSON value"));
    }
    Ok(value)
}

/// Extracts the `benches_ns_per_op` map from a parsed `BENCH_detector.json`.
///
/// # Errors
///
/// Returns a description when the key is missing or malformed.
pub fn benches_ns(doc: &Json) -> Result<BTreeMap<String, f64>, String> {
    let obj = doc
        .get("benches_ns_per_op")
        .ok_or("no benches_ns_per_op object")?;
    match obj {
        Json::Obj(entries) => entries
            .iter()
            .map(|(name, v)| {
                v.as_f64()
                    .map(|ns| (name.clone(), ns))
                    .ok_or_else(|| format!("bench {name:?} has a non-numeric value"))
            })
            .collect(),
        _ => Err("benches_ns_per_op is not an object".to_string()),
    }
}

/// The per-suite baseline the *gate* compares against: each suite's p50
/// from `distributions_ns` where available, falling back to its
/// `benches_ns_per_op` entry.
///
/// The headline map records each suite's best (minimum) round — the right
/// number for tracking peak performance, but the wrong comparison anchor
/// on hosts that drift through multi-minute speed phases: a baseline
/// minimum caught in a fast phase makes every typical-phase fresh run
/// look like a 25–35% regression. The cross-round p50 is the typical
/// cost, so fresh minima compared against it stay near 1.0× under phase
/// drift while genuine slowdowns still shift the ratio.
///
/// # Errors
///
/// Returns a description when `benches_ns_per_op` is missing or malformed
/// (`distributions_ns` is optional).
pub fn gate_baseline_ns(doc: &Json) -> Result<BTreeMap<String, f64>, String> {
    let mut map = benches_ns(doc)?;
    if let Some(Json::Obj(entries)) = doc.get("distributions_ns") {
        for (name, dist) in entries {
            if let Some(p50) = dist.get("p50").and_then(Json::as_f64) {
                if let Some(v) = map.get_mut(name) {
                    *v = v.max(p50);
                }
            }
        }
    }
    Ok(map)
}

/// One suite's standing in the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteStatus {
    /// Within the threshold (or faster).
    Ok,
    /// Slower than baseline by more than the threshold: gate fails.
    Regressed,
    /// In the baseline but absent from the fresh run: gate fails.
    MissingFresh,
    /// In the fresh run but not the baseline (new suite): reported, passes.
    New,
}

impl SuiteStatus {
    /// Whether this status fails the gate.
    pub fn fails(self) -> bool {
        matches!(self, SuiteStatus::Regressed | SuiteStatus::MissingFresh)
    }
}

impl fmt::Display for SuiteStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteStatus::Ok => f.write_str("ok"),
            SuiteStatus::Regressed => f.write_str("REGRESSED"),
            SuiteStatus::MissingFresh => f.write_str("MISSING FROM FRESH RUN"),
            SuiteStatus::New => f.write_str("new (informational)"),
        }
    }
}

/// One row of the per-suite gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteComparison {
    /// Suite (benchmark) name.
    pub name: String,
    /// Baseline ns/op, if the suite is in the baseline.
    pub baseline_ns: Option<f64>,
    /// Fresh ns/op, if the suite was just measured.
    pub fresh_ns: Option<f64>,
    /// `fresh / baseline` when both sides exist.
    pub ratio: Option<f64>,
    /// The verdict for this suite.
    pub status: SuiteStatus,
}

/// The whole gate's result.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Per-suite rows, baseline order first, then new suites.
    pub suites: Vec<SuiteComparison>,
    /// Failing ratio: fresh > baseline * threshold fails.
    pub threshold: f64,
}

impl CheckReport {
    /// Whether any suite fails the gate.
    pub fn failed(&self) -> bool {
        self.suites.iter().any(|s| s.status.fails())
    }

    /// Renders the per-suite report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>12} {:>12} {:>7}  status\n",
            "suite", "baseline", "fresh", "ratio"
        ));
        for s in &self.suites {
            let fmt_ns = |ns: Option<f64>| match ns {
                Some(ns) => format!("{:.0} ns", ns),
                None => "-".to_string(),
            };
            let ratio = match s.ratio {
                Some(r) => format!("{r:.2}x"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<44} {:>12} {:>12} {:>7}  {}\n",
                s.name,
                fmt_ns(s.baseline_ns),
                fmt_ns(s.fresh_ns),
                ratio,
                s.status
            ));
        }
        let new = self
            .suites
            .iter()
            .filter(|s| s.status == SuiteStatus::New)
            .count();
        let verdict = if self.failed() {
            format!(
                "FAIL: a suite slowed down past {:.0}% of baseline or went missing \
                 from the fresh run (a new suite alone never fails)",
                self.threshold * 100.0
            )
        } else if new > 0 {
            format!(
                "ok: all baseline suites within {:.0}% of baseline; {new} new suite(s) \
                 skipped (informational, not in the committed baseline yet)",
                self.threshold * 100.0
            )
        } else {
            format!(
                "ok: all suites within {:.0}% of baseline",
                self.threshold * 100.0
            )
        };
        out.push_str(&verdict);
        out.push('\n');
        out
    }

    /// Renders the per-suite comparison as a Markdown table (the
    /// `bench_delta.md` CI artifact): one row per suite with baseline and
    /// fresh ns/op, the ratio, and a direction marker so a reviewer can
    /// read the perf impact of a PR straight from the artifact.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("# Bench delta vs committed baseline\n\n");
        out.push_str("| suite | baseline ns/op | fresh ns/op | ratio | status |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        for s in &self.suites {
            let fmt_ns = |ns: Option<f64>| match ns {
                Some(ns) => format!("{ns:.0}"),
                None => "—".to_string(),
            };
            let (ratio, marker) = match s.ratio {
                Some(r) if r <= 1.0 / self.threshold => (format!("{r:.2}×"), "faster ✅"),
                Some(r) if r > self.threshold => (format!("{r:.2}×"), "slower ⚠️"),
                Some(r) => (format!("{r:.2}×"), "within noise"),
                None => ("—".to_string(), ""),
            };
            let status = match s.status {
                SuiteStatus::New => "new (informational)".to_string(),
                SuiteStatus::MissingFresh => "missing from fresh run".to_string(),
                _ => marker.to_string(),
            };
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} |\n",
                s.name,
                fmt_ns(s.baseline_ns),
                fmt_ns(s.fresh_ns),
                ratio,
                status
            ));
        }
        out.push_str(&format!(
            "\nratio = fresh / baseline (host-speed corrected); gate threshold {:.2}×.\n",
            self.threshold
        ));
        out
    }
}

/// Compares fresh measurements against the baseline. `threshold` is the
/// failing ratio (1.25 = fail when a suite is more than 25% slower).
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    threshold: f64,
) -> CheckReport {
    let mut suites = Vec::new();
    for (name, &base_ns) in baseline {
        match fresh.get(name) {
            Some(&fresh_ns) => {
                let ratio = if base_ns > 0.0 {
                    fresh_ns / base_ns
                } else {
                    f64::INFINITY
                };
                suites.push(SuiteComparison {
                    name: name.clone(),
                    baseline_ns: Some(base_ns),
                    fresh_ns: Some(fresh_ns),
                    ratio: Some(ratio),
                    status: if ratio > threshold {
                        SuiteStatus::Regressed
                    } else {
                        SuiteStatus::Ok
                    },
                });
            }
            None => suites.push(SuiteComparison {
                name: name.clone(),
                baseline_ns: Some(base_ns),
                fresh_ns: None,
                ratio: None,
                status: SuiteStatus::MissingFresh,
            }),
        }
    }
    for (name, &fresh_ns) in fresh {
        if !baseline.contains_key(name) {
            suites.push(SuiteComparison {
                name: name.clone(),
                baseline_ns: None,
                fresh_ns: Some(fresh_ns),
                ratio: None,
                status: SuiteStatus::New,
            });
        }
    }
    CheckReport { suites, threshold }
}

/// Measures the host-speed calibration kernel: a fixed pure-ALU xorshift
/// loop, best of five timed batches, in ns per iteration.
///
/// The baseline run records this next to the suite times; the gate
/// re-measures it and scales fresh suite times by the ratio, cancelling
/// global host-speed drift (CPU frequency scaling, noisy-neighbor steal
/// time on shared CI runners) while leaving per-suite regressions intact.
pub fn measure_calibration() -> f64 {
    const ITERS: u64 = 4_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..ITERS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        best = best.min(ns);
    }
    best
}

/// The host-speed correction factor `baseline_calibration /
/// fresh_calibration`, clamped to `[0.25, 1.0]`. Multiply fresh suite
/// times by this before comparing.
///
/// The correction is deliberately one-sided: a slower host than at
/// baseline time is forgiven (scale < 1), but a faster host never
/// penalizes the fresh run (scale capped at 1) — ALU calibration
/// over-predicts the speedup of memory-bound suites, and a fast host
/// passes the raw comparison anyway. The 0.25 floor keeps a glitched
/// calibration from hiding a 4x regression.
pub fn host_speed_scale(baseline_calibration_ns: f64, fresh_calibration_ns: f64) -> f64 {
    if baseline_calibration_ns <= 0.0 || fresh_calibration_ns <= 0.0 {
        return 1.0;
    }
    (baseline_calibration_ns / fresh_calibration_ns).clamp(0.25, 1.0)
}

/// Applies a test-only handicap of the form `"suite:factor"` (from
/// `CCHUNTER_BENCH_HANDICAP`) to the fresh measurements, multiplying the
/// named suite's time — used to verify end to end that a deliberately
/// slowed suite fails the gate. Unknown suite names and malformed specs
/// are ignored.
pub fn apply_handicap(fresh: &mut BTreeMap<String, f64>, spec: &str) {
    let Some((name, factor)) = spec.split_once(':') else {
        return;
    };
    let Ok(factor) = factor.trim().parse::<f64>() else {
        return;
    };
    if let Some(ns) = fresh.get_mut(name.trim()) {
        *ns *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parses_the_runner_output_shape() {
        let doc = parse_json(
            "{\n  \"host_cores\": 8,\n  \"quick\": false,\n  \"benches_ns_per_op\": {\n    \"a\": 100,\n    \"b\": 2.5e3\n  },\n  \"distributions_ns\": {\"a\": {\"min\": 90, \"samples\": [90, 100]}}\n}\n",
        )
        .unwrap();
        let benches = benches_ns(&doc).unwrap();
        assert_eq!(benches.get("a"), Some(&100.0));
        assert_eq!(benches.get("b"), Some(&2500.0));
        assert_eq!(
            doc.get("distributions_ns")
                .and_then(|d| d.get("a"))
                .and_then(|a| a.get("min"))
                .and_then(Json::as_f64),
            Some(90.0)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn within_threshold_passes() {
        let baseline = map(&[("a", 100.0), ("b", 200.0)]);
        let fresh = map(&[("a", 120.0), ("b", 150.0)]);
        let report = compare(&baseline, &fresh, 1.25);
        assert!(!report.failed(), "{}", report.render());
        assert!(report.suites.iter().all(|s| s.status == SuiteStatus::Ok));
    }

    #[test]
    fn regression_fails_with_per_suite_status() {
        let baseline = map(&[("a", 100.0), ("b", 200.0)]);
        let fresh = map(&[("a", 130.0), ("b", 150.0)]);
        let report = compare(&baseline, &fresh, 1.25);
        assert!(report.failed());
        let a = report.suites.iter().find(|s| s.name == "a").unwrap();
        assert_eq!(a.status, SuiteStatus::Regressed);
        assert_eq!(
            report.suites.iter().find(|s| s.name == "b").unwrap().status,
            SuiteStatus::Ok
        );
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn missing_fresh_suite_fails_but_new_suite_passes() {
        let baseline = map(&[("a", 100.0)]);
        let fresh = map(&[("b", 50.0)]);
        let report = compare(&baseline, &fresh, 1.25);
        assert!(report.failed());
        assert_eq!(report.suites[0].status, SuiteStatus::MissingFresh);
        assert_eq!(report.suites[1].status, SuiteStatus::New);
        assert!(!report.suites[1].status.fails());
    }

    #[test]
    fn rendering_distinguishes_new_from_missing() {
        // A fresh-only suite alone: informational, the gate passes, and
        // both renderings say so in words that cannot be misread as a
        // failure.
        let baseline = map(&[("a", 100.0)]);
        let fresh = map(&[("a", 100.0), ("brand_new", 50.0)]);
        let report = compare(&baseline, &fresh, 1.25);
        assert!(!report.failed());
        let text = report.render();
        assert!(text.contains("new (informational)"), "{text}");
        assert!(text.contains("1 new suite(s) skipped"), "{text}");
        assert!(report.render_markdown().contains("new (informational)"));

        // A baseline suite missing from the fresh run: a hard failure with
        // an unambiguous label.
        let gone = compare(&map(&[("a", 100.0)]), &map(&[]), 1.25);
        assert!(gone.failed());
        let text = gone.render();
        assert!(text.contains("MISSING FROM FRESH RUN"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn host_speed_scale_cancels_global_drift() {
        // Host got 2x slower: fresh times double, scale halves them back.
        assert!((host_speed_scale(10.0, 20.0) - 0.5).abs() < 1e-12);
        // Host got faster: never scale up (one-sided correction).
        assert_eq!(host_speed_scale(20.0, 10.0), 1.0);
        // Glitched measurements clamp instead of swinging the gate.
        assert_eq!(host_speed_scale(100.0, 1.0), 1.0);
        assert_eq!(host_speed_scale(1.0, 100.0), 0.25);
        assert_eq!(host_speed_scale(0.0, 10.0), 1.0);
        assert_eq!(host_speed_scale(10.0, 0.0), 1.0);
    }

    #[test]
    fn handicap_multiplies_only_the_named_suite() {
        let mut fresh = map(&[("a", 100.0), ("b", 100.0)]);
        apply_handicap(&mut fresh, "a:3.0");
        assert_eq!(fresh.get("a"), Some(&300.0));
        assert_eq!(fresh.get("b"), Some(&100.0));
        // Malformed specs are ignored.
        apply_handicap(&mut fresh, "nonsense");
        apply_handicap(&mut fresh, "b:not-a-number");
        assert_eq!(fresh.get("b"), Some(&100.0));
    }
}
