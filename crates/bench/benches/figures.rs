//! End-to-end analysis-cost benchmarks matching the paper's §V-B software
//! overhead claims:
//!
//! * autocorrelation analysis runs at the end of every OS time quantum and
//!   takes ≤ 1 ms per computation;
//! * pattern clustering runs every 51.2 s (512 quanta) and takes ≤ 0.25 s
//!   (0.02 s with feature dimension reduction).

use cchunter_bench::{covert_histogram, quantum_conflicts};
use cchunter_detector::cluster::{analyze_recurrence, ClusterConfig};
use cchunter_detector::pipeline::{symbol_series, CcHunter, CcHunterConfig};
use cchunter_detector::{BurstDetector, DensityHistogram};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The per-quantum oscillation analysis (paper: 0.001 s worst case).
fn bench_autocorr_quantum(c: &mut Criterion) {
    // A busy quantum: 100 bits × 512 conflicts at 1000 bps.
    let records = quantum_conflicts(100, 256);
    let hunter = CcHunter::new(CcHunterConfig::default());
    let end = records.last().map(|r| r.cycle + 1).unwrap_or(1);
    c.bench_function("per_quantum_oscillation_analysis", |b| {
        b.iter(|| hunter.analyze_oscillation(black_box(&records), 0, end))
    });
    let series = symbol_series(&records, 0, end);
    c.bench_function("per_quantum_symbol_series_build", |b| {
        b.iter(|| symbol_series(black_box(&records), 0, end).len() + series.len())
    });
}

/// The per-window recurrence analysis (paper: 0.25 s worst case per 512
/// quanta).
fn bench_cluster_window(c: &mut Criterion) {
    let detector = BurstDetector::default();
    let histograms: Vec<DensityHistogram> = (0..512)
        .map(|i| covert_histogram(18 + (i % 5), 2_500))
        .collect();
    let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
    let config = ClusterConfig::default();
    c.bench_function("recurrence_over_512_quanta", |b| {
        b.iter(|| analyze_recurrence(black_box(&histograms), black_box(&verdicts), &config))
    });
}

/// The per-quantum burst verdict (runs on each harvested histogram).
fn bench_burst_quantum(c: &mut Criterion) {
    let detector = BurstDetector::default();
    let histograms: Vec<DensityHistogram> =
        (0..16).map(|i| covert_histogram(16 + i, 500_000)).collect();
    c.bench_function("per_quantum_burst_verdicts_x16", |b| {
        b.iter(|| {
            histograms
                .iter()
                .map(|h| detector.analyze(black_box(h)).likelihood_ratio)
                .sum::<f64>()
        })
    });
}

criterion_group!(
    benches,
    bench_autocorr_quantum,
    bench_cluster_window,
    bench_burst_quantum
);
criterion_main!(benches);
