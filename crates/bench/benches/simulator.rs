//! Criterion benchmarks for the simulator substrate: how much simulated
//! machine time one host second buys.

use cchunter_channels::{BitClock, BusChannelConfig, BusSpy, BusTrojan, Message, SpyLog};
use cchunter_sim::{Cache, CacheConfig, ContextId, Machine, MachineConfig};
use cchunter_workloads::noise::spawn_standard_noise;
use cchunter_workloads::spec::Gobmk;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cache_accesses(c: &mut Criterion) {
    let config = CacheConfig {
        capacity_bytes: 256 * 1024,
        line_bytes: 64,
        ways: 8,
        hit_latency: 15,
    };
    let addrs: Vec<u64> = (0..10_000u64)
        .map(|i| (i * 2_654_435_761) % (1 << 24))
        .collect();
    c.bench_function("l2_cache_10k_accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(config);
            let ctx = ContextId::new(0, 0);
            for &a in &addrs {
                black_box(cache.access(a, ctx));
            }
            cache
        })
    });
}

fn bench_workload_quantum(c: &mut Criterion) {
    c.bench_function("simulate_gobmk_2_5m_cycles", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                MachineConfig::builder()
                    .quantum_cycles(2_500_000)
                    .build()
                    .unwrap(),
            );
            m.spawn(Box::new(Gobmk::new(1)), m.config().context_id(0, 0));
            m.run_for(2_500_000);
            m.stats()
        })
    });
}

fn bench_bus_channel_quantum(c: &mut Criterion) {
    c.bench_function("simulate_bus_channel_2_5m_cycles", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                MachineConfig::builder()
                    .quantum_cycles(2_500_000)
                    .build()
                    .unwrap(),
            );
            let clock = BitClock::new(10_000, 250_000);
            let config = BusChannelConfig::new(Message::alternating(10), clock);
            let log = SpyLog::new_handle();
            m.spawn(
                Box::new(BusTrojan::new(config.clone(), 0x1000_0000)),
                m.config().context_id(0, 0),
            );
            m.spawn(
                Box::new(BusSpy::new(config, 0x4000_0000, log)),
                m.config().context_id(1, 0),
            );
            spawn_standard_noise(&mut m, 0, 3, 5);
            m.run_for(2_500_000);
            m.stats()
        })
    });
}

criterion_group!(
    benches,
    bench_cache_accesses,
    bench_workload_quantum,
    bench_bus_channel_quantum
);
criterion_main!(benches);
