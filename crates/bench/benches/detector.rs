//! Criterion benchmarks for the detector hot paths. The benchmark bodies
//! live in [`cchunter_bench::suites`] so the bench-runner binary can run
//! the same suite and serialize the results.

use cchunter_bench::suites::detector_suite;
use criterion::{criterion_group, criterion_main};

criterion_group!(benches, detector_suite);
criterion_main!(benches);
