//! Figure 10: the bandwidth study — 0.1 bps, 10 bps and 1000 bps variants
//! of all three covert channels. The paper finds the likelihood ratios of
//! the contention channels stay above 0.9 at every bandwidth (magnitudes
//! shrink), while the cache channel's full-quantum autocorrelation loses
//! strength at 0.1 bps (motivating Figure 11's finer windows).

use crate::figs::fig06::merge;
use crate::harness::{fast_mode, paper, run_bus, run_cache, run_divider, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::Message;
use cc_hunter::detector::{BurstDetector, CcHunter, CcHunterConfig, DeltaTPolicy};

/// The swept bandwidths (bits per second).
pub const BANDWIDTHS: [f64; 3] = [0.1, 10.0, 1000.0];

/// Message sized so each run stays tractable: low-bandwidth bits are huge.
fn message_for(bandwidth: f64) -> Message {
    let bits = if bandwidth < 1.0 {
        2 // 20 s of simulated time at 0.1 bps
    } else if bandwidth < 100.0 {
        8
    } else if fast_mode() {
        16
    } else {
        64
    };
    // Lead with a '1' so even the 2-bit run exercises modulation.
    Message::from_bits((0..bits).map(|i| i % 2 == 0).collect())
}

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 10",
        "bandwidth sweep: 0.1 / 10 / 1000 bps across all three channels",
    );
    let mut table = Table::new(&[
        "bandwidth",
        "bus LR",
        "bus peak bin",
        "divider LR",
        "divider peak bin",
        "cache peak r (full quantum)",
        "cache lag",
    ]);
    let detector = BurstDetector::default();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for &bw in &BANDWIDTHS {
        let message = message_for(bw);
        let opts = RunOptions::default();

        let bus = run_bus(message.clone(), bw, &opts);
        let bus_v = detector.analyze(&merge(&bus.data.bus_histograms));

        let div = run_divider(message.clone(), bw, &opts);
        let div_v = detector.analyze(&merge(&div.data.divider_histograms));

        let cache = run_cache(message, bw, 256, TrackerKind::Practical, &opts);
        let hunter = CcHunter::new(CcHunterConfig {
            quantum_cycles: paper::QUANTUM,
            delta_t: DeltaTPolicy::Fixed(paper::BUS_DELTA_T),
            ..CcHunterConfig::default()
        });
        let cache_r =
            hunter.analyze_oscillation(&cache.data.conflicts, cache.data.start, cache.data.end);
        let (cache_lag, cache_peak) = cache_r.peak.unwrap_or((0, 0.0));

        table.row(vec![
            format!("{bw} bps"),
            format!("{:.3}", bus_v.likelihood_ratio),
            bus_v
                .burst_peak
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:.3}", div_v.likelihood_ratio),
            div_v
                .burst_peak
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{cache_peak:.3}"),
            cache_lag.to_string(),
        ]);
        csv_rows.push(vec![
            bw.to_string(),
            format!("{:.4}", bus_v.likelihood_ratio),
            format!("{:.4}", div_v.likelihood_ratio),
            format!("{cache_peak:.4}"),
            cache_lag.to_string(),
        ]);

        assert!(
            bus_v.likelihood_ratio > 0.9,
            "bus LR must stay above 0.9 at {bw} bps (got {})",
            bus_v.likelihood_ratio
        );
        assert!(
            div_v.likelihood_ratio > 0.9,
            "divider LR must stay above 0.9 at {bw} bps (got {})",
            div_v.likelihood_ratio
        );
    }
    table.print();
    write_csv(
        "fig10_bandwidth_sweep",
        &[
            "bandwidth_bps",
            "bus_lr",
            "divider_lr",
            "cache_peak_r",
            "cache_peak_lag",
        ],
        csv_rows,
    );
    println!();
    println!("paper shape: contention-channel LRs > 0.9 at every bandwidth;");
    println!("cache peak weak at 0.1 bps under full-quantum windows (see Figure 11)");
}
