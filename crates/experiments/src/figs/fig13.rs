//! Figure 13: cache channels built on fewer sets (64/128/256, plus the
//! 512 baseline). The autocorrelogram stays strongly periodic; the
//! dominant lag tracks the number of sets used, inflated slightly by
//! random conflict misses — and relatively more for smaller channels.

use crate::harness::{run_cache, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::Message;
use cc_hunter::detector::pipeline::symbol_series;
use cc_hunter::detector::Autocorrelogram;

/// Swept set counts (exactly the paper's Figure 13: 64, 128, 256).
pub const SET_COUNTS: [u32; 3] = [64, 128, 256];
/// Channel bandwidth.
pub const BANDWIDTH_BPS: f64 = 1_000.0;

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 13",
        "cache channel with varying set counts: peak lag tracks #sets",
    );
    let mut table = Table::new(&["#sets", "peak lag", "lag / #sets", "peak r", "symbols"]);
    let mut csv_rows = Vec::new();
    for &sets in &SET_COUNTS {
        let message = Message::alternating(32);
        let artifacts = run_cache(
            message,
            BANDWIDTH_BPS,
            sets,
            TrackerKind::Practical,
            &RunOptions::default(),
        );
        let series = symbol_series(
            &artifacts.data.conflicts,
            artifacts.data.start,
            artifacts.data.end,
        );
        let correlogram = Autocorrelogram::of_symbols(&series, 1000);
        write_csv(
            &format!("fig13_autocorrelogram_{sets}sets"),
            &["lag", "autocorrelation"],
            correlogram
                .coefficients()
                .iter()
                .enumerate()
                .map(|(lag, &r)| vec![lag.to_string(), format!("{r:.4}")]),
        );
        let (lag, value) = correlogram
            .dominant_peak(8, 0.0)
            .expect("periodic conflict train");
        table.row(vec![
            sets.to_string(),
            lag.to_string(),
            format!("{:.3}", lag as f64 / sets as f64),
            format!("{value:.3}"),
            series.len().to_string(),
        ]);
        csv_rows.push(vec![
            sets.to_string(),
            lag.to_string(),
            format!("{value:.4}"),
        ]);
        assert!(
            lag >= sets as usize,
            "{sets} sets: lag {lag} must not undershoot the set count"
        );
        assert!(
            value > 0.5,
            "{sets} sets: significant periodicity expected, got {value}"
        );
    }
    table.print();
    write_csv(
        "fig13_peaks",
        &["total_sets", "peak_lag", "peak_r"],
        csv_rows,
    );
    println!();
    println!("paper shape: strong periodicity at every size; wavelength at or");
    println!("above the set count, inflated more (relatively) for smaller channels");
}
