//! One module per paper artifact. Each exposes `run()`, which prints the
//! artifact's rows/series and writes CSV under `results/`.

pub mod extras;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig14ext;
pub mod table1;

/// Banner printed at the top of each experiment.
pub fn banner(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id} — {caption}");
    println!("================================================================");
}

/// Runs the entire evaluation, in paper order.
pub fn run_all() {
    let t0 = std::time::Instant::now();
    fig02::run();
    fig03::run();
    fig04::run();
    fig05::run();
    fig06::run();
    fig07::run();
    fig08::run();
    fig10::run();
    fig11::run();
    fig12::run();
    fig13::run();
    fig14::run();
    table1::run();
    println!();
    println!(
        "entire evaluation regenerated in {:.1} s (CSV under results/)",
        t0.elapsed().as_secs_f64()
    );
}
