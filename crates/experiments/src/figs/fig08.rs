//! Figure 8: the cache channel's conflict-miss event train and its
//! autocorrelogram — the oscillatory-pattern signature. The paper observes
//! the peak at lag 533 (close to the 512 sets used), r ≈ 0.893, with
//! r ≈ 0.85 at exactly 512.

use crate::harness::{paper, run_cache, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::Message;
use cc_hunter::detector::pipeline::symbol_series;
use cc_hunter::detector::Autocorrelogram;

/// Channel bandwidth.
pub const BANDWIDTH_BPS: f64 = 1_000.0;
/// The configurations compared: the paper's 512 sets plus the largest
/// configurations whose per-set working set (9 blocks cycling through 8
/// ways, ×#sets) still fits the conflict-miss tracker's N = 4096-block
/// recency window.
pub const SET_CONFIGS: [u32; 3] = [512, 384, 256];

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 8",
        "conflict-miss event train + autocorrelogram, cache covert channel",
    );
    let message = Message::from_u64(paper::CREDIT_CARD);
    let mut table = Table::new(&[
        "#sets",
        "T→S records",
        "S→T records",
        "dominant peak lag",
        "lag / #sets",
        "peak r",
    ]);
    let mut reproduced = false;

    for (i, &total_sets) in SET_CONFIGS.iter().enumerate() {
        let artifacts = run_cache(
            message.clone(),
            BANDWIDTH_BPS,
            total_sets,
            TrackerKind::Practical,
            &RunOptions::default(),
        );
        if i == 0 {
            // (a) the labeled conflict-miss event train, paper config.
            write_csv(
                "fig08_conflict_train",
                &["cycle", "replacer_ctx", "victim_ctx"],
                artifacts.data.conflicts.iter().map(|r| {
                    vec![
                        r.cycle.to_string(),
                        r.replacer.to_string(),
                        r.victim.to_string(),
                    ]
                }),
            );
        }
        let series = symbol_series(
            &artifacts.data.conflicts,
            artifacts.data.start,
            artifacts.data.end,
        );
        let t_to_s = artifacts
            .data
            .conflicts
            .iter()
            .filter(|r| r.replacer == 0 && r.victim == 1)
            .count();
        let s_to_t = artifacts
            .data
            .conflicts
            .iter()
            .filter(|r| r.replacer == 1 && r.victim == 0)
            .count();

        // (b) the autocorrelogram.
        let correlogram = Autocorrelogram::of_symbols(&series, 1000);
        write_csv(
            &format!("fig08_autocorrelogram_{total_sets}sets"),
            &["lag", "autocorrelation"],
            correlogram
                .coefficients()
                .iter()
                .enumerate()
                .map(|(lag, &r)| vec![lag.to_string(), format!("{r:.4}")]),
        );
        let (peak_lag, peak_value) = correlogram.dominant_peak(8, 0.0).unwrap_or((0, 0.0));
        table.row(vec![
            total_sets.to_string(),
            t_to_s.to_string(),
            s_to_t.to_string(),
            peak_lag.to_string(),
            format!("{:.3}", peak_lag as f64 / total_sets as f64),
            format!("{peak_value:.3}"),
        ]);
        if total_sets <= 256
            && peak_lag >= total_sets as usize
            && peak_lag <= total_sets as usize * 5 / 4
            && peak_value > 0.55
        {
            reproduced = true;
        }
    }
    table.print();
    println!();
    println!("paper reference: peak r = 0.893 at lag 533 (512 sets; r ≈ 0.85 at 512).");
    println!();
    println!("fidelity note: a 512-set channel cycles 9 blocks per set × 512 sets");
    println!("= 4608 blocks — beyond the 4096-block recency window that any");
    println!("capacity-honest conflict tracker (ideal LRU stack or the paper's");
    println!("generation scheme, both sized to the 4096-block L2) can certify, so");
    println!("trojan-side conflicts are under-classified on bit flips and the");
    println!("peak weakens. Within the window (≤256 sets) the paper's shape");
    println!("reproduces fully; the paper's own Figure 13 sweeps 64–256 sets.");
    assert!(
        reproduced,
        "the ≤256-set configuration must reproduce the paper's shape"
    );
}
