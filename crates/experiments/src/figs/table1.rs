//! Table I: area, power and latency estimates of the CC-auditor hardware.

use crate::output::{write_csv, Table};
use cc_hunter::detector::CostModel;

/// Runs the table generation.
pub fn run() {
    super::banner("Table I", "area, power and latency estimates of CC-auditor");
    let model = CostModel::default();
    let rows = model.table1();

    let mut table = Table::new(&["structure", "area (mm²)", "power (mW)", "latency (ns)"]);
    let mut csv_rows = Vec::new();
    for (name, est) in &rows {
        table.row(vec![
            name.to_string(),
            format!("{:.4}", est.area_mm2),
            format!("{:.1}", est.power_mw),
            format!("{:.2}", est.latency_ns),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            format!("{:.6}", est.area_mm2),
            format!("{:.3}", est.power_mw),
            format!("{:.4}", est.latency_ns),
        ]);
    }
    table.print();
    write_csv(
        "table1_cost",
        &["structure", "area_mm2", "power_mw", "latency_ns"],
        csv_rows,
    );

    let total = model.total();
    println!();
    println!("total: {total}");
    println!(
        "area overhead vs. Intel i7 (263 mm²): {:.5}% — insignificant, as the paper claims",
        model.area_overhead_fraction() * 100.0
    );
    println!(
        "power overhead vs. Intel i7 peak (130 W): {:.5}%",
        model.power_overhead_fraction() * 100.0
    );
    println!(
        "cache metadata latency overhead (7 bits/block): {:.1}% (paper: ≈1.5%)",
        model.metadata_latency_overhead(7, 186) * 100.0
    );
    println!(
        "all latencies below a 3 GHz clock period (0.33 ns): {}",
        rows.iter().all(|(_, e)| e.latency_ns < 0.33)
    );
}
