//! Figure 12: encoded-message robustness — many random 64-bit messages per
//! channel. The paper reports the mean/min/max of histogram bin
//! frequencies across runs, likelihood ratios above 0.9 throughout, and
//! insignificant deviations in the cache autocorrelograms.

use crate::figs::fig06::merge;
use crate::harness::{fast_mode, paper, run_bus, run_cache, run_divider, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::Message;
use cc_hunter::detector::pipeline::symbol_series;
use cc_hunter::detector::{Autocorrelogram, BurstDetector, HISTOGRAM_BINS};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Random messages per channel (paper: 256 generated; its figure reports
/// 128 runs).
pub fn message_count() -> usize {
    if fast_mode() {
        8
    } else {
        128
    }
}

/// Channel bandwidth (as the headline figures).
pub const BANDWIDTH_BPS: f64 = 1_000.0;

#[derive(Default)]
struct BinStats {
    sum: Vec<u64>,
    min: Vec<u64>,
    max: Vec<u64>,
    runs: u64,
}

impl BinStats {
    fn new() -> Self {
        BinStats {
            sum: vec![0; HISTOGRAM_BINS],
            min: vec![u64::MAX; HISTOGRAM_BINS],
            max: vec![0; HISTOGRAM_BINS],
            runs: 0,
        }
    }

    fn add(&mut self, bins: &[u64]) {
        self.runs += 1;
        for (i, &f) in bins.iter().enumerate() {
            self.sum[i] += f;
            self.min[i] = self.min[i].min(f);
            self.max[i] = self.max[i].max(f);
        }
    }

    fn rows(&self) -> impl Iterator<Item = Vec<String>> + '_ {
        self.sum.iter().enumerate().map(move |(bin, &s)| {
            vec![
                bin.to_string(),
                format!("{:.1}", s as f64 / self.runs.max(1) as f64),
                self.min[bin].to_string(),
                self.max[bin].to_string(),
            ]
        })
    }
}

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 12",
        "random 64-bit message sweep: histogram stability + LR ≥ 0.9",
    );
    let runs = message_count();
    let mut rng = SmallRng::seed_from_u64(0x00F1_612A);
    let detector = BurstDetector::default();

    let mut bus_stats = BinStats::new();
    let mut div_stats = BinStats::new();
    let mut bus_lr = (f64::INFINITY, 0.0f64);
    let mut div_lr = (f64::INFINITY, 0.0f64);
    let mut cache_peaks: Vec<(usize, f64)> = Vec::new();

    for i in 0..runs {
        let message = Message::random(&mut rng, 64);
        let opts = RunOptions {
            noise_seed: 2000 + i as u64,
            ..RunOptions::default()
        };

        let bus = run_bus(message.clone(), BANDWIDTH_BPS, &opts);
        let h = merge(&bus.data.bus_histograms);
        let v = detector.analyze(&h);
        bus_stats.add(h.bins());
        bus_lr = (
            bus_lr.0.min(v.likelihood_ratio),
            bus_lr.1.max(v.likelihood_ratio),
        );

        let div = run_divider(message.clone(), BANDWIDTH_BPS, &opts);
        let h = merge(&div.data.divider_histograms);
        let v = detector.analyze(&h);
        div_stats.add(h.bins());
        div_lr = (
            div_lr.0.min(v.likelihood_ratio),
            div_lr.1.max(v.likelihood_ratio),
        );

        let cache = run_cache(message, BANDWIDTH_BPS, 256, TrackerKind::Practical, &opts);
        let series = symbol_series(&cache.data.conflicts, cache.data.start, cache.data.end);
        let correlogram = Autocorrelogram::of_symbols(&series, 800);
        if let Some(peak) = correlogram.dominant_peak(8, 0.0) {
            cache_peaks.push(peak);
        }
    }

    write_csv(
        "fig12_bus_bin_stats",
        &["density_bin", "mean", "min", "max"],
        bus_stats.rows(),
    );
    write_csv(
        "fig12_divider_bin_stats",
        &["density_bin", "mean", "min", "max"],
        div_stats.rows(),
    );
    write_csv(
        "fig12_cache_peaks",
        &["run", "peak_lag", "peak_r"],
        cache_peaks
            .iter()
            .enumerate()
            .map(|(i, (lag, r))| vec![i.to_string(), lag.to_string(), format!("{r:.4}")]),
    );

    let lag_min = cache_peaks.iter().map(|p| p.0).min().unwrap_or(0);
    let lag_max = cache_peaks.iter().map(|p| p.0).max().unwrap_or(0);
    let r_min = cache_peaks
        .iter()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min);
    let r_max = cache_peaks.iter().map(|p| p.1).fold(0.0, f64::max);

    let mut table = Table::new(&["channel", "runs", "likelihood ratio / peak", "range"]);
    table.row(vec![
        "memory bus".to_string(),
        runs.to_string(),
        "LR".to_string(),
        format!("{:.3} – {:.3}", bus_lr.0, bus_lr.1),
    ]);
    table.row(vec![
        "integer divider".to_string(),
        runs.to_string(),
        "LR".to_string(),
        format!("{:.3} – {:.3}", div_lr.0, div_lr.1),
    ]);
    table.row(vec![
        "shared cache".to_string(),
        cache_peaks.len().to_string(),
        "autocorr peak (lag)".to_string(),
        format!("r {r_min:.2}–{r_max:.2} @ lag {lag_min}–{lag_max}"),
    ]);
    table.print();
    println!();
    assert!(bus_lr.0 > 0.9, "bus LR must stay > 0.9 (min {})", bus_lr.0);
    assert!(
        div_lr.0 > 0.9,
        "divider LR must stay > 0.9 (min {})",
        div_lr.0
    );
    println!("paper shape: LR > 0.9 for every message; cache peaks stable — REPRODUCED");
    let _ = paper::QUANTUM;
}
