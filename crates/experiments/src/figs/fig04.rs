//! Figure 4: event-train plots for the memory bus (lock events) and the
//! integer divider (wait-cycle runs), showing the thick burst bands on '1'
//! bits.

use crate::harness::{paper, run_bus, run_divider, RunOptions};
use crate::output::write_csv;
use cc_hunter::channels::Message;
use cc_hunter::detector::EventTrain;

/// Channel bandwidth (as figures 2/3).
pub const BANDWIDTH_BPS: f64 = 1_000.0;

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 4",
        "indicator-event trains: bus locks and divider wait runs",
    );
    let message = Message::from_u64(paper::CREDIT_CARD);
    let opts = RunOptions {
        collect_events: true,
        ..RunOptions::default()
    };

    let bus = run_bus(message.clone(), BANDWIDTH_BPS, &opts);
    let lock_train = bus.bus_lock_train.expect("events collected");
    let bus_path = write_csv(
        "fig04_bus_event_train",
        &["cycle", "weight"],
        lock_train
            .iter()
            .map(|(t, w)| vec![t.to_string(), w.to_string()]),
    );

    let div = run_divider(message.clone(), BANDWIDTH_BPS, &opts);
    let wait_train = div.divider_wait_train.expect("events collected");
    let div_path = write_csv(
        "fig04_divider_event_train",
        &["cycle", "wait_cycles"],
        wait_train
            .iter()
            .map(|(t, w)| vec![t.to_string(), w.to_string()]),
    );

    for (name, train, bit_cycles, path) in [
        ("memory bus locks", &lock_train, bus.bit_cycles, &bus_path),
        ("divider wait runs", &wait_train, div.bit_cycles, &div_path),
    ] {
        println!(
            "\n{name}: {} entries ({} unit events)",
            train.len(),
            train.total_events()
        );
        println!("  written to {}", path.display());
        print_band_profile(name, train, &message, bit_cycles, opts.epoch);
    }
    println!("\npaper shape: thick event bands on every '1' bit, silence on '0' bits");
}

/// Prints a per-bit event count profile — the textual version of the burst
/// bands visible in the paper's plot.
fn print_band_profile(
    name: &str,
    train: &EventTrain,
    message: &Message,
    bit_cycles: u64,
    epoch: u64,
) {
    let mut per_bit = vec![0u64; message.len()];
    for (t, w) in train.iter() {
        if t >= epoch {
            let bit = ((t - epoch) / bit_cycles) as usize;
            if bit < per_bit.len() {
                per_bit[bit] += w as u64;
            }
        }
    }
    let ones: Vec<u64> = per_bit
        .iter()
        .zip(message.bits())
        .filter(|(_, &b)| b)
        .map(|(&c, _)| c)
        .collect();
    let zeros: Vec<u64> = per_bit
        .iter()
        .zip(message.bits())
        .filter(|(_, &b)| !b)
        .map(|(&c, _)| c)
        .collect();
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    println!(
        "  {name}: avg events per '1' bit = {:.0}, per '0' bit = {:.0}",
        avg(&ones),
        avg(&zeros)
    );
    assert!(
        avg(&ones) > 10.0 * (avg(&zeros) + 1.0),
        "burst bands must align with '1' bits"
    );
}
