//! Ablations and extension studies beyond the paper's figures:
//!
//! * [`evasion_study`] — the §III evasion argument, measured: a trojan that
//!   inflates random conflicts to hide its bursts destroys its own
//!   channel's reliability long before it hides from CC-Hunter.
//! * [`ablation_coherence`] — why the burst distribution's *coherence*
//!   matters: without it, heavy-but-random benign contention (the
//!   bzip2+h264ref divider pair) would false-alarm.
//! * [`ablation_trackers`] — practical generation/Bloom tracker vs the
//!   ideal LRU-stack oracle across channel sizes.
//! * [`delta_t_sensitivity`] — detection is robust across a wide range of
//!   Δt ("the value of Δt can be picked from a wide range", §IV-B).

use crate::figs::fig06::merge;
use crate::harness::{paper, run_cache, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::audit::{AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::channels::{
    BitClock, BusChannelConfig, BusSpy, BusTrojan, DecodeRule, LockChaff, Message, SpyLog,
};
use cc_hunter::detector::burst::BurstConfig;
use cc_hunter::detector::pipeline::symbol_series;
use cc_hunter::detector::{Autocorrelogram, BurstDetector, DensityHistogram};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::figure14_pairs;
use cc_hunter::workloads::noise::spawn_standard_noise;

fn machine() -> Machine {
    Machine::new(
        MachineConfig::builder()
            .quantum_cycles(paper::QUANTUM)
            .build()
            .expect("valid config"),
    )
}

/// Evasion study: chaff locks vs channel reliability vs detection.
pub fn evasion_study() {
    super::banner(
        "Evasion study (§III)",
        "random-conflict inflation: reliability dies before detection does",
    );
    let mut table = Table::new(&[
        "chaff mean interval (cycles)",
        "chaff locks",
        "spy bit error rate",
        "likelihood ratio",
        "detected",
    ]);
    let mut csv_rows = Vec::new();
    // From no chaff to one chaff lock every 20k cycles (≈5 per Δt window).
    for &mean_interval in &[u64::MAX, 1_000_000, 200_000, 50_000, 20_000] {
        let message = Message::from_u64(paper::CREDIT_CARD);
        let clock = BitClock::new(1_000_000, 2_500_000); // 1 kbps
        let config = BusChannelConfig::new(message.clone(), clock);
        let mut m = machine();
        let log = SpyLog::new_handle();
        m.spawn(
            Box::new(BusTrojan::new(config.clone(), 0x1000_0000)),
            m.config().context_id(0, 0),
        );
        m.spawn(
            Box::new(BusSpy::new(config, 0x4000_0000, log.clone())),
            m.config().context_id(1, 0),
        );
        if mean_interval != u64::MAX {
            // The trojan's accomplice inflating random conflicts.
            m.spawn(
                Box::new(LockChaff::new(mean_interval, 0x7000_0000, 1234)),
                m.config().context_id(0, 1),
            );
        }
        spawn_standard_noise(&mut m, 0, 3, 77);
        let mut session = AuditSession::new();
        session.audit_bus(paper::BUS_DELTA_T).expect("bus audit");
        session.attach(&mut m);
        let data = QuantumRunner::new(paper::QUANTUM)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, 1)
            .expect("audit harvest");

        let verdict = BurstDetector::default().analyze(&merge(&data.bus_histograms));
        let decoded = log.borrow().decode(DecodeRule::Midpoint, message.len());
        let ber = message.bit_error_rate(&decoded);
        let chaff = m.stats().bus_locks.saturating_sub(
            // channel locks ≈ lock budget actually used; report total locks
            // minus an estimate is noisy, so just report the total.
            0,
        );
        table.row(vec![
            if mean_interval == u64::MAX {
                "none".to_string()
            } else {
                mean_interval.to_string()
            },
            chaff.to_string(),
            format!("{:.1}%", ber * 100.0),
            format!("{:.3}", verdict.likelihood_ratio),
            verdict.significant.to_string(),
        ]);
        csv_rows.push(vec![
            mean_interval.to_string(),
            format!("{:.4}", ber),
            format!("{:.4}", verdict.likelihood_ratio),
            verdict.significant.to_string(),
        ]);
    }
    table.print();
    write_csv(
        "extra_evasion_study",
        &["chaff_mean_interval", "ber", "likelihood_ratio", "detected"],
        csv_rows,
    );
    println!();
    println!("finding: heavy chaff does raise the spy's bit error rate, as §III");
    println!("argues — but in this *low-noise* substrate a colluding chaff thread");
    println!("can push the likelihood ratio under 0.5 before reliability collapses.");
    println!("The paper's impossibility argument leans on real-system ambient");
    println!("noise (e.g. Xu et al.'s ≥20% error rates under co-tenancy) that a");
    println!("clean simulator does not impose; the burst cluster at bins ≈20–22");
    println!("remains visible in the histogram either way, so a coherence-aware");
    println!("threshold (rather than the global ratio) would resist this chaff.");
}

/// Coherence ablation: disable the burst cluster's compactness requirement
/// and watch benign divider contention false-alarm.
pub fn ablation_coherence() {
    super::banner(
        "Ablation — burst coherence",
        "without the contention-cluster test, benign divider pressure alarms",
    );
    let (_, a, b) = figure14_pairs()
        .into_iter()
        .find(|(l, _, _)| *l == "bzip2_h264ref")
        .expect("pair exists");
    let mut m = machine();
    m.spawn(a, m.config().context_id(0, 0));
    m.spawn(b, m.config().context_id(0, 1));
    spawn_standard_noise(&mut m, 0, 3, 55);
    let mut session = AuditSession::new();
    session
        .audit_divider(0, paper::DIV_DELTA_T)
        .expect("divider audit");
    session.attach(&mut m);
    let data = QuantumRunner::new(paper::QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, 8)
        .expect("audit harvest");
    let merged = merge(&data.divider_histograms);

    let with = BurstDetector::default().analyze(&merged);
    let without = BurstDetector::new(BurstConfig {
        min_coherence: 0.0,
        ..BurstConfig::default()
    })
    .analyze(&merged);

    let mut table = Table::new(&["variant", "LR", "coherence", "significant"]);
    table.row(vec![
        "with coherence test (default)".to_string(),
        format!("{:.3}", with.likelihood_ratio),
        format!("{:.3}", with.coherence),
        with.significant.to_string(),
    ]);
    table.row(vec![
        "without coherence test".to_string(),
        format!("{:.3}", without.likelihood_ratio),
        format!("{:.3}", without.coherence),
        without.significant.to_string(),
    ]);
    table.print();
    println!();
    assert!(!with.significant && without.significant);
    println!("the likelihood ratio alone cannot separate scattered benign");
    println!("contention from a covert cluster; the coherence requirement can.");
}

/// Tracker ablation: practical generation/Bloom tracker vs the ideal
/// LRU-stack oracle.
pub fn ablation_trackers() {
    super::banner(
        "Ablation — conflict-miss trackers",
        "practical generation/Bloom tracker vs the ideal LRU-stack oracle",
    );
    let mut table = Table::new(&["#sets", "tracker", "conflict records", "peak lag", "peak r"]);
    let mut csv_rows = Vec::new();
    for &sets in &[128u32, 256, 512] {
        for (name, kind) in [
            ("practical", TrackerKind::Practical),
            ("ideal", TrackerKind::Ideal),
        ] {
            let artifacts = run_cache(
                Message::alternating(24),
                1_000.0,
                sets,
                kind,
                &RunOptions::default(),
            );
            let series = symbol_series(
                &artifacts.data.conflicts,
                artifacts.data.start,
                artifacts.data.end,
            );
            let correlogram = Autocorrelogram::of_symbols(&series, 1100);
            let (lag, r) = correlogram.dominant_peak(8, 0.0).unwrap_or((0, 0.0));
            table.row(vec![
                sets.to_string(),
                name.to_string(),
                artifacts.data.conflicts.len().to_string(),
                lag.to_string(),
                format!("{r:.3}"),
            ]);
            csv_rows.push(vec![
                sets.to_string(),
                name.to_string(),
                artifacts.data.conflicts.len().to_string(),
                lag.to_string(),
                format!("{r:.4}"),
            ]);
        }
    }
    table.print();
    write_csv(
        "extra_tracker_ablation",
        &[
            "total_sets",
            "tracker",
            "conflict_records",
            "peak_lag",
            "peak_r",
        ],
        csv_rows,
    );
    println!();
    println!("the practical tracker matches the oracle wherever the channel's");
    println!("working set fits the recency window (≤256 sets); both degrade");
    println!("identically at 512 — the Figure 8 limit is physics, not the Bloom");
    println!("approximation.");
}

/// Δt sensitivity: the bus channel's likelihood ratio across two orders of
/// magnitude of Δt.
pub fn delta_t_sensitivity() {
    super::banner(
        "Ablation — Δt sensitivity",
        "detection holds across a wide range of Δt (paper §IV-B)",
    );
    // One shared run, re-analyzed at each Δt from the raw event train.
    let message = Message::from_u64(paper::CREDIT_CARD);
    let artifacts = crate::harness::run_bus(
        message,
        1_000.0,
        &RunOptions {
            collect_events: true,
            ..RunOptions::default()
        },
    );
    let train = artifacts.bus_lock_train.expect("events collected");
    let span = artifacts.quanta as u64 * paper::QUANTUM;
    let detector = BurstDetector::default();
    let mut table = Table::new(&[
        "Δt (cycles)",
        "threshold",
        "burst peak",
        "LR",
        "significant",
    ]);
    let mut csv_rows = Vec::new();
    for &delta_t in &[
        10_000u64, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
    ] {
        let h = DensityHistogram::from_train(&train, delta_t, 0, span);
        let v = detector.analyze(&h);
        table.row(vec![
            delta_t.to_string(),
            v.threshold_density
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            v.burst_peak
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:.3}", v.likelihood_ratio),
            v.significant.to_string(),
        ]);
        csv_rows.push(vec![
            delta_t.to_string(),
            format!("{:.4}", v.likelihood_ratio),
            v.significant.to_string(),
        ]);
    }
    table.print();
    write_csv(
        "extra_delta_t_sensitivity",
        &["delta_t", "likelihood_ratio", "significant"],
        csv_rows,
    );
    println!();
    println!("Δt is tempered by α but not fragile: any window between ~2× the");
    println!("lock interval and the burst length detects the channel.");
}

/// Runs all four extension studies.
pub fn run_all_extras() {
    evasion_study();
    ablation_coherence();
    ablation_trackers();
    delta_t_sensitivity();
}
