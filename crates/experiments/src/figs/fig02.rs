//! Figure 2: average latency per memory access (in CPU cycles) observed by
//! the spy of the memory-bus covert channel, for a 64-bit credit card
//! number.

use crate::harness::{paper, run_bus, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::channels::{DecodeRule, Message};

/// The channel bandwidth used for the per-sample latency figures. The
/// paper does not state one; 1 kbps keeps several spy samples per bit.
pub const BANDWIDTH_BPS: f64 = 1_000.0;

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 2",
        "spy-observed average memory access latency, bus covert channel",
    );
    let message = Message::from_u64(paper::CREDIT_CARD);
    let artifacts = run_bus(message.clone(), BANDWIDTH_BPS, &RunOptions::default());
    let log = artifacts.log.borrow();

    let path = write_csv(
        "fig02_bus_latency",
        &["sample", "cycle", "bit", "avg_latency_cycles"],
        log.samples().iter().enumerate().map(|(i, s)| {
            vec![
                i.to_string(),
                s.cycle.to_string(),
                s.bit.to_string(),
                format!("{:.1}", s.value),
            ]
        }),
    );

    // Summary: the separation the spy decodes from.
    let mut ones = Vec::new();
    let mut zeros = Vec::new();
    for s in log.samples() {
        if message.bit(s.bit).unwrap_or(false) {
            ones.push(s.value);
        } else {
            zeros.push(s.value);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let decoded = log.decode(DecodeRule::Midpoint, message.len());
    let mut table = Table::new(&["series", "samples", "avg latency (cycles)"]);
    table.row(vec![
        "'1' bits (contended bus)".to_string(),
        ones.len().to_string(),
        format!("{:.0}", avg(&ones)),
    ]);
    table.row(vec![
        "'0' bits (idle bus)".to_string(),
        zeros.len().to_string(),
        format!("{:.0}", avg(&zeros)),
    ]);
    table.print();
    println!();
    println!("message sent   : {message}");
    println!("spy decoded    : {decoded}");
    println!(
        "bit error rate : {:.2}%",
        message.bit_error_rate(&decoded) * 100.0
    );
    println!("series written : {}", path.display());
    println!(
        "paper shape    : high-latency plateaus on '1' bits, low on '0' bits — {}",
        if avg(&ones) > avg(&zeros) * 1.5 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
