//! Extended false-alarm study: the paper tests "128 pair-wise combinations
//! of several standard SPEC2006, Stream and Filebench benchmarks" and shows
//! a representative subset in Figure 14. This experiment sweeps all 66
//! unordered pairs of the 11-workload roster under every audit and demands
//! zero false alarms.

use crate::harness::{fast_mode, paper};
use crate::output::{write_csv, Table};
use cc_hunter::audit::{AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_standard_noise;
use cc_hunter::workloads::{extended_pairs, workload_by_name};

/// Quanta per audit run.
fn quanta() -> usize {
    if fast_mode() {
        2
    } else {
        3
    }
}

fn machine() -> Machine {
    Machine::new(
        MachineConfig::builder()
            .quantum_cycles(paper::QUANTUM)
            .build()
            .expect("valid config"),
    )
}

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 14 (extended)",
        "all 66 pairwise workload combinations under every audit",
    );
    let pairs: Vec<String> = extended_pairs().into_iter().map(|(l, _, _)| l).collect();
    let pairs = if fast_mode() {
        pairs.into_iter().step_by(4).collect::<Vec<_>>()
    } else {
        pairs
    };
    let hunter_bus = CcHunter::new(CcHunterConfig {
        quantum_cycles: paper::QUANTUM,
        delta_t: DeltaTPolicy::Fixed(paper::BUS_DELTA_T),
        ..CcHunterConfig::default()
    });
    let hunter_div = CcHunter::new(CcHunterConfig {
        quantum_cycles: paper::QUANTUM,
        delta_t: DeltaTPolicy::Fixed(paper::DIV_DELTA_T),
        ..CcHunterConfig::default()
    });
    let hunter_cache = CcHunter::new(CcHunterConfig {
        quantum_cycles: paper::QUANTUM,
        ..CcHunterConfig::default()
    });

    let mut false_alarms: Vec<String> = Vec::new();
    let mut csv_rows = Vec::new();
    let total = pairs.len();
    for (i, label) in pairs.iter().enumerate() {
        let (a_name, b_name) = label.split_once('_').expect("label format");
        // Run 1: bus + divider.
        let mut m = machine();
        m.spawn(
            workload_by_name(a_name, 10 + i as u64),
            m.config().context_id(0, 0),
        );
        m.spawn(
            workload_by_name(b_name, 90 + i as u64),
            m.config().context_id(0, 1),
        );
        spawn_standard_noise(&mut m, 0, 3, 7_000 + i as u64);
        let mut session = AuditSession::new();
        session.audit_bus(paper::BUS_DELTA_T).unwrap();
        session.audit_divider(0, paper::DIV_DELTA_T).unwrap();
        session.attach(&mut m);
        let data = QuantumRunner::new(paper::QUANTUM)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, quanta())
            .expect("audit harvest");
        let bus = hunter_bus.analyze_contention(data.bus_histograms);
        let div = hunter_div.analyze_contention(data.divider_histograms);

        // Run 2: multiplier + cache.
        let mut m = machine();
        m.spawn(
            workload_by_name(a_name, 10 + i as u64),
            m.config().context_id(0, 0),
        );
        m.spawn(
            workload_by_name(b_name, 90 + i as u64),
            m.config().context_id(0, 1),
        );
        spawn_standard_noise(&mut m, 0, 3, 7_000 + i as u64);
        let mut session = AuditSession::new();
        session.audit_multiplier(0, paper::DIV_DELTA_T).unwrap();
        let blocks = m.config().l2.total_blocks() as usize;
        session
            .audit_cache(0, blocks, TrackerKind::Practical)
            .unwrap();
        session.attach(&mut m);
        let data = QuantumRunner::new(paper::QUANTUM)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, quanta())
            .expect("audit harvest");
        let mul = hunter_div.analyze_contention(data.multiplier_histograms);
        let cache = hunter_cache.analyze_oscillation(&data.conflicts, data.start, data.end);

        let clean = !bus.verdict.is_covert()
            && !div.verdict.is_covert()
            && !mul.verdict.is_covert()
            && !cache.verdict.is_covert();
        if !clean {
            false_alarms.push(label.clone());
        }
        csv_rows.push(vec![
            label.clone(),
            format!("{:.3}", bus.peak_likelihood_ratio),
            format!("{:.3}", div.peak_likelihood_ratio),
            format!("{:.3}", mul.peak_likelihood_ratio),
            cache
                .peak
                .map(|(lag, r)| format!("{r:.2}@{lag}"))
                .unwrap_or_else(|| "-".into()),
            clean.to_string(),
        ]);
        if (i + 1) % 10 == 0 {
            println!("  {}/{} pairs audited…", i + 1, total);
        }
    }
    write_csv(
        "fig14ext_all_pairs",
        &[
            "pair",
            "bus_lr",
            "divider_lr",
            "multiplier_lr",
            "cache_peak",
            "clean",
        ],
        csv_rows,
    );
    let mut table = Table::new(&["pairs audited", "false alarms"]);
    table.row(vec![total.to_string(), false_alarms.len().to_string()]);
    table.print();
    println!();
    assert!(false_alarms.is_empty(), "false alarms on: {false_alarms:?}");
    println!("zero false alarms across all {total} pairwise combinations");
}
