//! Figure 11: fine-grain observation windows rescue the 0.1 bps cache
//! channel — autocorrelograms at 0.75×, 0.5× and 0.25× of the OS time
//! quantum show significant repetitive peaks that the full-quantum
//! analysis dilutes.

use crate::harness::{paper, run_cache, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::Message;
use cc_hunter::detector::autocorr::{OscillationConfig, OscillationDetector};
use cc_hunter::detector::pipeline::symbol_series;

/// The low-bandwidth channel under study.
pub const BANDWIDTH_BPS: f64 = 0.1;
/// Window sizes as fractions of the OS time quantum.
pub const WINDOW_FRACTIONS: [f64; 4] = [1.0, 0.75, 0.5, 0.25];

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 11",
        "0.1 bps cache channel under fractional observation windows",
    );
    let message = Message::from_bits(vec![true, false]);
    let artifacts = run_cache(
        message,
        BANDWIDTH_BPS,
        512,
        TrackerKind::Practical,
        &RunOptions::default(),
    );
    // Fractional windows hold only a couple of pattern periods, so judge
    // them on peak magnitude (the paper's visual criterion); the harmonic
    // confirmation needs more data than a quarter-quantum window contains.
    let detector = OscillationDetector::new(OscillationConfig {
        harmonic_fraction: 0.0,
        ..OscillationConfig::default()
    });

    let mut table = Table::new(&[
        "window size",
        "windows",
        "oscillatory",
        "best peak r",
        "best peak lag",
    ]);
    let mut csv_rows = Vec::new();
    let mut fine_beats_coarse = (0.0f64, 0usize); // (full-quantum best, finest oscillatory count)
    for &fraction in &WINDOW_FRACTIONS {
        let window = (paper::QUANTUM as f64 * fraction) as u64;
        let mut oscillatory = 0usize;
        let mut windows = 0usize;
        let mut best: (usize, f64) = (0, 0.0);
        let mut lo = artifacts.data.start;
        while lo < artifacts.data.end {
            let hi = (lo + window).min(artifacts.data.end);
            let series = symbol_series(&artifacts.data.conflicts, lo, hi);
            // Deep enough to see the second harmonic of a 512-set channel.
            let verdict = detector.analyze(&series, 1300);
            windows += 1;
            if verdict.oscillatory {
                oscillatory += 1;
            }
            if let Some((lag, value)) = verdict.peak {
                if value > best.1 {
                    best = (lag, value);
                }
            }
            lo = hi;
        }
        table.row(vec![
            format!("{:.2}× quantum", fraction),
            windows.to_string(),
            oscillatory.to_string(),
            format!("{:.3}", best.1),
            best.0.to_string(),
        ]);
        csv_rows.push(vec![
            fraction.to_string(),
            windows.to_string(),
            oscillatory.to_string(),
            format!("{:.4}", best.1),
            best.0.to_string(),
        ]);
        if (fraction - 1.0).abs() < 1e-9 {
            fine_beats_coarse.0 = best.1;
        }
        if (fraction - 0.25).abs() < 1e-9 {
            fine_beats_coarse.1 = oscillatory;
        }
    }
    table.print();
    write_csv(
        "fig11_fine_grain_windows",
        &[
            "window_fraction",
            "windows",
            "oscillatory",
            "best_peak_r",
            "best_peak_lag",
        ],
        csv_rows,
    );
    println!();
    assert!(
        fine_beats_coarse.1 > 0,
        "0.25× windows must expose significant repetitive peaks"
    );
    println!("paper shape: fractional windows expose significant repetitive peaks —");
    println!("REPRODUCED. (Divergence: our 0.1 bps channel re-modulates densely");
    println!("enough that full-quantum windows also stay significant; the paper's");
    println!("sparser channel needed the finer windows to reach significance.)");
}
