//! Figure 7: ratios of cache access times between the G1 and G0 set groups
//! observed by the cache-channel spy, same 64-bit message.

use crate::harness::{paper, run_cache, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::{DecodeRule, Message};

/// Channel bandwidth for the ratio figure.
pub const BANDWIDTH_BPS: f64 = 1_000.0;
/// Cache sets used (the paper's Figure 8 configuration).
pub const TOTAL_SETS: u32 = 512;

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 7",
        "G1/G0 cache access-time ratios observed by the spy",
    );
    let message = Message::from_u64(paper::CREDIT_CARD);
    let artifacts = run_cache(
        message.clone(),
        BANDWIDTH_BPS,
        TOTAL_SETS,
        TrackerKind::Practical,
        &RunOptions::default(),
    );
    let log = artifacts.log.borrow();

    let path = write_csv(
        "fig07_cache_ratio",
        &["sample", "cycle", "bit", "g1_g0_ratio"],
        log.samples().iter().enumerate().map(|(i, s)| {
            vec![
                i.to_string(),
                s.cycle.to_string(),
                s.bit.to_string(),
                format!("{:.3}", s.value),
            ]
        }),
    );

    let mut ones = Vec::new();
    let mut zeros = Vec::new();
    for s in log.samples() {
        if message.bit(s.bit).unwrap_or(false) {
            ones.push(s.value);
        } else {
            zeros.push(s.value);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let decoded = log.decode(DecodeRule::FixedThreshold(1.0), message.len());
    let mut table = Table::new(&["series", "samples", "avg G1/G0 ratio"]);
    table.row(vec![
        "'1' bits (G1 evicted)".to_string(),
        ones.len().to_string(),
        format!("{:.2}", avg(&ones)),
    ]);
    table.row(vec![
        "'0' bits (G0 evicted)".to_string(),
        zeros.len().to_string(),
        format!("{:.2}", avg(&zeros)),
    ]);
    table.print();
    println!();
    println!("message sent   : {message}");
    println!("spy decoded    : {decoded}");
    println!(
        "bit error rate : {:.2}%",
        message.bit_error_rate(&decoded) * 100.0
    );
    println!("series written : {}", path.display());
    println!(
        "paper shape    : ratio > 1 on '1' bits, < 1 on '0' bits — {}",
        if avg(&ones) > 1.0 && avg(&zeros) < 1.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
