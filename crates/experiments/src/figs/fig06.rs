//! Figure 6: event-density histograms for the memory-bus and
//! integer-divider covert channels, with the threshold-density split and
//! burst statistics.

use crate::harness::{paper, run_bus, run_divider, RunOptions};
use crate::output::{sparse_bins, write_csv, Table};
use cc_hunter::channels::Message;
use cc_hunter::detector::{BurstDetector, DensityHistogram};

/// Channel bandwidth (as figures 2/3).
pub const BANDWIDTH_BPS: f64 = 1_000.0;

/// Merges per-quantum histograms into one (the figure aggregates a full
/// transmission).
pub fn merge(histograms: &[DensityHistogram]) -> DensityHistogram {
    let mut merged = DensityHistogram::empty(histograms[0].delta_t());
    for h in histograms {
        merged.merge(h);
    }
    merged
}

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 6",
        "event density histograms: memory bus (Δt=100k) & divider (Δt=500)",
    );
    let message = Message::from_u64(paper::CREDIT_CARD);
    let detector = BurstDetector::default();

    let bus = run_bus(message.clone(), BANDWIDTH_BPS, &RunOptions::default());
    let bus_hist = merge(&bus.data.bus_histograms);
    let div = run_divider(message, BANDWIDTH_BPS, &RunOptions::default());
    let div_hist = merge(&div.data.divider_histograms);

    let mut table = Table::new(&[
        "channel",
        "Δt",
        "threshold",
        "burst range",
        "burst peak",
        "likelihood ratio",
    ]);
    for (name, hist, csv) in [
        ("memory bus", &bus_hist, "fig06_bus_histogram"),
        ("integer divider", &div_hist, "fig06_divider_histogram"),
    ] {
        let v = detector.analyze(hist);
        write_csv(
            csv,
            &["density_bin", "frequency"],
            hist.bins()
                .iter()
                .enumerate()
                .map(|(bin, &f)| vec![bin.to_string(), f.to_string()]),
        );
        table.row(vec![
            name.to_string(),
            hist.delta_t().to_string(),
            v.threshold_density
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            v.burst_range
                .map(|(a, b)| format!("bins {a}–{b}"))
                .unwrap_or_else(|| "-".into()),
            v.burst_peak
                .map(|p| format!("bin {p}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.3}", v.likelihood_ratio),
        ]);
        println!("{name} nonzero bins: {}", sparse_bins(hist));
        assert!(v.significant, "{name} channel must show significant bursts");
    }
    println!();
    table.print();
    println!();
    println!("paper shape: bus burst near bin 20, divider burst high in the");
    println!("bin range (paper: 84–105), both with LR > 0.9 and huge bin 0");
}
