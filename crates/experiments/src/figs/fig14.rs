//! Figure 14: the false-alarm study — benign SPEC2006/STREAM/Filebench
//! pairs under all three audits. The paper observes zero false alarms:
//! benign bursts are random or (mailserver) carry likelihood ratios below
//! 0.5, and no benign autocorrelogram shows sustained periodicity.

use crate::figs::fig06::merge;
use crate::harness::{fast_mode, paper};
use crate::output::{sparse_bins, write_csv, Table};
use cc_hunter::audit::{AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::detector::{BurstDetector, CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig, Program};
use cc_hunter::workloads::figure14_pairs;
use cc_hunter::workloads::noise::spawn_standard_noise;

/// Simulated quanta per pair (paper: full transmissions over many quanta).
pub fn quanta() -> usize {
    if fast_mode() {
        4
    } else {
        12
    }
}

fn machine() -> Machine {
    Machine::new(
        MachineConfig::builder()
            .quantum_cycles(paper::QUANTUM)
            .build()
            .expect("valid config"),
    )
}

fn fresh_pair(label: &str) -> (Box<dyn Program>, Box<dyn Program>) {
    let (_, a, b) = figure14_pairs()
        .into_iter()
        .find(|(l, _, _)| *l == label)
        .expect("known pair");
    (a, b)
}

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 14",
        "false-alarm study: benign benchmark pairs under audit",
    );
    let detector = BurstDetector::default();
    let mut table = Table::new(&["pair", "bus LR", "divider LR", "cache peak", "verdict"]);
    let mut all_clean = true;
    let mut csv_rows = Vec::new();

    for label in figure14_pairs().into_iter().map(|(l, _, _)| l) {
        // Run 1: bus + divider audits.
        let (a, b) = fresh_pair(label);
        let mut m = machine();
        m.spawn(a, m.config().context_id(0, 0));
        m.spawn(b, m.config().context_id(0, 1));
        spawn_standard_noise(&mut m, 0, 3, 4242);
        let mut session = AuditSession::new();
        session.audit_bus(paper::BUS_DELTA_T).expect("bus audit");
        session
            .audit_divider(0, paper::DIV_DELTA_T)
            .expect("divider audit");
        session.attach(&mut m);
        let data = QuantumRunner::new(paper::QUANTUM)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, quanta())
            .expect("audit harvest");

        let bus_hist = merge(&data.bus_histograms);
        let div_hist = merge(&data.divider_histograms);
        let bus_v = detector.analyze(&bus_hist);
        let div_v = detector.analyze(&div_hist);
        write_csv(
            &format!("fig14_{label}_bus_histogram"),
            &["density_bin", "frequency"],
            bus_hist
                .bins()
                .iter()
                .enumerate()
                .map(|(bin, &f)| vec![bin.to_string(), f.to_string()]),
        );
        write_csv(
            &format!("fig14_{label}_divider_histogram"),
            &["density_bin", "frequency"],
            div_hist
                .bins()
                .iter()
                .enumerate()
                .map(|(bin, &f)| vec![bin.to_string(), f.to_string()]),
        );

        let hunter_bus = CcHunter::new(CcHunterConfig {
            quantum_cycles: paper::QUANTUM,
            delta_t: DeltaTPolicy::Fixed(paper::BUS_DELTA_T),
            ..CcHunterConfig::default()
        });
        let bus_report = hunter_bus.analyze_contention(data.bus_histograms);
        let hunter_div = CcHunter::new(CcHunterConfig {
            quantum_cycles: paper::QUANTUM,
            delta_t: DeltaTPolicy::Fixed(paper::DIV_DELTA_T),
            ..CcHunterConfig::default()
        });
        let div_report = hunter_div.analyze_contention(data.divider_histograms);

        // Run 2: cache audit (the auditor handles two units at a time).
        let (a, b) = fresh_pair(label);
        let mut m = machine();
        m.spawn(a, m.config().context_id(0, 0));
        m.spawn(b, m.config().context_id(0, 1));
        spawn_standard_noise(&mut m, 0, 3, 4242);
        let mut session = AuditSession::new();
        let blocks = m.config().l2.total_blocks() as usize;
        session
            .audit_cache(0, blocks, TrackerKind::Practical)
            .expect("cache audit");
        session.attach(&mut m);
        let cache_data = QuantumRunner::new(paper::QUANTUM)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, quanta())
            .expect("audit harvest");
        let hunter_cache = CcHunter::new(CcHunterConfig {
            quantum_cycles: paper::QUANTUM,
            ..CcHunterConfig::default()
        });
        let cache_report = hunter_cache.analyze_oscillation(
            &cache_data.conflicts,
            cache_data.start,
            cache_data.end,
        );

        let clean = !bus_report.verdict.is_covert()
            && !div_report.verdict.is_covert()
            && !cache_report.verdict.is_covert();
        all_clean &= clean;
        let cache_peak = cache_report
            .peak
            .map(|(lag, r)| format!("r={r:.2}@{lag}"))
            .unwrap_or_else(|| "-".into());
        println!("{label}:");
        println!("  bus lock density bins     : {}", sparse_bins(&bus_hist));
        println!("  divider contention bins   : {}", sparse_bins(&div_hist));
        // A likelihood ratio is only meaningful when a burst distribution
        // exists at all (the paper reports LRs for the mailserver's real
        // second distribution; pairs with random scatter have none).
        let show = |v: &cc_hunter::detector::BurstVerdict| {
            if v.has_burst_distribution {
                format!("{:.3}", v.likelihood_ratio)
            } else {
                "no burst distribution".to_string()
            }
        };
        table.row(vec![
            label.to_string(),
            show(&bus_v),
            show(&div_v),
            cache_peak.clone(),
            if clean { "clean" } else { "FALSE ALARM" }.to_string(),
        ]);
        csv_rows.push(vec![
            label.to_string(),
            format!("{:.4}", bus_v.likelihood_ratio),
            format!("{:.4}", div_v.likelihood_ratio),
            cache_peak,
            clean.to_string(),
        ]);
    }
    println!();
    table.print();
    write_csv(
        "fig14_false_alarms",
        &["pair", "bus_lr", "divider_lr", "cache_peak", "clean"],
        csv_rows,
    );
    println!();
    assert!(all_clean, "the paper reports zero false alarms");
    println!("zero false alarms across all pairs — REPRODUCED");
}
