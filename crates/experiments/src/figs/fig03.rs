//! Figure 3: average loop execution time (in CPU cycles) observed by the
//! spy of the integer-divider covert channel, same 64-bit message.

use crate::harness::{paper, run_divider, RunOptions};
use crate::output::{write_csv, Table};
use cc_hunter::channels::{DecodeRule, Message};

/// Channel bandwidth for the per-sample figure (as in Figure 2).
pub const BANDWIDTH_BPS: f64 = 1_000.0;

/// Runs the experiment.
pub fn run() {
    super::banner(
        "Figure 3",
        "spy-observed average division-loop latency, divider covert channel",
    );
    let message = Message::from_u64(paper::CREDIT_CARD);
    let artifacts = run_divider(message.clone(), BANDWIDTH_BPS, &RunOptions::default());
    let log = artifacts.log.borrow();

    let path = write_csv(
        "fig03_div_latency",
        &["sample", "cycle", "bit", "avg_latency_per_div_cycles"],
        log.samples().iter().enumerate().map(|(i, s)| {
            vec![
                i.to_string(),
                s.cycle.to_string(),
                s.bit.to_string(),
                format!("{:.1}", s.value),
            ]
        }),
    );

    let mut ones = Vec::new();
    let mut zeros = Vec::new();
    for s in log.samples() {
        if message.bit(s.bit).unwrap_or(false) {
            ones.push(s.value);
        } else {
            zeros.push(s.value);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let decoded = log.decode(DecodeRule::Midpoint, message.len());
    let mut table = Table::new(&["series", "samples", "avg per-division latency (cycles)"]);
    table.row(vec![
        "'1' bits (contended dividers)".to_string(),
        ones.len().to_string(),
        format!("{:.1}", avg(&ones)),
    ]);
    table.row(vec![
        "'0' bits (idle trojan)".to_string(),
        zeros.len().to_string(),
        format!("{:.1}", avg(&zeros)),
    ]);
    table.print();
    println!();
    println!("message sent   : {message}");
    println!("spy decoded    : {decoded}");
    println!(
        "bit error rate : {:.2}%",
        message.bit_error_rate(&decoded) * 100.0
    );
    println!("series written : {}", path.display());
    println!(
        "paper shape    : loop latency high on '1', low on '0' — {}",
        if avg(&ones) > avg(&zeros) * 1.2 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
