//! Figure 5: the worked illustration of an event train and its event
//! density histogram (the paper's 8-window example with densities
//! 3 3 0 0 0 3 1 3).

use crate::output::Table;
use cc_hunter::detector::{DensityHistogram, EventTrain};

/// Runs the illustration.
pub fn run() {
    super::banner(
        "Figure 5",
        "event train → event density histogram (worked example)",
    );
    // The paper's example train: per-Δt densities 3 3 0 0 0 3 1 3.
    let densities = [3u64, 3, 0, 0, 0, 3, 1, 3];
    let delta_t = 100u64;
    let mut train = EventTrain::new();
    for (window, &d) in densities.iter().enumerate() {
        for e in 0..d {
            train.push(window as u64 * delta_t + e * 10 + 5, 1);
        }
    }
    let histogram =
        DensityHistogram::from_train(&train, delta_t, 0, densities.len() as u64 * delta_t);

    println!("event train (Δt windows): {densities:?}");
    println!();
    let mut table = Table::new(&["event density in Δt", "frequency of Δt"]);
    for (bin, &freq) in histogram.bins().iter().enumerate().take(8) {
        table.row(vec![bin.to_string(), freq.to_string()]);
    }
    table.print();

    assert_eq!(histogram.frequency(0), 3);
    assert_eq!(histogram.frequency(1), 1);
    assert_eq!(histogram.frequency(3), 4);
    assert_eq!(histogram.total_windows(), 8);
    println!();
    println!("matches the paper's illustration: bin0=3, bin1=1, bin3=4");
}
