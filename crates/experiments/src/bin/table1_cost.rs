//! Regenerates Table I.
fn main() {
    cchunter_experiments::figs::table1::run();
}
