//! Runs the ablation and extension studies (evasion, coherence, trackers, Δt).
fn main() {
    cchunter_experiments::figs::extras::run_all_extras();
}
