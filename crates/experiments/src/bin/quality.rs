//! Quality runner: `cargo run -p cchunter-experiments --release --bin
//! cchunter-quality` runs the channel × bandwidth × noise × indicator sweep
//! and writes `QUALITY_detector.json` at the repository root — per-cell ROC
//! curves, AUC, online detection latency, and benign false-positive rate
//! for every registered indicator.
//!
//! `--check` instead runs the sweep in quick mode and compares it against
//! the committed `QUALITY_detector.json`, printing a per-cell report and
//! exiting nonzero when any baseline cell lost more than 0.03 AUC, exceeded
//! its FP ceiling, or went missing — the CI detection-quality gate. The
//! baseline file is never rewritten in this mode.
//!
//! Set `CCHUNTER_QUALITY_QUICK=1` for the CI-sized grid (the committed
//! baseline's shape) and `CCHUNTER_QUALITY_SEED` to vary the seed (default
//! 42). Two runs with the same seed are byte-identical.

use cchunter_bench::check::parse_json;
use cchunter_experiments::quality::{compare, parse_cells, run_sweep, SweepConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    // Tolerate the documented spelled-out form
    // `cargo run -p cchunter-experiments --release -- quality`.
    if let Some(unknown) = args.iter().find(|a| *a != "--check" && *a != "quality") {
        eprintln!("unknown argument {unknown:?} (supported: --check)");
        return ExitCode::FAILURE;
    }

    if check_mode {
        // The gate always sweeps the quick grid: it is the shape the
        // committed baseline records, and the AUC/FP slack absorbs what
        // little run-to-run variation the seeded sweep has (none).
        std::env::set_var("CCHUNTER_QUALITY_QUICK", "1");
        return run_check();
    }

    let config = SweepConfig::from_env();
    let result = run_sweep(&config);
    let out = repo_root().join("QUALITY_detector.json");
    std::fs::write(&out, result.render_json())
        .unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("\nwrote {}", out.display());
    println!("\nheadline AUC (noise off, best bandwidth):");
    print!("{}", result.render_headline());
    ExitCode::SUCCESS
}

fn run_check() -> ExitCode {
    let baseline_path = repo_root().join("QUALITY_detector.json");
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "no baseline at {} ({e}); run `cargo run -p cchunter-experiments --release \
                 --bin cchunter-quality` with CCHUNTER_QUALITY_QUICK=1 and commit the result",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match parse_json(&text).and_then(|doc| parse_cells(&doc)) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("baseline {} is malformed: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };

    let config = SweepConfig::from_env();
    let fresh = run_sweep(&config);
    let report = compare(&baseline, &fresh.cells);
    println!("{}", report.render());
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.join("../..");
    root.canonicalize().unwrap_or(root)
}
