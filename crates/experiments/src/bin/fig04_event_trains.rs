//! Regenerates the paper artifact; see `cchunter_experiments::figs`.
fn main() {
    cchunter_experiments::figs::fig04::run();
}
