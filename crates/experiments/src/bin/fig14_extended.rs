//! Extended pairwise false-alarm sweep (66 pairs).
fn main() {
    cchunter_experiments::figs::fig14ext::run();
}
