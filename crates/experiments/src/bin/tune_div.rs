use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{
    BitClock, DividerChannelConfig, DividerSpy, DividerTrojan, Message, SpyLog,
};
use cc_hunter::detector::{BurstDetector, DensityHistogram};
use cc_hunter::sim::{Machine, MachineConfig};

fn main() {
    for (batch, tgap, sgap) in [
        (1u32, 4u64, 90u64),
        (1, 4, 128),
        (1, 4, 200),
        (2, 4, 200),
        (1, 12, 128),
        (1, 24, 128),
        (1, 4, 300),
        (1, 12, 300),
        (2, 24, 200),
        (1, 24, 64),
    ] {
        let mut m = Machine::new(
            MachineConfig::builder()
                .quantum_cycles(250_000_000)
                .build()
                .unwrap(),
        );
        let clock = BitClock::new(1_000_000, 2_500_000);
        let mut cfg = DividerChannelConfig::new(Message::from_bits(vec![true; 32]), clock);
        cfg.trojan_batch = batch;
        cfg.trojan_gap = tgap;
        cfg.spy_gap = sgap;
        cfg.spy_divs_per_iter = 1;
        cfg.samples_per_bit = 48;
        let log = SpyLog::new_handle();
        m.spawn(
            Box::new(DividerTrojan::new(cfg.clone())),
            m.config().context_id(0, 0),
        );
        m.spawn(
            Box::new(DividerSpy::new(cfg, log.clone())),
            m.config().context_id(0, 1),
        );
        let mut s = AuditSession::new();
        s.audit_divider(0, 500).unwrap();
        s.attach(&mut m);
        let data = QuantumRunner::new(250_000_000)
            .expect("nonzero quantum")
            .run(&mut m, &mut s, 1)
            .expect("audit harvest");
        let mut h = DensityHistogram::empty(500);
        for x in &data.divider_histograms {
            h.merge(x);
        }
        let v = BurstDetector::default().analyze(&h);
        let nz: Vec<(usize, u64)> = h
            .bins()
            .iter()
            .enumerate()
            .filter(|(i, &f)| *i > 0 && f > 0)
            .map(|(i, &f)| (i, f))
            .collect();
        let ones: Vec<f64> = log.borrow().per_bit().iter().map(|&(_, x)| x).collect();
        let avg1 = ones.iter().sum::<f64>() / ones.len().max(1) as f64;
        println!("batch={batch} tgap={tgap} sgap={sgap}: peak={:?} range={:?} lat1={avg1:.1} bins={nz:?}", v.burst_peak, v.burst_range);
    }
}
