//! Runs the entire evaluation, every table and figure in order.
fn main() {
    cchunter_experiments::figs::run_all();
}
