//! Shared experiment scaffolding: paper-scale constants and channel
//! runners.

use cc_hunter::audit::{AuditData, AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::channels::{
    BitClock, BusChannelConfig, BusSpy, BusTrojan, CacheChannelConfig, CacheSpy, CacheTrojan,
    DividerChannelConfig, DividerSpy, DividerTrojan, Message, SpyLog, SpyLogHandle,
};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_scaled_noise;

/// The paper's evaluation constants.
pub mod paper {
    /// Modeled clock: 2.5 GHz.
    pub const CLOCK_HZ: u64 = 2_500_000_000;
    /// OS time quantum: 0.1 s = 250 M cycles.
    pub const QUANTUM: u64 = 250_000_000;
    /// Δt for the memory-bus audit: 100,000 cycles (40 µs).
    pub const BUS_DELTA_T: u64 = 100_000;
    /// Δt for the integer-divider audit: 500 cycles (200 ns).
    pub const DIV_DELTA_T: u64 = 500;
    /// Observation window cap: 512 quanta (51.2 s).
    pub const MAX_WINDOW_QUANTA: usize = 512;
    /// The fixed 64-bit "credit card number" used across figures 2/3/7
    /// (any value works; this one is the workspace's canonical choice).
    pub const CREDIT_CARD: u64 = 0x4929_1273_5521_8674;
}

/// Whether the fast (CI-sized) variant was requested via `CCH_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("CCH_FAST").map(|v| v != "0").unwrap_or(false)
}

/// Per-run knobs.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Background noise processes (the paper's "at least three").
    pub noise_processes: usize,
    /// Noise seed (vary to get independent interference).
    pub noise_seed: u64,
    /// Extra quanta to run past the end of the message.
    pub tail_quanta: usize,
    /// Cycle at which bit 0 starts.
    pub epoch: u64,
    /// Also record the raw indicator-event trains (Figure 4).
    pub collect_events: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            noise_processes: 3,
            noise_seed: 1001,
            tail_quanta: 0,
            epoch: 1_000_000,
            collect_events: false,
        }
    }
}

/// Everything an experiment needs from one channel run.
#[derive(Debug)]
pub struct ChannelArtifacts {
    /// Harvested CC-auditor data.
    pub data: AuditData,
    /// The spy's measurement log.
    pub log: SpyLogHandle,
    /// The transmitted message.
    pub message: Message,
    /// Bit interval in cycles.
    pub bit_cycles: u64,
    /// Quanta simulated.
    pub quanta: usize,
    /// Raw bus-lock event train (when `collect_events` was set).
    pub bus_lock_train: Option<cc_hunter::detector::EventTrain>,
    /// Raw divider-wait event train (weighted by stalled cycles).
    pub divider_wait_train: Option<cc_hunter::detector::EventTrain>,
}

/// Converts a recorded probe trace into the two indicator-event trains.
fn extract_trains(
    events: &[cc_hunter::sim::ProbeEvent],
) -> (
    cc_hunter::detector::EventTrain,
    cc_hunter::detector::EventTrain,
) {
    use cc_hunter::sim::ProbeEvent;
    let mut locks: Vec<(u64, u32)> = Vec::new();
    let mut waits: Vec<(u64, u32)> = Vec::new();
    for ev in events {
        match *ev {
            ProbeEvent::BusLock { cycle, .. } => locks.push((cycle.as_u64(), 1)),
            ProbeEvent::DividerWait { start, cycles, .. } => {
                waits.push((start.as_u64(), cycles.min(u32::MAX as u64) as u32))
            }
            _ => {}
        }
    }
    locks.sort_unstable_by_key(|&(t, _)| t);
    waits.sort_unstable_by_key(|&(t, _)| t);
    let mut lock_train = cc_hunter::detector::EventTrain::new();
    lock_train.extend(locks);
    let mut wait_train = cc_hunter::detector::EventTrain::new();
    wait_train.extend(waits);
    (lock_train, wait_train)
}

fn machine() -> Machine {
    Machine::new(
        MachineConfig::builder()
            .quantum_cycles(paper::QUANTUM)
            .build()
            .expect("paper config is valid"),
    )
}

fn quanta_for(total_cycles: u64, tail: usize) -> usize {
    (total_cycles.div_ceil(paper::QUANTUM)) as usize + tail
}

/// Noise op-coarsening for very long runs: keeps interference realistic
/// while bounding host time.
fn noise_scale(total_cycles: u64) -> u64 {
    match total_cycles {
        0..=2_000_000_000 => 1,
        2_000_000_001..=20_000_000_000 => 4,
        _ => 16,
    }
}

/// Runs the memory-bus channel at `bandwidth_bps`, auditing the bus with
/// the paper's Δt.
pub fn run_bus(message: Message, bandwidth_bps: f64, opts: &RunOptions) -> ChannelArtifacts {
    let clock = BitClock::for_bandwidth(opts.epoch, bandwidth_bps, paper::CLOCK_HZ)
        .expect("experiment bandwidths are positive");
    let bit_cycles = clock.bit_cycles();
    let total = opts.epoch + bit_cycles * message.len() as u64;
    let mut m = machine();
    let config = BusChannelConfig::new(message.clone(), clock);
    let log = SpyLog::new_handle();
    m.spawn(
        Box::new(BusTrojan::new(config.clone(), 0x1000_0000)),
        m.config().context_id(0, 0),
    );
    m.spawn(
        Box::new(BusSpy::new(config, 0x4000_0000, log.clone())),
        m.config().context_id(1, 0),
    );
    spawn_scaled_noise(
        &mut m,
        0,
        opts.noise_processes,
        opts.noise_seed,
        noise_scale(total),
    );
    let mut session = AuditSession::new();
    session.audit_bus(paper::BUS_DELTA_T).expect("bus audit");
    session.attach(&mut m);
    let trace = if opts.collect_events {
        Some(m.attach_trace())
    } else {
        None
    };
    let quanta = quanta_for(total, opts.tail_quanta);
    let data = QuantumRunner::new(paper::QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, quanta)
        .expect("audit harvest");
    let (bus_lock_train, divider_wait_train) = match &trace {
        Some(t) => {
            let (locks, waits) = extract_trains(t.borrow().events());
            (Some(locks), Some(waits))
        }
        None => (None, None),
    };
    ChannelArtifacts {
        data,
        log,
        message,
        bit_cycles,
        quanta,
        bus_lock_train,
        divider_wait_train,
    }
}

/// Runs the integer-divider channel at `bandwidth_bps`, auditing core 0's
/// divider bank.
pub fn run_divider(message: Message, bandwidth_bps: f64, opts: &RunOptions) -> ChannelArtifacts {
    let clock = BitClock::for_bandwidth(opts.epoch, bandwidth_bps, paper::CLOCK_HZ)
        .expect("experiment bandwidths are positive");
    let bit_cycles = clock.bit_cycles();
    let total = opts.epoch + bit_cycles * message.len() as u64;
    let mut m = machine();
    let config = DividerChannelConfig::new(message.clone(), clock);
    let log = SpyLog::new_handle();
    m.spawn(
        Box::new(DividerTrojan::new(config.clone())),
        m.config().context_id(0, 0),
    );
    m.spawn(
        Box::new(DividerSpy::new(config, log.clone())),
        m.config().context_id(0, 1),
    );
    spawn_scaled_noise(
        &mut m,
        0,
        opts.noise_processes,
        opts.noise_seed,
        noise_scale(total),
    );
    let mut session = AuditSession::new();
    session
        .audit_divider(0, paper::DIV_DELTA_T)
        .expect("divider audit");
    session.attach(&mut m);
    let trace = if opts.collect_events {
        Some(m.attach_trace())
    } else {
        None
    };
    let quanta = quanta_for(total, opts.tail_quanta);
    let data = QuantumRunner::new(paper::QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, quanta)
        .expect("audit harvest");
    let (bus_lock_train, divider_wait_train) = match &trace {
        Some(t) => {
            let (locks, waits) = extract_trains(t.borrow().events());
            (Some(locks), Some(waits))
        }
        None => (None, None),
    };
    ChannelArtifacts {
        data,
        log,
        message,
        bit_cycles,
        quanta,
        bus_lock_train,
        divider_wait_train,
    }
}

/// Runs the shared-L2 cache channel at `bandwidth_bps` with `total_sets`
/// signaling sets, auditing core 0's cache.
///
/// Long bit intervals automatically enable within-bit re-modulation, the
/// way real low-bandwidth cache channels keep their conflict rate up.
pub fn run_cache(
    message: Message,
    bandwidth_bps: f64,
    total_sets: u32,
    tracker: TrackerKind,
    opts: &RunOptions,
) -> ChannelArtifacts {
    let clock = BitClock::for_bandwidth(opts.epoch, bandwidth_bps, paper::CLOCK_HZ)
        .expect("experiment bandwidths are positive");
    let bit_cycles = clock.bit_cycles();
    let total = opts.epoch + bit_cycles * message.len() as u64;
    let mut m = machine();
    let mut config = CacheChannelConfig::new(message.clone(), clock, total_sets);
    if bit_cycles > 20_000_000 {
        // Re-modulate every ~10 ms of the bit.
        config = config.with_resweep(25_000_000);
    }
    let log = SpyLog::new_handle();
    m.spawn(
        Box::new(CacheTrojan::new(config.clone())),
        m.config().context_id(0, 0),
    );
    m.spawn(
        Box::new(CacheSpy::new(config, log.clone())),
        m.config().context_id(0, 1),
    );
    spawn_scaled_noise(
        &mut m,
        0,
        opts.noise_processes,
        opts.noise_seed,
        noise_scale(total),
    );
    let mut session = AuditSession::new();
    let blocks = m.config().l2.total_blocks() as usize;
    session
        .audit_cache(0, blocks, tracker)
        .expect("cache audit");
    session.attach(&mut m);
    let trace = if opts.collect_events {
        Some(m.attach_trace())
    } else {
        None
    };
    let quanta = quanta_for(total, opts.tail_quanta);
    let data = QuantumRunner::new(paper::QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, quanta)
        .expect("audit harvest");
    let (bus_lock_train, divider_wait_train) = match &trace {
        Some(t) => {
            let (locks, waits) = extract_trains(t.borrow().events());
            (Some(locks), Some(waits))
        }
        None => (None, None),
    };
    ChannelArtifacts {
        data,
        log,
        message,
        bit_cycles,
        quanta,
        bus_lock_train,
        divider_wait_train,
    }
}

/// Artifacts from one benign (no-channel) pair run under all three audits —
/// the negative class of the detection-quality sweeps.
#[derive(Debug)]
pub struct BenignArtifacts {
    /// Raw bus-lock event train.
    pub bus_lock_train: cc_hunter::detector::EventTrain,
    /// Raw divider-wait event train (weighted by stalled cycles).
    pub divider_wait_train: cc_hunter::detector::EventTrain,
    /// Conflict-miss records from the cache audit.
    pub conflicts: Vec<cc_hunter::detector::auditor::ConflictRecord>,
    /// First cycle of the run.
    pub start: u64,
    /// First cycle after the run.
    pub end: u64,
}

/// Runs the Figure 14 benign pair `label` plus standard noise for `quanta`
/// OS quanta under every audit: bus + divider in one machine (with the
/// probe trace attached for the raw event trains), cache in a second, the
/// auditor's two-unit limit split exactly as in the false-alarm study.
pub fn run_benign_pair(label: &str, quanta: usize, noise_seed: u64) -> BenignArtifacts {
    use cc_hunter::workloads::figure14_pairs;
    use cc_hunter::workloads::noise::spawn_standard_noise;

    let fresh_pair = || {
        let (_, a, b) = figure14_pairs()
            .into_iter()
            .find(|(l, _, _)| *l == label)
            .unwrap_or_else(|| panic!("unknown benign pair {label:?}"));
        (a, b)
    };

    // Run 1: bus + divider audits, trace attached.
    let (a, b) = fresh_pair();
    let mut m = machine();
    m.spawn(a, m.config().context_id(0, 0));
    m.spawn(b, m.config().context_id(0, 1));
    spawn_standard_noise(&mut m, 0, 3, noise_seed);
    let mut session = AuditSession::new();
    session.audit_bus(paper::BUS_DELTA_T).expect("bus audit");
    session
        .audit_divider(0, paper::DIV_DELTA_T)
        .expect("divider audit");
    session.attach(&mut m);
    let trace = m.attach_trace();
    let data = QuantumRunner::new(paper::QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, quanta)
        .expect("audit harvest");
    let (bus_lock_train, divider_wait_train) = extract_trains(trace.borrow().events());

    // Run 2: cache audit.
    let (a, b) = fresh_pair();
    let mut m = machine();
    m.spawn(a, m.config().context_id(0, 0));
    m.spawn(b, m.config().context_id(0, 1));
    spawn_standard_noise(&mut m, 0, 3, noise_seed);
    let mut session = AuditSession::new();
    let blocks = m.config().l2.total_blocks() as usize;
    session
        .audit_cache(0, blocks, TrackerKind::Practical)
        .expect("cache audit");
    session.attach(&mut m);
    let cache_data = QuantumRunner::new(paper::QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, quanta)
        .expect("audit harvest");

    BenignArtifacts {
        bus_lock_train,
        divider_wait_train,
        conflicts: cache_data.conflicts,
        start: data.start,
        end: data.end.min(cache_data.end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quanta_cover_the_message() {
        assert_eq!(quanta_for(paper::QUANTUM * 3, 0), 3);
        assert_eq!(quanta_for(paper::QUANTUM * 3 + 1, 1), 5);
    }

    #[test]
    fn noise_scale_grows_with_run_length() {
        assert_eq!(noise_scale(1_000_000_000), 1);
        assert_eq!(noise_scale(10_000_000_000), 4);
        assert_eq!(noise_scale(100_000_000_000), 16);
    }
}
