//! Detection-quality sweeps: channel × bandwidth × noise × indicator grids
//! scored into ROC curves, AUC, detection latency, and false-positive rate.
//!
//! The sweep runs each covert channel (bus, divider, cache) through the sim
//! at one or more bandwidths, slices the audited event trains and
//! conflict-miss records into fixed scoring windows, and scores them with
//! every registered [`cchunter_detector::indicator::Indicator`]. The
//! negative class comes from the Figure 14 benign pairs under the same
//! audits and the same slicing. The noise axis replays the PR 1
//! [`cchunter_detector::fault::FaultInjector`] degradations
//! (dropped/truncated harvests, conflict corruption, clock jitter) over the
//! *same* sim artifacts, so adding a noise level costs no extra simulation.
//!
//! Everything is seeded: two runs with the same seed (default 42, override
//! `CCHUNTER_QUALITY_SEED`) emit byte-identical `QUALITY_detector.json`
//! artifacts. `CCHUNTER_QUALITY_QUICK=1` shrinks the grid to the CI-sized
//! quick sweep — the shape the committed baseline records.
//!
//! The `--check` gate (see [`compare`]) mirrors the bench gate's contract:
//! per-cell AUC floor and FP-rate ceiling against the committed baseline, a
//! baseline cell missing from the fresh sweep fails (a silently dropped
//! cell would blind the gate), and a fresh-only cell is informational.

use crate::harness::{
    paper, run_benign_pair, run_bus, run_cache, run_divider, BenignArtifacts, ChannelArtifacts,
    RunOptions,
};
use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::Message;
use cc_hunter::detector::auditor::ConflictRecord;
use cc_hunter::detector::pipeline::symbol_series;
use cc_hunter::detector::{
    indicator_by_name, DensityHistogram, EventTrain, FaultClass, FaultConfig, FaultInjector,
    WindowObservation,
};
use cchunter_bench::check::Json;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Online score at which the monitor alarms: detection latency counts
/// windows until the running score first reaches this, and the FP rate
/// counts benign windows spent at or above it.
pub const DECISION_THRESHOLD: f64 = 0.5;

/// Gate: a cell fails when its fresh AUC drops more than this below the
/// committed baseline.
pub const AUC_SLACK: f64 = 0.03;

/// Gate: a cell fails when its fresh FP rate exceeds
/// `max(baseline + FP_SLACK, FP_FLOOR)`.
pub const FP_SLACK: f64 = 0.05;

/// Gate: FP rates at or below this floor always pass (a 0.00 baseline must
/// not make a single noisy benign window a hard failure).
pub const FP_FLOOR: f64 = 0.05;

/// Whether the CI-sized quick sweep was requested via
/// `CCHUNTER_QUALITY_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("CCHUNTER_QUALITY_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The sweep seed (`CCHUNTER_QUALITY_SEED`, default 42).
pub fn sweep_seed() -> u64 {
    std::env::var("CCHUNTER_QUALITY_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The three channel families under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Memory-bus lock channel.
    Bus,
    /// Integer-divider contention channel.
    Divider,
    /// Shared-L2 conflict-miss channel.
    Cache,
}

impl Channel {
    /// Every channel family, sweep order.
    pub const ALL: [Channel; 3] = [Channel::Bus, Channel::Divider, Channel::Cache];

    /// Stable cell-key label.
    pub fn label(self) -> &'static str {
        match self {
            Channel::Bus => "bus",
            Channel::Divider => "divider",
            Channel::Cache => "cache",
        }
    }
}

/// The noise (fault-injection) axis of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseLevel {
    /// Clean harvests: no injected degradation.
    Off,
    /// Every fault class at 40% of its hostile-deployment rate.
    Mild,
    /// The full hostile-deployment profile ([`FaultConfig::default`]).
    Hostile,
}

impl NoiseLevel {
    /// Stable cell-key label.
    pub fn label(self) -> &'static str {
        match self {
            NoiseLevel::Off => "noise-off",
            NoiseLevel::Mild => "noise-mild",
            NoiseLevel::Hostile => "noise-hostile",
        }
    }

    /// The injector profile for this level, or `None` for clean harvests.
    pub fn fault_config(self) -> Option<FaultConfig> {
        match self {
            NoiseLevel::Off => None,
            NoiseLevel::Mild => {
                let hostile = FaultConfig::default();
                let mut mild = FaultConfig::none();
                for class in FaultClass::ALL {
                    mild.set_rate(class, hostile.rate(class) * 0.4);
                }
                Some(mild)
            }
            NoiseLevel::Hostile => Some(FaultConfig::default()),
        }
    }
}

/// The full sweep grid.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Quick (CI-sized) grid?
    pub quick: bool,
    /// Master seed: message bits, injector streams.
    pub seed: u64,
    /// Transmitted message length in bits.
    pub message_bits: usize,
    /// Scoring-window span in bit periods.
    pub window_bits: u64,
    /// Rate-trace resolution: sub-slots per bit period.
    pub subslots_per_bit: u64,
    /// Channel bandwidths to sweep, in bits/s.
    pub bandwidths_bps: Vec<f64>,
    /// Noise levels to sweep.
    pub noise_levels: Vec<NoiseLevel>,
    /// Indicator names to score (must resolve via [`indicator_by_name`]).
    pub indicators: Vec<&'static str>,
    /// Figure 14 benign pairs supplying the negative class.
    pub benign_pairs: Vec<&'static str>,
    /// OS quanta to run each benign pair for.
    pub benign_quanta: usize,
}

impl SweepConfig {
    /// The grid for the current environment: quick honors
    /// `CCHUNTER_QUALITY_QUICK`, the seed `CCHUNTER_QUALITY_SEED`.
    ///
    /// Both shapes satisfy the scoreboard floor (3 indicators × 3 channels
    /// × ≥2 noise levels); the full grid adds a second bandwidth, the mild
    /// noise level, and a second benign pair.
    pub fn from_env() -> Self {
        let quick = quick_mode();
        let seed = sweep_seed();
        if quick {
            SweepConfig {
                quick,
                seed,
                message_bits: 96,
                window_bits: 4,
                subslots_per_bit: 16,
                bandwidths_bps: vec![2000.0],
                noise_levels: vec![NoiseLevel::Off, NoiseLevel::Hostile],
                indicators: vec!["cchunter", "cusum", "spectral"],
                benign_pairs: vec!["stream_stream"],
                benign_quanta: 1,
            }
        } else {
            SweepConfig {
                quick,
                seed,
                message_bits: 160,
                window_bits: 4,
                subslots_per_bit: 16,
                bandwidths_bps: vec![1000.0, 2000.0],
                noise_levels: vec![NoiseLevel::Off, NoiseLevel::Mild, NoiseLevel::Hostile],
                indicators: vec!["cchunter", "cusum", "spectral"],
                benign_pairs: vec!["stream_stream", "mailserver_mailserver"],
                benign_quanta: 2,
            }
        }
    }
}

/// One grid cell's quality metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Area under the ROC curve of per-window scores (Mann–Whitney; ties
    /// credit 0.5). 1.0 = perfect separation, 0.5 = chance.
    pub auc: f64,
    /// Fraction of benign windows the online monitor spends alarming
    /// (running score ≥ [`DECISION_THRESHOLD`]).
    pub fp_rate: f64,
    /// Windows of online scoring until the channel run first alarms;
    /// -1 when it never does.
    pub detection_latency_windows: i64,
    /// Positive (channel) windows scored.
    pub positives: usize,
    /// Negative (benign) windows scored.
    pub negatives: usize,
    /// Downsampled ROC polyline as `(fpr, tpr)` points, (0,0) → (1,1).
    pub roc: Vec<(f64, f64)>,
}

/// A finished sweep: the content of `QUALITY_detector.json`.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Whether the quick grid produced this.
    pub quick: bool,
    /// The master seed.
    pub seed: u64,
    /// Metrics per cell key (`channel/b<bps>/<noise>/<indicator>`).
    pub cells: BTreeMap<String, CellMetrics>,
}

/// FNV-1a of a cell-role key, folded with the master seed — the per-cell
/// injector seed, so every cell's fault stream is independent but fully
/// reproducible.
fn derive_seed(master: u64, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ master
}

/// Bins a train's events into per-sub-slot counts over `[start, end)`.
fn subslot_rates(train: &EventTrain, start: u64, end: u64, subslot_cycles: u64) -> Vec<f64> {
    let n = ((end - start) / subslot_cycles) as usize;
    let mut rates = vec![0.0; n];
    for (t, w) in train.iter() {
        if t >= start && t < end {
            let idx = (((t - start) / subslot_cycles) as usize).min(n.saturating_sub(1));
            rates[idx] += f64::from(w);
        }
    }
    rates
}

/// Bins conflict records into per-sub-slot counts over `[start, end)`.
fn conflict_rates(
    records: &[ConflictRecord],
    start: u64,
    end: u64,
    subslot_cycles: u64,
) -> Vec<f64> {
    let n = ((end - start) / subslot_cycles) as usize;
    let mut rates = vec![0.0; n];
    for r in records {
        if r.cycle >= start && r.cycle < end {
            let idx = (((r.cycle - start) / subslot_cycles) as usize).min(n.saturating_sub(1));
            rates[idx] += 1.0;
        }
    }
    rates
}

/// Slices an event train into scoring-window observations (histogram +
/// rate trace), optionally degraded by `injector`.
fn train_observations(
    train: &EventTrain,
    delta_t: u64,
    start: u64,
    end: u64,
    window_cycles: u64,
    subslot_cycles: u64,
    mut injector: Option<&mut FaultInjector>,
) -> Vec<WindowObservation> {
    let mut out = Vec::new();
    let mut w_start = start;
    while w_start + window_cycles <= end {
        let w_end = w_start + window_cycles;
        let histogram = DensityHistogram::from_train(train, delta_t, w_start, w_end);
        let obs = match injector.as_deref_mut() {
            Some(inj) => {
                let harvest = inj.perturb_harvest(histogram);
                let obs = WindowObservation::from_harvest(&harvest);
                if obs.weight > 0.0 {
                    obs.with_rates(subslot_rates(train, w_start, w_end, subslot_cycles))
                } else {
                    // A dropped quantum loses the raw trace too.
                    obs
                }
            }
            None => WindowObservation::from_histogram(histogram).with_rates(subslot_rates(
                train,
                w_start,
                w_end,
                subslot_cycles,
            )),
        };
        out.push(obs);
        w_start = w_end;
    }
    out
}

/// Slices conflict records into scoring-window observations (symbol series
/// + rate trace), optionally degraded by `injector`.
fn conflict_observations(
    records: &[ConflictRecord],
    start: u64,
    end: u64,
    window_cycles: u64,
    subslot_cycles: u64,
    mut injector: Option<&mut FaultInjector>,
) -> Vec<WindowObservation> {
    let mut out = Vec::new();
    let mut w_start = start;
    while w_start + window_cycles <= end {
        let w_end = w_start + window_cycles;
        let window_records: Vec<ConflictRecord> = records
            .iter()
            .filter(|r| r.cycle >= w_start && r.cycle < w_end)
            .copied()
            .collect();
        let (window_records, weight) = match injector.as_deref_mut() {
            Some(inj) => {
                let (perturbed, lost) = inj.perturb_conflicts(window_records);
                (perturbed, (1.0 - lost).clamp(0.0, 1.0))
            }
            None => (window_records, 1.0),
        };
        let symbols = symbol_series(&window_records, w_start, w_end);
        let rates = conflict_rates(&window_records, w_start, w_end, subslot_cycles);
        out.push(
            WindowObservation::from_symbols(symbols)
                .with_rates(rates)
                .with_weight(weight),
        );
        w_start = w_end;
    }
    out
}

/// Mann–Whitney AUC of positive vs negative scores (ties credit 0.5).
pub fn mann_whitney_auc(positives: &[f64], negatives: &[f64]) -> f64 {
    if positives.is_empty() || negatives.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in positives {
        for &n in negatives {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (positives.len() as f64 * negatives.len() as f64)
}

/// ROC polyline of per-window scores, downsampled to at most `max_points`
/// interior thresholds and anchored at (0,0) and (1,1).
pub fn roc_points(positives: &[f64], negatives: &[f64], max_points: usize) -> Vec<(f64, f64)> {
    let mut thresholds: Vec<f64> = positives.iter().chain(negatives).copied().collect();
    thresholds.sort_by(|a, b| b.total_cmp(a));
    thresholds.dedup();
    let frac_at = |scores: &[f64], t: f64| {
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().filter(|&&s| s >= t).count() as f64 / scores.len() as f64
        }
    };
    let mut curve = vec![(0.0, 0.0)];
    let step = thresholds.len().max(1).div_ceil(max_points);
    for (i, &t) in thresholds.iter().enumerate() {
        if i % step.max(1) == 0 || i + 1 == thresholds.len() {
            curve.push((frac_at(negatives, t), frac_at(positives, t)));
        }
    }
    curve.push((1.0, 1.0));
    curve.dedup();
    curve
}

/// Scores one cell: per-window ROC/AUC plus online FP rate and latency.
fn score_cell(
    indicator: &str,
    positives: &[WindowObservation],
    negative_runs: &[Vec<WindowObservation>],
) -> CellMetrics {
    let mut ind =
        indicator_by_name(indicator).unwrap_or_else(|| panic!("unknown indicator {indicator:?}"));

    // One-shot per-window scores: the ROC sample sets.
    let pos_scores: Vec<f64> = positives
        .iter()
        .map(|w| ind.score_sequence(std::slice::from_ref(w)))
        .collect();
    let neg_scores: Vec<f64> = negative_runs
        .iter()
        .flatten()
        .map(|w| ind.score_sequence(std::slice::from_ref(w)))
        .collect();

    // Online trace over the channel run: detection latency.
    ind.reset();
    let mut latency = -1i64;
    for (i, w) in positives.iter().enumerate() {
        if ind.push(w) >= DECISION_THRESHOLD && latency < 0 {
            latency = (i + 1) as i64;
        }
    }

    // Online trace over each benign run: fraction of windows spent alarming.
    let mut alarming = 0usize;
    let mut total = 0usize;
    for run in negative_runs {
        ind.reset();
        for w in run {
            if ind.push(w) >= DECISION_THRESHOLD {
                alarming += 1;
            }
            total += 1;
        }
    }
    let fp_rate = if total == 0 {
        0.0
    } else {
        alarming as f64 / total as f64
    };

    CellMetrics {
        auc: mann_whitney_auc(&pos_scores, &neg_scores),
        fp_rate,
        detection_latency_windows: latency,
        positives: pos_scores.len(),
        negatives: neg_scores.len(),
        roc: roc_points(&pos_scores, &neg_scores, 16),
    }
}

fn run_channel(channel: Channel, message: Message, bandwidth_bps: f64) -> ChannelArtifacts {
    let opts = RunOptions {
        collect_events: true,
        ..RunOptions::default()
    };
    match channel {
        Channel::Bus => run_bus(message, bandwidth_bps, &opts),
        Channel::Divider => run_divider(message, bandwidth_bps, &opts),
        Channel::Cache => run_cache(message, bandwidth_bps, 64, TrackerKind::Practical, &opts),
    }
}

/// The positive-class observations of one channel run under one noise
/// level.
fn positive_observations(
    channel: Channel,
    arts: &ChannelArtifacts,
    window_cycles: u64,
    subslot_cycles: u64,
    injector: Option<&mut FaultInjector>,
) -> Vec<WindowObservation> {
    // Score from the bit-0 epoch so the idle pre-amble doesn't dilute the
    // first window, and stop at the last bit: the sim rounds the run up to
    // a whole OS quantum, and the idle tail past the message would flood
    // the positive class with windows nobody transmitted in.
    let start = RunOptions::default().epoch;
    let message_end = start + arts.bit_cycles * arts.message.len() as u64;
    let end = arts.data.end.min(message_end);
    match channel {
        Channel::Bus => train_observations(
            arts.bus_lock_train
                .as_ref()
                .expect("collect_events was set"),
            paper::BUS_DELTA_T,
            start,
            end,
            window_cycles,
            subslot_cycles,
            injector,
        ),
        Channel::Divider => train_observations(
            arts.divider_wait_train
                .as_ref()
                .expect("collect_events was set"),
            paper::DIV_DELTA_T,
            start,
            end,
            window_cycles,
            subslot_cycles,
            injector,
        ),
        Channel::Cache => conflict_observations(
            &arts.data.conflicts,
            start,
            end,
            window_cycles,
            subslot_cycles,
            injector,
        ),
    }
}

/// The negative-class observations of one benign run, sliced to the same
/// window shape as the cell's positives.
fn negative_observations(
    channel: Channel,
    benign: &BenignArtifacts,
    window_cycles: u64,
    subslot_cycles: u64,
    injector: Option<&mut FaultInjector>,
) -> Vec<WindowObservation> {
    match channel {
        Channel::Bus => train_observations(
            &benign.bus_lock_train,
            paper::BUS_DELTA_T,
            benign.start,
            benign.end,
            window_cycles,
            subslot_cycles,
            injector,
        ),
        Channel::Divider => train_observations(
            &benign.divider_wait_train,
            paper::DIV_DELTA_T,
            benign.start,
            benign.end,
            window_cycles,
            subslot_cycles,
            injector,
        ),
        Channel::Cache => conflict_observations(
            &benign.conflicts,
            benign.start,
            benign.end,
            window_cycles,
            subslot_cycles,
            injector,
        ),
    }
}

/// Runs the whole grid. Simulation happens once per channel × bandwidth
/// (positives) and once per benign pair (negatives); the noise and
/// indicator axes reuse those artifacts.
pub fn run_sweep(config: &SweepConfig) -> SweepResult {
    let mut msg_rng = SmallRng::seed_from_u64(config.seed ^ 0xC0DE_CAFE);
    let message = Message::random(&mut msg_rng, config.message_bits);

    eprintln!(
        "quality sweep: {} channels × {} bandwidths × {} noise levels × {} indicators ({})",
        Channel::ALL.len(),
        config.bandwidths_bps.len(),
        config.noise_levels.len(),
        config.indicators.len(),
        if config.quick { "quick" } else { "full" },
    );

    let benign: Vec<BenignArtifacts> = config
        .benign_pairs
        .iter()
        .enumerate()
        .map(|(i, label)| {
            eprintln!("  benign pair {label} ({} quanta)...", config.benign_quanta);
            run_benign_pair(label, config.benign_quanta, 4242 + i as u64)
        })
        .collect();

    let mut cells = BTreeMap::new();
    for channel in Channel::ALL {
        for &bw in &config.bandwidths_bps {
            eprintln!("  channel {} at {bw} bps...", channel.label());
            let arts = run_channel(channel, message.clone(), bw);
            let window_cycles = config.window_bits * arts.bit_cycles;
            let subslot_cycles = (arts.bit_cycles / config.subslots_per_bit).max(1);
            for &noise in &config.noise_levels {
                let cell_base = format!("{}/b{}/{}", channel.label(), bw as u64, noise.label());
                let fault = noise.fault_config();
                let positives = {
                    let mut inj = fault.map(|c| {
                        FaultInjector::new(c, derive_seed(config.seed, &format!("{cell_base}/pos")))
                    });
                    positive_observations(
                        channel,
                        &arts,
                        window_cycles,
                        subslot_cycles,
                        inj.as_mut(),
                    )
                };
                let negative_runs: Vec<Vec<WindowObservation>> = benign
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        let mut inj = fault.map(|c| {
                            FaultInjector::new(
                                c,
                                derive_seed(config.seed, &format!("{cell_base}/neg{i}")),
                            )
                        });
                        negative_observations(
                            channel,
                            b,
                            window_cycles,
                            subslot_cycles,
                            inj.as_mut(),
                        )
                    })
                    .collect();
                for name in &config.indicators {
                    let metrics = score_cell(name, &positives, &negative_runs);
                    cells.insert(format!("{cell_base}/{name}"), metrics);
                }
            }
        }
    }
    SweepResult {
        quick: config.quick,
        seed: config.seed,
        cells,
    }
}

// ---------------------------------------------------------------------------
// Artifact serialization / parsing
// ---------------------------------------------------------------------------

impl SweepResult {
    /// Serializes as the diffable `QUALITY_detector.json` document: stable
    /// cell order (BTreeMap), fixed-precision floats.
    pub fn render_json(&self) -> String {
        let mut json = String::from("{\n");
        writeln!(json, "  \"quick\": {},", self.quick).expect("string write");
        writeln!(json, "  \"seed\": {},", self.seed).expect("string write");
        writeln!(json, "  \"decision_threshold\": {DECISION_THRESHOLD},").expect("string write");
        json.push_str("  \"cells\": {\n");
        for (i, (key, m)) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            let roc: Vec<String> = m
                .roc
                .iter()
                .map(|(fpr, tpr)| format!("[{fpr:.6}, {tpr:.6}]"))
                .collect();
            writeln!(
                json,
                "    \"{key}\": {{\"auc\": {:.6}, \"fp_rate\": {:.6}, \
                 \"detection_latency_windows\": {}, \"positives\": {}, \"negatives\": {}, \
                 \"roc\": [{}]}}{comma}",
                m.auc,
                m.fp_rate,
                m.detection_latency_windows,
                m.positives,
                m.negatives,
                roc.join(", ")
            )
            .expect("string write");
        }
        json.push_str("  }\n}\n");
        json
    }

    /// The headline table: best AUC per channel family × indicator at the
    /// clean noise level (first bandwidth), for logs and EXPERIMENTS.md.
    pub fn render_headline(&self) -> String {
        let mut out = String::new();
        let mut indicators: Vec<&str> = Vec::new();
        for key in self.cells.keys() {
            if let Some(ind) = key.rsplit('/').next() {
                if !indicators.contains(&ind) {
                    indicators.push(ind);
                }
            }
        }
        indicators.sort_unstable();
        out.push_str(&format!("{:<10}", "channel"));
        for ind in &indicators {
            out.push_str(&format!(" {:>10}", format!("auc:{ind}")));
        }
        out.push('\n');
        for channel in Channel::ALL {
            out.push_str(&format!("{:<10}", channel.label()));
            for ind in &indicators {
                let best = self
                    .cells
                    .iter()
                    .filter(|(k, _)| {
                        k.starts_with(&format!("{}/", channel.label()))
                            && k.contains("/noise-off/")
                            && k.ends_with(&format!("/{ind}"))
                    })
                    .map(|(_, m)| m.auc)
                    .fold(f64::NAN, f64::max);
                if best.is_nan() {
                    out.push_str(&format!(" {:>10}", "-"));
                } else {
                    out.push_str(&format!(" {best:>10.3}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Extracts `(auc, fp_rate)` per cell from a parsed `QUALITY_detector.json`.
///
/// # Errors
///
/// Returns a description when the `cells` object is missing or malformed.
pub fn parse_cells(doc: &Json) -> Result<BTreeMap<String, (f64, f64)>, String> {
    let cells = doc.get("cells").ok_or("no cells object")?;
    match cells {
        Json::Obj(entries) => entries
            .iter()
            .map(|(key, v)| {
                let auc = v
                    .get("auc")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cell {key:?} has no numeric auc"))?;
                let fp = v
                    .get("fp_rate")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cell {key:?} has no numeric fp_rate"))?;
                Ok((key.clone(), (auc, fp)))
            })
            .collect(),
        _ => Err("cells is not an object".to_string()),
    }
}

// ---------------------------------------------------------------------------
// The quality gate
// ---------------------------------------------------------------------------

/// One cell's standing in the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Within the AUC floor and FP ceiling.
    Ok,
    /// AUC dropped more than [`AUC_SLACK`] below baseline: gate fails.
    AucRegressed,
    /// FP rate rose past the ceiling: gate fails.
    FpRegressed,
    /// In the baseline but absent from the fresh sweep: gate fails.
    MissingFresh,
    /// In the fresh sweep but not the baseline (new cell): informational,
    /// passes — the same semantics as the bench gate's new suites.
    New,
}

impl CellStatus {
    /// Whether this status fails the gate.
    pub fn fails(self) -> bool {
        matches!(
            self,
            CellStatus::AucRegressed | CellStatus::FpRegressed | CellStatus::MissingFresh
        )
    }

    fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::AucRegressed => "AUC REGRESSED",
            CellStatus::FpRegressed => "FP REGRESSED",
            CellStatus::MissingFresh => "MISSING",
            CellStatus::New => "new (informational)",
        }
    }
}

/// One row of the quality-gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellComparison {
    /// Cell key.
    pub name: String,
    /// Baseline `(auc, fp_rate)`, if the cell is in the baseline.
    pub baseline: Option<(f64, f64)>,
    /// Fresh `(auc, fp_rate)`, if the cell was just swept.
    pub fresh: Option<(f64, f64)>,
    /// The verdict for this cell.
    pub status: CellStatus,
}

/// The whole quality gate's result.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Per-cell rows, baseline order first, then new cells.
    pub cells: Vec<CellComparison>,
}

impl QualityReport {
    /// Whether any cell fails the gate.
    pub fn failed(&self) -> bool {
        self.cells.iter().any(|c| c.status.fails())
    }

    /// Renders the per-cell report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>9} {:>9} {:>8} {:>8}  status\n",
            "cell", "base auc", "auc", "base fp", "fp"
        ));
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        };
        for c in &self.cells {
            out.push_str(&format!(
                "{:<44} {:>9} {:>9} {:>8} {:>8}  {}\n",
                c.name,
                fmt(c.baseline.map(|b| b.0)),
                fmt(c.fresh.map(|f| f.0)),
                fmt(c.baseline.map(|b| b.1)),
                fmt(c.fresh.map(|f| f.1)),
                c.status.as_str(),
            ));
        }
        let new = self
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::New)
            .count();
        let verdict = if self.failed() {
            format!(
                "FAIL: a cell lost more than {AUC_SLACK:.2} AUC, exceeded its FP ceiling, \
                 or went missing"
            )
        } else if new > 0 {
            format!(
                "ok: all baseline cells within AUC {AUC_SLACK:.2} / FP +{FP_SLACK:.2}; \
                 {new} new cell(s) skipped (informational)"
            )
        } else {
            format!("ok: all cells within AUC {AUC_SLACK:.2} / FP +{FP_SLACK:.2}")
        };
        out.push_str(&verdict);
        out.push('\n');
        out
    }
}

/// Compares a fresh sweep against the committed baseline.
///
/// A baseline cell missing from the fresh sweep fails (a silently dropped
/// cell would blind the gate); a fresh-only cell is reported as
/// `new (informational)` and passes — exactly the bench gate's
/// new-vs-missing distinction.
pub fn compare(
    baseline: &BTreeMap<String, (f64, f64)>,
    fresh: &BTreeMap<String, CellMetrics>,
) -> QualityReport {
    let mut cells = Vec::new();
    for (name, &(base_auc, base_fp)) in baseline {
        match fresh.get(name) {
            Some(m) => {
                let status = if m.auc < base_auc - AUC_SLACK {
                    CellStatus::AucRegressed
                } else if m.fp_rate > (base_fp + FP_SLACK).max(FP_FLOOR) {
                    CellStatus::FpRegressed
                } else {
                    CellStatus::Ok
                };
                cells.push(CellComparison {
                    name: name.clone(),
                    baseline: Some((base_auc, base_fp)),
                    fresh: Some((m.auc, m.fp_rate)),
                    status,
                });
            }
            None => cells.push(CellComparison {
                name: name.clone(),
                baseline: Some((base_auc, base_fp)),
                fresh: None,
                status: CellStatus::MissingFresh,
            }),
        }
    }
    for (name, m) in fresh {
        if !baseline.contains_key(name) {
            cells.push(CellComparison {
                name: name.clone(),
                baseline: None,
                fresh: Some((m.auc, m.fp_rate)),
                status: CellStatus::New,
            });
        }
    }
    QualityReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_of_perfect_separation_is_one() {
        let pos = [0.9, 0.8, 0.95];
        let neg = [0.1, 0.2, 0.05, 0.3];
        assert_eq!(mann_whitney_auc(&pos, &neg), 1.0);
        assert_eq!(mann_whitney_auc(&neg, &pos), 0.0);
    }

    #[test]
    fn auc_of_identical_distributions_is_half() {
        let scores = [0.3, 0.5, 0.7];
        assert_eq!(mann_whitney_auc(&scores, &scores), 0.5);
        assert_eq!(mann_whitney_auc(&[], &scores), 0.5);
    }

    #[test]
    fn roc_is_monotone_and_anchored() {
        let pos = [0.9, 0.7, 0.6, 0.55];
        let neg = [0.1, 0.4, 0.65, 0.2];
        let roc = roc_points(&pos, &neg, 16);
        assert_eq!(*roc.first().unwrap(), (0.0, 0.0));
        assert_eq!(*roc.last().unwrap(), (1.0, 1.0));
        for pair in roc.windows(2) {
            assert!(pair[1].0 >= pair[0].0, "fpr must be nondecreasing");
            assert!(pair[1].1 >= pair[0].1, "tpr must be nondecreasing");
        }
    }

    fn metrics(auc: f64, fp: f64) -> CellMetrics {
        CellMetrics {
            auc,
            fp_rate: fp,
            detection_latency_windows: 1,
            positives: 10,
            negatives: 10,
            roc: vec![(0.0, 0.0), (1.0, 1.0)],
        }
    }

    #[test]
    fn gate_distinguishes_new_from_missing() {
        let mut baseline = BTreeMap::new();
        baseline.insert("bus/b2000/noise-off/cchunter".to_string(), (0.95, 0.0));
        baseline.insert("gone/cell".to_string(), (0.9, 0.0));
        let mut fresh = BTreeMap::new();
        fresh.insert(
            "bus/b2000/noise-off/cchunter".to_string(),
            metrics(0.94, 0.02),
        );
        fresh.insert("brand/new/cell".to_string(), metrics(0.5, 0.5));
        let report = compare(&baseline, &fresh);
        let by_name = |n: &str| {
            report
                .cells
                .iter()
                .find(|c| c.name == n)
                .expect("row exists")
                .status
        };
        assert_eq!(by_name("bus/b2000/noise-off/cchunter"), CellStatus::Ok);
        assert_eq!(by_name("gone/cell"), CellStatus::MissingFresh);
        assert_eq!(by_name("brand/new/cell"), CellStatus::New);
        assert!(report.failed(), "a missing baseline cell must fail");
        assert!(!CellStatus::New.fails(), "a new cell must not fail");
        assert!(report.render().contains("new (informational)"));
    }

    #[test]
    fn gate_fails_on_auc_and_fp_regressions() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), (0.95, 0.0));
        baseline.insert("b".to_string(), (0.9, 0.1));
        let mut fresh = BTreeMap::new();
        fresh.insert("a".to_string(), metrics(0.95 - AUC_SLACK - 0.01, 0.0));
        fresh.insert("b".to_string(), metrics(0.9, 0.1 + FP_SLACK + 0.01));
        let report = compare(&baseline, &fresh);
        assert_eq!(report.cells[0].status, CellStatus::AucRegressed);
        assert_eq!(report.cells[1].status, CellStatus::FpRegressed);
        assert!(report.failed());
    }

    #[test]
    fn gate_fp_floor_forgives_tiny_rates() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), (0.95, 0.0));
        let mut fresh = BTreeMap::new();
        fresh.insert("a".to_string(), metrics(0.96, FP_FLOOR - 0.01));
        assert!(!compare(&baseline, &fresh).failed());
    }

    #[test]
    fn artifact_round_trips_through_the_gate_parser() {
        let mut cells = BTreeMap::new();
        cells.insert(
            "bus/b2000/noise-off/cchunter".to_string(),
            metrics(0.9375, 0.0625),
        );
        let result = SweepResult {
            quick: true,
            seed: 42,
            cells,
        };
        let json = result.render_json();
        let doc = cchunter_bench::check::parse_json(&json).expect("valid JSON");
        let parsed = parse_cells(&doc).expect("cells parse");
        let (auc, fp) = parsed["bus/b2000/noise-off/cchunter"];
        assert!((auc - 0.9375).abs() < 1e-9);
        assert!((fp - 0.0625).abs() < 1e-9);
        assert_eq!(
            doc.get("quick").and_then(Json::as_f64),
            None,
            "quick is a bool, not a number"
        );
    }

    #[test]
    fn derive_seed_is_stable_and_key_sensitive() {
        let a = derive_seed(42, "bus/b2000/noise-off/pos");
        let b = derive_seed(42, "bus/b2000/noise-off/pos");
        let c = derive_seed(42, "bus/b2000/noise-off/neg0");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
