//! # cchunter-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! CC-Hunter paper. One binary per artifact (`fig02_bus_latency`,
//! `fig06_density_histograms`, …, `table1_cost`), plus `all` to run the
//! whole evaluation; each prints the paper's rows/series and writes CSV
//! under `results/`.
//!
//! Absolute numbers come from the bundled simulator rather than the
//! authors' Xeon testbed, so magnitudes differ; the *shape* of every
//! artifact (who bursts where, which likelihood ratios clear 0.9, where
//! autocorrelation peaks fall) is the reproduction target. See
//! `EXPERIMENTS.md` at the workspace root for the paper-vs-measured record.
//!
//! Set `CCH_FAST=1` to shrink message counts and window counts for a quick
//! smoke pass.

pub mod figs;
pub mod harness;
pub mod output;
pub mod quality;

pub use harness::{
    paper, run_benign_pair, run_bus, run_cache, run_divider, BenignArtifacts, ChannelArtifacts,
    RunOptions,
};
pub use output::{write_csv, Table};
pub use quality::{
    compare, parse_cells, run_sweep, CellMetrics, CellStatus, Channel, NoiseLevel, QualityReport,
    SweepConfig, SweepResult,
};
