//! Result output: CSV files under `results/` plus compact console tables.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Directory experiment CSVs are written to (workspace `results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CCH_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Writes `rows` as `results/<name>.csv` with the given header. Returns
/// the path written.
///
/// # Panics
///
/// Panics on I/O errors — experiments should fail loudly.
pub fn write_csv<R, C>(name: &str, header: &[&str], rows: R) -> PathBuf
where
    R: IntoIterator<Item = Vec<C>>,
    C: Display,
{
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut file = fs::File::create(&path).expect("create csv");
    writeln!(file, "{}", header.join(",")).expect("write header");
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        writeln!(file, "{}", cells.join(",")).expect("write row");
    }
    path
}

/// A minimal fixed-width console table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<C: Display>(&mut self, cells: Vec<C>) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            println!("  {}", padded.join("  "));
        };
        line(&self.header);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Renders the nonzero bins of a density histogram as `bin:freq` pairs.
pub fn sparse_bins(histogram: &cc_hunter::detector::DensityHistogram) -> String {
    let cells: Vec<String> = histogram
        .bins()
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(bin, &f)| format!("{bin}:{f}"))
        .collect();
    cells.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        std::env::set_var("CCH_RESULTS_DIR", "/tmp/cch_test_results");
        let path = write_csv(
            "unit_test",
            &["a", "b"],
            vec![vec![1.to_string(), "x".to_string()]],
        );
        let text = fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,x\n");
        std::env::remove_var("CCH_RESULTS_DIR");
    }

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["col", "longer column"]);
        t.row(vec!["1", "2"]);
        t.print();
    }
}
