//! Closed-loop mitigation drill: convict a live simulated bus channel,
//! contain it through the escalation ladder (with an injected enforcement
//! refusal), re-measure the residual leak and the benign overhead, survive
//! a kill-and-restore of the audit service, and step back down once the
//! leak closes.
//!
//! The headline artifact is `mitigation_drill.json`: detection-to-
//! containment latency versus bits leaked, swept over the conviction
//! threshold, plus the residual-bandwidth drop the applied rung achieved.
//!
//! ```sh
//! cargo run --release --example mitigation_drill
//! CCHUNTER_MITIGATION_QUICK=1 cargo run --release --example mitigation_drill
//! ```

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{
    BitClock, BusChannelConfig, BusSpy, BusTrojan, DecodeRule, Message, SpyLog, SpyLogHandle,
};
use cc_hunter::detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cc_hunter::detector::mitigation::{
    goodput_fraction, ApplyError, ContainmentState, MitigationConfig, MitigationEnforcer,
    MitigationLevel, ResidualProbe,
};
use cc_hunter::detector::online::Harvest;
use cc_hunter::detector::policy::QuarantineConfig;
use cc_hunter::detector::store::CheckpointStore;
use cc_hunter::detector::supervisor::{
    PairInput, ProbeFault, ProbeSource, Supervisor, SupervisorConfig,
};
use cc_hunter::detector::{CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{ContextId, FnProgram, Machine, MachineConfig, Op};
use cc_hunter::{FaultClass, FaultConfig, FaultInjector};

const QUANTUM: u64 = 2_500_000;
const BIT_CYCLES: u64 = 250_000;
/// The paper's evaluation platform runs at 2.5 GHz.
const CLOCK_HZ: f64 = 2.5e9;
const NOMINAL_BPS: f64 = CLOCK_HZ / BIT_CYCLES as f64;
/// Long enough that no drill phase runs the trojan out of message.
const MESSAGE_BITS: usize = 800;
const MAX_CONTAIN_TICKS: u64 = 40;

fn quick_mode() -> bool {
    std::env::var("CCHUNTER_MITIGATION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One simulated machine carrying the bus covert channel (trojan on core 0,
/// spy on core 1) and a benign streaming co-runner on core 2 whose issue
/// rate measures mitigation collateral.
struct DrillRig {
    machine: Rc<RefCell<Machine>>,
    session: AuditSession,
    runner: QuantumRunner,
    injector: FaultInjector,
    log: SpyLogHandle,
    sent: Message,
    benign_ops: Rc<Cell<u64>>,
    trojan_ctx: ContextId,
    spy_ctx: ContextId,
    quanta: u64,
    last_clean: Option<DensityHistogram>,
}

impl DrillRig {
    fn new(fault_seed: u64) -> Self {
        let config = MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .expect("valid machine config");
        let mut machine = Machine::new(config);
        let trojan_ctx = machine.config().context_id(0, 0);
        let spy_ctx = machine.config().context_id(1, 0);
        let benign_ctx = machine.config().context_id(2, 0);

        let sent = Message::alternating(MESSAGE_BITS);
        let clock = BitClock::new(0, BIT_CYCLES);
        let channel = BusChannelConfig::new(sent.clone(), clock);
        let log: SpyLogHandle = SpyLog::new_handle();
        machine.spawn(
            Box::new(BusTrojan::new(channel.clone(), 0x1000_0000)),
            trojan_ctx,
        );
        machine.spawn(
            Box::new(BusSpy::new(channel, 0x4000_0000, log.clone())),
            spy_ctx,
        );

        // Benign co-runner: a streaming reader whose issued-op count is the
        // drill's collateral-damage meter.
        let benign_ops = Rc::new(Cell::new(0u64));
        let counter = benign_ops.clone();
        let mut cursor = 0u64;
        machine.spawn(
            Box::new(FnProgram::new("benign-stream", move |_v| {
                counter.set(counter.get() + 1);
                cursor = cursor.wrapping_add(1);
                if cursor.is_multiple_of(4) {
                    Op::Compute { cycles: 400 }
                } else {
                    Op::Load {
                        addr: 0x7000_0000 + (cursor % 65_536) * 64,
                    }
                }
            })),
            benign_ctx,
        );

        let mut session = AuditSession::new();
        session.audit_bus(100_000).expect("bus audit");
        session.attach(&mut machine);

        DrillRig {
            machine: Rc::new(RefCell::new(machine)),
            session,
            runner: QuantumRunner::new(QUANTUM).expect("nonzero quantum"),
            injector: FaultInjector::new(
                FaultConfig::only(FaultClass::DroppedQuantum)
                    .with_rate(FaultClass::DroppedQuantum, 0.10),
                fault_seed,
            ),
            log,
            sent,
            benign_ops,
            trojan_ctx,
            spy_ctx,
            quanta: 0,
            last_clean: None,
        }
    }

    /// Probe-source body for the supervisor: advance one quantum and hand
    /// back the bus harvest, with the re-read retry path of
    /// `supervised_audit`.
    fn probe(&mut self, attempt: u32) -> PairInput {
        if attempt > 0 {
            if let Some(h) = self.last_clean.take() {
                return PairInput::Harvest(Harvest::Complete(h));
            }
            return PairInput::Missed;
        }
        self.quanta += 1;
        let quantum = self
            .runner
            .run_quantum_with_injector(
                &mut self.machine.borrow_mut(),
                &mut self.session,
                &mut self.injector,
            )
            .expect("audit harvest");
        match quantum.bus.expect("bus is audited") {
            Harvest::Missed => {
                self.last_clean = self.session.harvest_bus_histogram(quantum.boundary).ok();
                PairInput::Missed
            }
            harvest => PairInput::Harvest(harvest),
        }
    }

    /// Message bits whose transmission window has fully elapsed.
    fn bits_transmitted(&self) -> usize {
        ((self.quanta * QUANTUM / BIT_CYCLES) as usize).min(MESSAGE_BITS)
    }

    /// Correct-bit count and goodput fraction over decoded bits
    /// `[lo, hi)`, judged against the sent message.
    fn goodput_between(&self, lo: usize, hi: usize) -> (usize, f64) {
        let decoded = self.log.borrow().decode(DecodeRule::Midpoint, MESSAGE_BITS);
        let correct = (lo..hi)
            .filter(|&i| decoded.bit(i) == self.sent.bit(i))
            .count();
        (correct, goodput_fraction(correct, hi - lo))
    }
}

/// Adapter presenting one rig as the supervisor's probe source for pair 0.
struct RigSource<'a>(&'a mut DrillRig);

impl ProbeSource for RigSource<'_> {
    fn probe(&mut self, _pair: usize, _tick: u64, attempt: u32) -> Result<PairInput, ProbeFault> {
        Ok(self.0.probe(attempt))
    }
}

/// The sim-side actuator: maps ladder rungs onto the machine's scheduler
/// and cache-hardware containment controls. Refusals in `refuse` model a
/// wedged firmware interface — the policy must escalate past them, never
/// silently no-op.
struct MachineEnforcer {
    machine: Rc<RefCell<Machine>>,
    trojan_ctx: ContextId,
    spy_ctx: ContextId,
    refuse: Vec<MitigationLevel>,
    refusals_served: u64,
    applied: Vec<MitigationLevel>,
    released: Vec<MitigationLevel>,
}

impl MachineEnforcer {
    fn new(rig: &DrillRig, refuse: Vec<MitigationLevel>) -> Self {
        MachineEnforcer {
            machine: rig.machine.clone(),
            trojan_ctx: rig.trojan_ctx,
            spy_ctx: rig.spy_ctx,
            refuse,
            refusals_served: 0,
            applied: Vec::new(),
            released: Vec::new(),
        }
    }
}

impl MitigationEnforcer for MachineEnforcer {
    fn apply(&mut self, _pair: usize, level: MitigationLevel) -> Result<(), ApplyError> {
        if self.refuse.contains(&level) {
            self.refusals_served += 1;
            return Err(ApplyError {
                reason: format!("injected: firmware rejected {level} control write"),
            });
        }
        let mut m = self.machine.borrow_mut();
        match level {
            MitigationLevel::FlushOnSwitch => m.set_flush_on_switch(true),
            MitigationLevel::TemporalPartition => {
                m.set_temporal_phase(self.trojan_ctx, Some(0));
                m.set_temporal_phase(self.spy_ctx, Some(1));
            }
            MitigationLevel::WayPartition => {
                m.set_l2_way_mask(self.trojan_ctx, 0x0F)
                    .map_err(|reason| ApplyError { reason })?;
                m.set_l2_way_mask(self.spy_ctx, 0xF0)
                    .map_err(|reason| ApplyError { reason })?;
            }
            MitigationLevel::Deschedule => m.park_context(self.trojan_ctx),
        }
        self.applied.push(level);
        Ok(())
    }

    fn release(&mut self, _pair: usize, level: MitigationLevel) -> Result<(), ApplyError> {
        let mut m = self.machine.borrow_mut();
        match level {
            MitigationLevel::FlushOnSwitch => m.set_flush_on_switch(false),
            MitigationLevel::TemporalPartition => {
                m.set_temporal_phase(self.trojan_ctx, None);
                m.set_temporal_phase(self.spy_ctx, None);
            }
            MitigationLevel::WayPartition => {
                m.clear_l2_way_mask(self.trojan_ctx);
                m.clear_l2_way_mask(self.spy_ctx);
            }
            MitigationLevel::Deschedule => m.resume_context(self.trojan_ctx),
        }
        self.released.push(level);
        Ok(())
    }
}

fn rig_fleet_config(convict_streak: u32) -> SupervisorConfig {
    SupervisorConfig {
        hunter: CcHunterConfig {
            quantum_cycles: QUANTUM,
            delta_t: DeltaTPolicy::Fixed(100_000),
            ..CcHunterConfig::default()
        },
        window_quanta: 8,
        deadline_us: 0,
        checkpoint_every: 10,
        quarantine: QuarantineConfig {
            failure_window: 6,
            trip_threshold: 0.9,
            min_observations: 5,
            probe_interval: 4,
            recovery_successes: 2,
            confidence_decay: 0.7,
        },
        mitigation: MitigationConfig {
            convict_streak,
            // Hold whatever rung ends up containing the channel for the
            // whole measurement window; the step-down path is exercised by
            // the synthetic fleet below.
            step_down_streak: 1_000,
            ..MitigationConfig::default()
        },
        ..SupervisorConfig::default()
    }
}

/// Outcome of one conviction run against a fresh rig.
struct ContainRun {
    rig: DrillRig,
    fleet: Supervisor,
    enforcer: MachineEnforcer,
    conviction_tick: u64,
    containment_tick: u64,
    latency_ticks: u64,
    bits_leaked: usize,
    bits_before_containment: usize,
}

/// Drives a fresh rig under a supervisor until containment is in force,
/// returning the latency/leakage point for the headline curve.
fn run_until_contained(
    convict_streak: u32,
    refuse: Vec<MitigationLevel>,
    store: Option<CheckpointStore>,
    fault_seed: u64,
) -> ContainRun {
    let mut rig = DrillRig::new(fault_seed);
    let mut enforcer = MachineEnforcer::new(&rig, refuse);
    let mut fleet = Supervisor::new(rig_fleet_config(convict_streak)).expect("valid fleet config");
    if let Some(store) = store {
        fleet = fleet.with_store(store);
    }
    fleet
        .add_contention_pair("memory-bus: trojan core 0 <-> spy core 1")
        .expect("valid pair");

    let mut conviction_tick = None;
    let (containment_tick, latency_ticks) = loop {
        assert!(
            fleet.tick_count() < MAX_CONTAIN_TICKS,
            "channel must be contained within {MAX_CONTAIN_TICKS} quanta \
             (convict_streak {convict_streak}); containment: {:?}",
            fleet.containment(0)
        );
        let report = fleet.tick_with_enforcer(&mut RigSource(&mut rig), &mut enforcer);
        let containment = fleet.containment(0).expect("pair 0 exists");
        if conviction_tick.is_none() && containment.is_active() {
            conviction_tick = Some(report.tick);
        }
        if matches!(containment, ContainmentState::Contained { .. }) {
            break (
                report.tick,
                fleet
                    .containment_latency_ticks(0)
                    .expect("containment latency is recorded once a rung holds"),
            );
        }
    };

    let bits_before_containment = rig.bits_transmitted();
    let (_, goodput) = rig.goodput_between(0, bits_before_containment);
    let bits_leaked = (goodput * bits_before_containment as f64).round() as usize;
    ContainRun {
        rig,
        fleet,
        enforcer,
        conviction_tick: conviction_tick.expect("conviction precedes containment"),
        containment_tick,
        latency_ticks,
        bits_leaked,
        bits_before_containment,
    }
}

/// A covert-looking synthetic histogram for the step-down fleet.
fn covert_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_400 + (tick % 7) * 3;
    bins[19] = 20;
    bins[20] = 150 + (tick % 5);
    bins[21] = 25;
    DensityHistogram::from_bins(bins, 100_000).expect("valid bins")
}

/// A benign synthetic histogram.
fn quiet_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_490 + (tick % 9);
    bins[1] = 5;
    DensityHistogram::from_bins(bins, 100_000).expect("valid bins")
}

fn main() {
    let quick = quick_mode();
    let baseline_quanta: u64 = if quick { 8 } else { 12 };
    let residual_quanta: u64 = if quick { 8 } else { 12 };
    let sweep_streaks: &[u32] = if quick { &[2] } else { &[1, 2, 3, 4] };
    let started = std::time::Instant::now();

    println!(
        "mitigation drill ({} mode): bus channel at {NOMINAL_BPS:.0} bps nominal",
        if quick { "quick" } else { "full" }
    );

    // --- Phase A: unmitigated baseline. -----------------------------------
    let mut baseline_rig = DrillRig::new(0xD11_0000);
    for _ in 0..baseline_quanta {
        let _ = baseline_rig.probe(0);
    }
    let baseline_bits = baseline_rig.bits_transmitted();
    let (_, baseline_goodput) = baseline_rig.goodput_between(0, baseline_bits);
    let baseline_bps = baseline_goodput * NOMINAL_BPS;
    let baseline_benign_rate = baseline_rig.benign_ops.get() as f64 / baseline_quanta as f64;
    println!(
        "baseline: goodput {baseline_goodput:.3} over {baseline_bits} bits \
         -> {baseline_bps:.0} bps; benign {baseline_benign_rate:.0} ops/quantum"
    );
    assert!(
        baseline_goodput > 0.5,
        "unmitigated channel must decode well, got goodput {baseline_goodput:.3}"
    );

    // --- Phase B: conviction + containment with an injected refusal. ------
    let store_dir =
        std::env::temp_dir().join(format!("cchunter-mitigation-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut run = run_until_contained(
        2,
        vec![MitigationLevel::FlushOnSwitch],
        Some(CheckpointStore::open(&store_dir, 3).expect("store opens")),
        0xD11_0001,
    );
    let contained_level = run
        .fleet
        .containment(0)
        .and_then(|c| c.level())
        .expect("containment holds a rung");
    println!(
        "contained: convicted at tick {}, rung `{contained_level}` in force at tick {} \
         (latency {} ticks); {} injected refusal(s) forced {} escalation(s)",
        run.conviction_tick,
        run.containment_tick,
        run.latency_ticks,
        run.enforcer.refusals_served,
        run.fleet.metrics_snapshot().mitigation_escalations,
    );
    assert!(
        run.enforcer.refusals_served > 0,
        "the injected first-rung refusal must have been exercised"
    );
    assert!(
        !run.enforcer
            .applied
            .contains(&MitigationLevel::FlushOnSwitch),
        "a refused rung must never be recorded as applied"
    );
    assert!(
        contained_level.rank() >= MitigationLevel::TemporalPartition.rank(),
        "refusing flush-on-switch must escalate to a stronger rung, got {contained_level}"
    );
    assert!(
        run.fleet.metrics_snapshot().mitigation_escalations >= 1,
        "escalation must be visible in metrics"
    );

    // --- Phase C: the closed residual loop. -------------------------------
    // Re-measure the leak under the rung in force, report it back, and let
    // the policy escalate whenever the reading stays above the cap — until
    // the residual bandwidth is down >= 90% from the unmitigated baseline.
    let probe = ResidualProbe::new(baseline_bps, baseline_benign_rate).expect("valid baseline");
    let mut trajectory: Vec<(MitigationLevel, f64, f64, f64)> = Vec::new();
    let final_reading = loop {
        let level = run
            .fleet
            .containment(0)
            .and_then(|c| c.level())
            .expect("containment stays active through the residual loop");
        let bits_lo = run.rig.bits_transmitted();
        let benign_lo = run.rig.benign_ops.get();
        for _ in 0..residual_quanta {
            run.fleet
                .tick_with_enforcer(&mut RigSource(&mut run.rig), &mut run.enforcer);
        }
        let (_, window_goodput) = run.rig.goodput_between(bits_lo, run.rig.bits_transmitted());
        let window_bps = window_goodput * NOMINAL_BPS;
        let benign_rate = (run.rig.benign_ops.get() - benign_lo) as f64 / residual_quanta as f64;
        let reading = probe.reading(window_bps, benign_rate, run.fleet.tick_count());
        run.fleet
            .report_residual(0, reading.residual_fraction, reading.overhead_fraction)
            .expect("residual report accepted");
        println!(
            "residual under `{level}`: goodput {window_goodput:.3} -> {window_bps:.0} bps \
             ({:.1}% of baseline); benign overhead {:.1}%",
            reading.residual_fraction * 100.0,
            reading.overhead_fraction * 100.0,
        );
        trajectory.push((
            level,
            window_goodput,
            reading.residual_fraction,
            reading.overhead_fraction,
        ));
        if reading.residual_fraction <= 0.1 {
            break reading;
        }
        assert!(
            trajectory.len() <= MitigationLevel::LADDER.len(),
            "the ladder must close the leak before it runs out of rungs: {trajectory:?}"
        );
        // One transition tick: the policy sees the over-cap reading and
        // escalates, so the next window measures the stronger rung.
        run.fleet
            .tick_with_enforcer(&mut RigSource(&mut run.rig), &mut run.enforcer);
    };
    let drop_percent = (1.0 - final_reading.residual_fraction) * 100.0;
    let residual_windows = trajectory.len() as u64;
    assert!(
        final_reading.residual_fraction <= 0.1,
        "containment must cut the leak by >= 90%, residual fraction {:.3}",
        final_reading.residual_fraction
    );
    if trajectory.len() > 1 {
        assert!(
            run.fleet.metrics_snapshot().mitigation_escalations >= trajectory.len() as u64,
            "each over-cap reading must escalate the ladder"
        );
    }

    // --- Phase D: the audit service dies; containment must survive. -------
    let generation = run.fleet.checkpoint().expect("checkpoint written");
    let containment_before = run.fleet.containment(0).expect("pair exists");
    let latency_before = run.fleet.containment_latency_ticks(0);
    drop(run.fleet);
    let (mut restored, _report) = Supervisor::restore(
        rig_fleet_config(2),
        CheckpointStore::open(&store_dir, 3).expect("store reopens"),
    )
    .expect("restore succeeds");
    assert_eq!(
        restored.containment(0),
        Some(containment_before),
        "containment round-trips the checkpoint"
    );
    assert_eq!(
        restored.containment_latency_ticks(0),
        latency_before,
        "containment latency round-trips the checkpoint"
    );
    // A restarted service cannot trust the hardware state it inherited:
    // the first tick must re-assert the rung through the enforcer.
    let mut fresh_enforcer = MachineEnforcer::new(&run.rig, Vec::new());
    restored.tick_with_enforcer(&mut RigSource(&mut run.rig), &mut fresh_enforcer);
    let reasserted = containment_before
        .level()
        .expect("containment is active at the crash");
    assert!(
        fresh_enforcer.applied.contains(&reasserted),
        "restored supervisor must re-assert `{reasserted}` through the enforcer, applied: {:?}",
        fresh_enforcer.applied
    );
    println!(
        "restore: containment `{}` survived generation {generation} and was re-asserted",
        containment_before.name()
    );

    // --- Phase E: the ladder steps down when the leak closes. -------------
    let mut stepdown_fleet = Supervisor::new(SupervisorConfig {
        window_quanta: 8,
        deadline_us: 0,
        mitigation: MitigationConfig {
            convict_streak: 2,
            step_down_streak: 2,
            ..MitigationConfig::default()
        },
        ..SupervisorConfig::default()
    })
    .expect("valid step-down config");
    stepdown_fleet
        .add_contention_pair("divider: synthetic step-down pair")
        .expect("valid pair");
    // The step-down pair is synthetic, so the enforcer actuates an idle
    // spare machine — only the apply/release bookkeeping matters here.
    let dummy_rig = DrillRig::new(0xD11_0002);
    let mut advisory = MachineEnforcer::new(&dummy_rig, Vec::new());
    let mut covert_source = |_p: usize, tick: u64, _a: u32| {
        Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(covert_histogram(
            tick,
        ))))
    };
    while !stepdown_fleet
        .containment(0)
        .expect("pair exists")
        .is_active()
    {
        assert!(stepdown_fleet.tick_count() < 30, "synthetic pair convicts");
        stepdown_fleet.tick_with_enforcer(&mut covert_source, &mut advisory);
    }
    let mut quiet_source = |_p: usize, tick: u64, _a: u32| {
        Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(quiet_histogram(tick))))
    };
    let mut stepdown_ticks = 0u64;
    while stepdown_fleet
        .containment(0)
        .expect("pair exists")
        .is_active()
    {
        assert!(
            stepdown_ticks < 60,
            "quiet pair must step all the way down, stuck at {:?}",
            stepdown_fleet.containment(0)
        );
        stepdown_fleet
            .report_residual(0, 0.02, 0.01)
            .expect("residual accepted");
        stepdown_fleet.tick_with_enforcer(&mut quiet_source, &mut advisory);
        stepdown_ticks += 1;
    }
    let step_downs = stepdown_fleet.metrics_snapshot().mitigation_stepdowns;
    assert!(step_downs >= 1, "at least one step-down must be recorded");
    assert!(
        advisory.released.contains(&MitigationLevel::FlushOnSwitch),
        "the final rung must be released through the enforcer"
    );
    println!(
        "step-down: synthetic pair released to inactive after {stepdown_ticks} quiet quanta \
         ({step_downs} step-down(s))"
    );

    // --- Phase F: latency-vs-leak sweep over the conviction threshold. ----
    let mut sweep = Vec::new();
    for &streak in sweep_streaks {
        // Same fault seed for every point: the runs differ only in the
        // conviction threshold, so the latency curve is monotone by
        // construction.
        let point = run_until_contained(streak, Vec::new(), None, 0xD11_0100);
        println!(
            "sweep: convict_streak {streak} -> contained at tick {} \
             (latency {} ticks), ~{} bits leaked of {} transmitted",
            point.containment_tick,
            point.latency_ticks,
            point.bits_leaked,
            point.bits_before_containment,
        );
        sweep.push((streak, point));
    }
    // More patience before conviction can only leak more bits.
    for pair in sweep.windows(2) {
        assert!(
            pair[1].1.containment_tick >= pair[0].1.containment_tick,
            "a higher conviction threshold cannot contain earlier"
        );
    }

    // --- The diffable artifact. -------------------------------------------
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(streak, p)| {
            format!(
                "    {{ \"convict_streak\": {streak}, \"conviction_tick\": {}, \
                 \"containment_tick\": {}, \"latency_ticks\": {}, \"latency_cycles\": {}, \
                 \"bits_transmitted\": {}, \"bits_leaked\": {} }}",
                p.conviction_tick,
                p.containment_tick,
                p.latency_ticks,
                p.latency_ticks * QUANTUM,
                p.bits_before_containment,
                p.bits_leaked,
            )
        })
        .collect();
    let trajectory_json: Vec<String> = trajectory
        .iter()
        .map(|(level, goodput, fraction, overhead)| {
            format!(
                "      {{ \"level\": \"{level}\", \"goodput\": {goodput:.4}, \
                 \"fraction_of_baseline\": {fraction:.4}, \
                 \"benign_overhead_fraction\": {overhead:.4} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"elapsed_ms\": {},\n  \"clock_hz\": {CLOCK_HZ},\n  \
         \"nominal_bps\": {NOMINAL_BPS},\n  \"baseline\": {{\n    \"quanta\": {baseline_quanta},\n    \
         \"goodput\": {baseline_goodput:.4},\n    \"bandwidth_bps\": {baseline_bps:.1},\n    \
         \"benign_ops_per_quantum\": {baseline_benign_rate:.1}\n  }},\n  \"containment\": {{\n    \
         \"convict_streak\": 2,\n    \"injected_refusals\": {},\n    \
         \"first_contained_level\": \"{contained_level}\",\n    \"final_level\": \"{reasserted}\",\n    \
         \"conviction_tick\": {},\n    \"containment_tick\": {},\n    \"latency_ticks\": {},\n    \
         \"bits_leaked_before_containment\": {},\n    \"residual\": {{\n      \
         \"window_quanta\": {residual_quanta},\n      \"windows\": {residual_windows},\n      \
         \"fraction_of_baseline\": {:.4},\n      \"drop_percent\": {drop_percent:.1},\n      \
         \"benign_overhead_fraction\": {:.4},\n      \"trajectory\": [\n{}\n      ]\n    }}\n  }},\n  \
         \"restore\": {{\n    \"generation\": {generation},\n    \"containment_preserved\": true,\n    \
         \"reasserted_level\": \"{reasserted}\"\n  }},\n  \"step_down\": {{\n    \
         \"quiet_quanta\": {stepdown_ticks},\n    \"step_downs\": {step_downs},\n    \
         \"released_to_inactive\": true\n  }},\n  \"latency_vs_leak\": [\n{}\n  ]\n}}\n",
        started.elapsed().as_millis(),
        run.enforcer.refusals_served,
        run.conviction_tick,
        run.containment_tick,
        run.latency_ticks,
        run.bits_leaked,
        final_reading.residual_fraction,
        final_reading.overhead_fraction,
        trajectory_json.join(",\n"),
        sweep_json.join(",\n"),
    );
    std::fs::write("mitigation_drill.json", &json).expect("summary written");
    let _ = std::fs::remove_dir_all(&store_dir);
    println!();
    println!("summary written to mitigation_drill.json");
}
