//! The observability drill: a supervised fleet under injected faults — a
//! contained analysis panic, a wedged (quarantined) monitor, a crash with a
//! corrupted newest checkpoint generation, a storage brownout that flips
//! the fleet to durability-degraded (shadow-only) checkpointing and heals
//! — with the full metrics and tracing surface on display: the fleet's
//! numeric digest, a Prometheus-format scrape of the shared registry
//! (simulator counters included), the structured trace timeline, and a
//! measured instrumentation-overhead figure for the supervisor tick loop.
//!
//! ```sh
//! cargo run --example observed_audit
//! ```

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{BitClock, BusChannelConfig, BusSpy, BusTrojan, Message, SpyLog};
use cc_hunter::detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cc_hunter::detector::metrics::Registry;
use cc_hunter::detector::online::Harvest;
use cc_hunter::detector::policy::QuarantineConfig;
use cc_hunter::detector::span::{self, Tracer};
use cc_hunter::detector::store::CheckpointStore;
use cc_hunter::detector::supervisor::{
    ChaosOp, PairInput, ProbeFault, Supervisor, SupervisorConfig,
};
use cc_hunter::detector::{
    CcHunterConfig, DeltaTPolicy, StorageFaultClass, StorageFaultConfig, StorageFaultInjector,
};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::{FaultClass, FaultConfig, FaultInjector};
use std::sync::Arc;
use std::time::Instant;

const QUANTUM: u64 = 2_500_000;
const TICKS: u64 = 24;
const CRASH_AT: u64 = 12;
const PANIC_AT: u64 = 7;
const WEDGED_UNTIL: u64 = 20;

/// A covert-looking synthetic bus/divider histogram.
fn covert_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_400 + (tick % 7) * 3;
    bins[19] = 20;
    bins[20] = 150 + (tick % 5);
    bins[21] = 25;
    DensityHistogram::from_bins(bins, 100_000).expect("valid bins")
}

/// A benign synthetic histogram.
fn quiet_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_490 + (tick % 9);
    bins[1] = 5;
    DensityHistogram::from_bins(bins, 100_000).expect("valid bins")
}

/// A strongly periodic covert conflict batch.
fn covert_conflicts(tick: u64) -> Vec<cc_hunter::detector::auditor::ConflictRecord> {
    (0..128u64)
        .map(|i| cc_hunter::detector::auditor::ConflictRecord {
            cycle: tick * QUANTUM + i * 700,
            replacer: if i % 2 == 0 { 2 } else { 5 },
            victim: if i % 2 == 0 { 5 } else { 2 },
        })
        .collect()
}

/// Pair 0's hardware: a simulated machine running a real bus covert
/// channel, stepped one quantum per supervisor tick through the
/// instrumented [`QuantumRunner`] (so `cchunter_sim_*` counters show up in
/// the scrape), with dropped-quantum fault injection on the read-out path.
struct BusRig {
    machine: Machine,
    session: AuditSession,
    runner: QuantumRunner,
    injector: FaultInjector,
    last_clean: Option<DensityHistogram>,
}

impl BusRig {
    fn new() -> Self {
        let config = MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .expect("valid config");
        let mut machine = Machine::new(config);
        let message = Message::alternating(TICKS as usize * 10);
        let clock = BitClock::new(0, 250_000);
        let channel = BusChannelConfig::new(message, clock);
        let log = SpyLog::new_handle();
        machine.spawn(
            Box::new(BusTrojan::new(channel.clone(), 0x1000_0000)),
            machine.config().context_id(0, 0),
        );
        machine.spawn(
            Box::new(BusSpy::new(channel, 0x4000_0000, log)),
            machine.config().context_id(1, 0),
        );
        let mut session = AuditSession::new();
        session.audit_bus(100_000).expect("bus audit");
        session.attach(&mut machine);
        BusRig {
            machine,
            session,
            runner: QuantumRunner::new(QUANTUM).expect("nonzero quantum"),
            injector: FaultInjector::new(
                FaultConfig::only(FaultClass::DroppedQuantum)
                    .with_rate(FaultClass::DroppedQuantum, 0.15),
                0x0B5E_0001,
            ),
            last_clean: None,
        }
    }

    fn probe(&mut self, attempt: u32) -> PairInput {
        if attempt > 0 {
            if let Some(h) = self.last_clean.take() {
                return PairInput::Harvest(Harvest::Complete(h));
            }
            return PairInput::Missed;
        }
        let quantum = self
            .runner
            .run_quantum_with_injector(&mut self.machine, &mut self.session, &mut self.injector)
            .expect("audit harvest");
        match quantum.bus.expect("bus is audited") {
            Harvest::Missed => {
                self.last_clean = self
                    .session
                    .harvest_bus_histogram(quantum.boundary)
                    .ok()
                    .or_else(|| Some(quiet_histogram(0)));
                PairInput::Missed
            }
            harvest => PairInput::Harvest(harvest),
        }
    }
}

fn fleet_config() -> SupervisorConfig {
    SupervisorConfig {
        hunter: CcHunterConfig {
            quantum_cycles: QUANTUM,
            delta_t: DeltaTPolicy::Fixed(100_000),
            ..CcHunterConfig::default()
        },
        window_quanta: 8,
        deadline_us: 0,
        checkpoint_every: 5,
        quarantine: QuarantineConfig {
            failure_window: 6,
            trip_threshold: 0.5,
            min_observations: 4,
            probe_interval: 4,
            recovery_successes: 2,
            confidence_decay: 0.7,
        },
        ..SupervisorConfig::default()
    }
}

fn build_fleet(store: CheckpointStore) -> Supervisor {
    let mut fleet = Supervisor::new(fleet_config())
        .expect("valid fleet config")
        .with_store(store);
    fleet
        .add_contention_pair("memory-bus: pid 17 <-> pid 23 (simulated hardware)")
        .expect("valid pair");
    fleet
        .add_contention_pair("divider: pid 4 <-> pid 9 (flaky collector)")
        .expect("valid pair");
    fleet
        .add_oscillation_pair("l2-cache: pid 17 <-> pid 23")
        .expect("valid pair");
    fleet
        .add_contention_pair("multiplier: pid 5 <-> pid 12 (chaos panic)")
        .expect("valid pair");
    fleet
        .add_contention_pair("memory-bus: pid 50 <-> pid 51 (wedged monitor)")
        .expect("valid pair");
    fleet
}

/// Times `ticks` supervisor quanta at the bench suite's working size
/// (8 pairs, 64-quanta windows, covert inputs — the
/// `supervisor_tick_8_pairs_64_window` shape), with the given tracer,
/// against a private registry so the drill's own numbers stay untouched.
/// Returns the total wall time.
fn tick_loop_duration(tracer: Tracer, ticks: u64) -> std::time::Duration {
    let mut fleet = Supervisor::new(SupervisorConfig {
        window_quanta: 64,
        ..SupervisorConfig::default()
    })
    .expect("valid config")
    .with_registry(Registry::new())
    .with_tracer(tracer);
    for i in 0..8 {
        fleet
            .add_contention_pair(format!("bench-pair-{i}"))
            .expect("valid pair");
    }
    let started = Instant::now();
    for _ in 0..ticks {
        fleet.tick(&mut |_pair: usize, tick: u64, _attempt: u32| {
            Ok::<PairInput, ProbeFault>(PairInput::Harvest(Harvest::Complete(covert_histogram(
                tick,
            ))))
        });
    }
    started.elapsed()
}

fn main() {
    // Force tracing on for the drill regardless of CCHUNTER_TRACE: the
    // supervisor, pipeline, and sim quantum loop all record into this
    // process-wide ring.
    let tracer = span::global();
    tracer.set_enabled(true);

    let store_dir =
        std::env::temp_dir().join(format!("cchunter-observed-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let mut rig = BusRig::new();
    let mut flaky_injector = FaultInjector::new(
        FaultConfig::only(FaultClass::TruncatedHistogram)
            .with_rate(FaultClass::TruncatedHistogram, 0.4),
        0x0B5E_0002,
    );
    let mut probe = move |pair: usize, tick: u64, attempt: u32| -> Result<PairInput, ProbeFault> {
        Ok(match pair {
            0 => rig.probe(attempt),
            1 => PairInput::Harvest(flaky_injector.perturb_harvest(quiet_histogram(tick))),
            2 => PairInput::Conflicts {
                records: covert_conflicts(tick),
                lost_fraction: 0.0,
            },
            3 if tick == PANIC_AT && attempt == 0 => PairInput::Chaos(ChaosOp::Panic),
            3 => PairInput::Harvest(Harvest::Complete(covert_histogram(tick))),
            _ if tick < WEDGED_UNTIL => {
                return Err(ProbeFault {
                    reason: "hardware interface wedged".to_string(),
                })
            }
            _ => PairInput::Harvest(Harvest::Complete(covert_histogram(tick))),
        })
    };

    // The injected chaos panic is contained by the supervisor's watchdog;
    // keep the default hook for anything else.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos:"));
        if !expected {
            default_hook(info);
        }
    }));

    println!("observability drill: 5 pairs under fault injection, checkpoint every 5 quanta");
    println!("store: {}", store_dir.display());
    println!();

    let mut fleet = build_fleet(CheckpointStore::open(&store_dir, 3).expect("store opens"));
    for _ in 0..CRASH_AT {
        fleet.tick(&mut probe);
    }

    // --- Crash with a corrupted newest checkpoint generation: the restore
    // rolls back a generation per entry and the rollbacks become metrics.
    println!("*** crash at quantum {CRASH_AT}; newest checkpoint generation is corrupt ***");
    drop(fleet);
    let probe_store = CheckpointStore::open(&store_dir, 3).expect("store reopens");
    for name in [
        "supervisor",
        "pair-0000",
        "pair-0001",
        "pair-0002",
        "pair-0003",
        "pair-0004",
    ] {
        let newest = *probe_store
            .generations(name)
            .expect("entry has generations")
            .last()
            .expect("at least one generation");
        let path = store_dir.join(format!("{name}.g{newest:08}.ckpt"));
        let mut bytes = std::fs::read(&path).expect("checkpoint readable");
        let mid = bytes.len() / 2;
        let end = (mid + 16).min(bytes.len());
        for b in &mut bytes[mid..end] {
            *b ^= 0xA5;
        }
        std::fs::write(&path, &bytes).expect("checkpoint writable");
    }
    // The restored fleet writes through a storage-fault injector so the
    // drill can brown out the medium mid-run: checkpoints fall back to
    // in-memory shadows (durability: degraded) and the first successful
    // write after the heal is a full re-persist.
    let storage_injector = StorageFaultInjector::new(StorageFaultConfig::none(), 0x0B5E_0003);
    let (mut fleet, restore_report) = Supervisor::restore(
        fleet_config(),
        CheckpointStore::open_with_medium(&store_dir, 3, Arc::new(storage_injector.clone()))
            .expect("store reopens"),
    )
    .expect("restore succeeds");
    println!(
        "restored at quantum {} — {} corrupt generation(s) rolled over",
        fleet.tick_count(),
        restore_report.total_rolled_back()
    );
    println!();

    for _ in fleet.tick_count()..TICKS {
        // Brown out stable storage across quantum 15's checkpoint and heal
        // before quantum 20's: the digest below must show the round trip.
        if fleet.tick_count() == 14 {
            println!("*** storage brownout (ENOSPC on every write) before quantum 15 ***");
            storage_injector
                .set_config(StorageFaultConfig::none().with_rate(StorageFaultClass::NoSpace, 1.0));
        }
        if fleet.tick_count() == 17 {
            println!("*** storage healed before quantum 20 ***");
            storage_injector.set_config(StorageFaultConfig::none());
        }
        fleet.tick(&mut probe);
        if fleet.tick_count() == 16 {
            println!("durability after quantum 15: {}", fleet.durability());
        }
    }
    println!("durability at end of run:   {}", fleet.durability());
    println!();

    // --- The fleet digest a monitoring page would poll. ---
    let status = fleet.fleet_status();
    println!("{}", status.metrics);
    println!();

    // --- The Prometheus scrape (histogram bucket lines elided here for
    // readability; the full exposition is what checkpoint dumps carry). ---
    println!("Prometheus scrape of the shared registry (bucket lines elided):");
    for line in fleet.render_prometheus().lines() {
        if !line.contains("_bucket{") {
            println!("  {line}");
        }
    }
    println!();

    // --- The structured trace timeline (newest events). ---
    println!("trace timeline (last 25 of {} events):", tracer.recorded());
    print!("{}", tracer.render_timeline(25));
    println!();

    // --- Instrumentation overhead on the tick loop: the same synthetic
    // fleet, traced vs. untraced, against private registries. ---
    const OVERHEAD_TICKS: u64 = 300;
    let untraced = tick_loop_duration(Tracer::disabled(), OVERHEAD_TICKS);
    let traced = tick_loop_duration(Tracer::new(4096), OVERHEAD_TICKS);
    let overhead_pct = if untraced.as_nanos() > 0 {
        (traced.as_secs_f64() / untraced.as_secs_f64() - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "tick-loop instrumentation overhead: {OVERHEAD_TICKS} ticks untraced {:?}, traced {:?} ({overhead_pct:+.1}%)",
        untraced, traced
    );
    println!();

    // The story the drill must tell, every time.
    let snap = &status.metrics;
    assert!(snap.quarantine_skips > 0, "wedged pair was quarantined");
    assert!(snap.restore_rollbacks > 0, "corrupt generation rolled back");
    assert!(snap.panics >= 1, "chaos panic contained");
    assert!(snap.checkpoints > 0, "periodic checkpoints ran");
    assert!(
        snap.shadow_checkpoints > 0,
        "brownout forced shadow checkpoints"
    );
    assert!(
        snap.durability_heals >= 1,
        "healed medium triggered a re-persist"
    );
    assert!(!snap.durability_degraded, "durable again at end of run");
    assert!(
        snap.audit_latency.count > 0,
        "audit latency histogram populated"
    );
    assert!(snap.covert_pairs >= 2, "covert channels detected");
    assert!(tracer.recorded() > 0, "trace ring saw events");
    let scrape = fleet.render_prometheus();
    for needle in [
        "cchunter_pair_quarantine_skips_total",
        "cchunter_restore_rollbacks_total",
        "cchunter_durability_degraded",
        "cchunter_shadow_checkpoints_total",
        "cchunter_audit_latency_us_count",
        "cchunter_sim_quanta_total",
    ] {
        assert!(scrape.contains(needle), "scrape exposes {needle}");
    }
    println!(
        "drill complete: {} quanta audited, {} trace events, metrics dump alongside checkpoints in {}",
        fleet.tick_count(),
        tracer.recorded(),
        store_dir.display()
    );

    let _ = std::fs::remove_dir_all(&store_dir);
}
