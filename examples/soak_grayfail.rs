//! Gray-failure chaos soak: the storage plane browns out and heals, one
//! shard turns slow-but-alive, and a killed shard is revived — all while
//! a planted covert channel keeps transmitting.
//!
//! The harness asserts the gray-failure contract end to end:
//!
//! - An ENOSPC brownout (injected through the [`StorageFaultInjector`]
//!   every shard store writes through) flips the fleet to
//!   durability-degraded operation — detection continues, checkpoints go
//!   to in-memory shadows — and healing the medium resumes durable
//!   writes with a full re-persist.
//! - A shard stalled past the latency SLO is *suspected* (not killed):
//!   its pairs drain proactively onto healthy shards, and once its
//!   latency recovers the suspicion clears and the pairs walk back.
//! - A killed-and-revived shard gets its rendezvous-home pairs back,
//!   at most `rebalance_per_tick` per tick.
//! - Throughout: the planted covert pair stays convicted, no quiet pair
//!   ever flips covert, no pair is lost, and the placement/accounting
//!   books balance on every sampled tick.
//!
//! A machine-readable summary lands in `soak_grayfail.json` for CI
//! artifact upload.
//!
//! ```sh
//! cargo run --release --example soak_grayfail            # full soak
//! CCHUNTER_GRAYFAIL_QUICK=1 cargo run --example soak_grayfail   # CI smoke
//! ```

use cc_hunter::detector::supervisor::{PairInput, ProbeFault, SupervisorConfig};
use cc_hunter::detector::{
    shard_count_from_env, DensityHistogram, Harvest, LatencySloConfig, ShardHealth, ShardedFleet,
    ShardedFleetConfig, StorageFaultClass, StorageFaultConfig, StorageFaultInjector,
    SuspicionConfig, HISTOGRAM_BINS,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Pairs that feed real harvests every tick; the rest are the quiet long
/// tail of co-scheduled pairs whose probes miss.
const ACTIVE_PAIRS: usize = 48;

/// A covert-looking per-quantum histogram, varied by tick.
fn covert_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_400 + (tick % 7) * 3;
    bins[19] = 20;
    bins[20] = 150 + (tick % 5);
    bins[21] = 25;
    DensityHistogram::from_bins(bins, 100_000).unwrap()
}

/// A benign per-quantum histogram.
fn quiet_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_490 + (tick % 9);
    bins[1] = 5;
    DensityHistogram::from_bins(bins, 100_000).unwrap()
}

fn temp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cchunter-soak-grayfail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One soak tick: drives the probe fan-out and returns the tick report.
fn run_tick(fleet: &mut ShardedFleet, tick: u64) -> cc_hunter::detector::shard::FleetTickReport {
    let mut probe = |pair: usize, _tick: u64, _attempt: u32| -> Result<PairInput, ProbeFault> {
        if pair == 0 {
            return Ok(PairInput::Harvest(Harvest::Complete(covert_histogram(
                tick,
            ))));
        }
        if pair < ACTIVE_PAIRS {
            return Ok(PairInput::Harvest(Harvest::Complete(quiet_histogram(
                tick + pair as u64,
            ))));
        }
        Ok(PairInput::Missed)
    };
    fleet.tick(&mut probe)
}

fn main() {
    let quick = std::env::var("CCHUNTER_GRAYFAIL_QUICK").is_ok_and(|v| v == "1");
    let pairs: usize = if quick { 160 } else { 512 };
    let shards = shard_count_from_env(4);
    let stall_us: u64 = 100_000;

    // Chaos panics (none are scheduled here, but a contained shard panic
    // must not spam the console if one ever fires) stay quiet.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos:"));
        if !expected {
            default_hook(info);
        }
    }));

    let root = temp_root();
    let config = ShardedFleetConfig {
        shards,
        base: SupervisorConfig {
            window_quanta: 8,
            checkpoint_every: 4,
            ..SupervisorConfig::default()
        },
        latency_slo: Some(LatencySloConfig {
            p99_budget_us: 25_000,
            window_ticks: 4,
            suspicion: SuspicionConfig {
                breach_ticks: 3,
                clear_ticks: 4,
            },
            drain_per_tick: 64,
        }),
        rebalance_per_tick: 24,
        ..ShardedFleetConfig::default()
    };
    let rebalance_per_tick = config.rebalance_per_tick;
    // The injector clone is the live control handle: flipping its config
    // browns out (and heals) every shard store at once.
    let injector = StorageFaultInjector::new(StorageFaultConfig::none(), 0x6AF1);
    let mut fleet =
        ShardedFleet::with_store_root_and_medium(config, &root, Arc::new(injector.clone()))
            .expect("valid fleet");

    fleet
        .add_contention_pair("covert-bus: pid 17 <-> pid 23")
        .expect("covert pair");
    for i in 1..pairs {
        fleet
            .add_contention_pair(format!(
                "pair-{i:05}: pid {} <-> pid {}",
                100 + i,
                20_000 + i
            ))
            .expect("benign pair");
    }

    let started = Instant::now();
    let mut tick: u64 = 0;
    let mut benign_flips = 0u64;
    let mut degraded_ticks = 0u64;
    let mut suspected_events = 0usize;
    let mut cleared_events = 0usize;
    let mut drained_total = 0usize;
    let mut rebalanced_total = 0usize;
    let mut watchdog_deaths = 0usize;

    // Shared per-tick bookkeeping, with the benign-flip audit sampled.
    macro_rules! soak_tick {
        () => {{
            let report = run_tick(&mut fleet, tick);
            tick += 1;
            suspected_events += report.suspected.len();
            cleared_events += report.cleared.len();
            drained_total += report.drained;
            rebalanced_total += report.rebalanced;
            watchdog_deaths += report.deaths.len();
            assert!(
                report.rebalanced <= rebalance_per_tick,
                "churn budget violated: {report:?}"
            );
            if fleet.metrics_snapshot().durability_degraded {
                degraded_ticks += 1;
            }
            if tick.is_multiple_of(5) {
                let statuses = fleet.pair_statuses();
                assert_eq!(statuses.len(), pairs, "every pair accounted for");
                if statuses[1..].iter().any(|s| s.verdict.is_covert()) {
                    benign_flips += 1;
                }
                fleet.verify_accounting().expect("books balance");
            }
            report
        }};
    }

    // Phase 1: warmup — the covert pair convicts under healthy storage.
    for _ in 0..24 {
        soak_tick!();
    }
    assert!(
        fleet.pair_statuses()[0].verdict.is_covert(),
        "covert pair convicted in warmup"
    );
    let checkpoints_before_brownout = fleet.metrics_snapshot().checkpoints;
    assert!(
        checkpoints_before_brownout > 0,
        "healthy checkpoints landed"
    );
    println!("phase 1: warmup done — covert pair convicted, {checkpoints_before_brownout} checkpoints durable");

    // Phase 2: ENOSPC brownout. Every durable write fails; the fleet must
    // keep detecting and fall back to shadow checkpoints.
    injector.set_config(StorageFaultConfig::none().with_rate(StorageFaultClass::NoSpace, 1.0));
    for _ in 0..12 {
        soak_tick!();
    }
    let snap = fleet.metrics_snapshot();
    assert!(
        snap.durability_degraded,
        "brownout must surface as degraded durability"
    );
    assert!(snap.shadow_checkpoints > 0, "shadow checkpoints were taken");
    assert!(snap.checkpoint_errors > 0, "the failures were counted");
    assert!(
        fleet.pair_statuses()[0].verdict.is_covert(),
        "detection continues through the brownout"
    );
    println!(
        "phase 2: brownout — durability degraded, {} shadow checkpoints, {} checkpoint errors",
        snap.shadow_checkpoints, snap.checkpoint_errors
    );

    // Phase 3: heal. Durable writes resume with a full re-persist.
    injector.set_config(StorageFaultConfig::none());
    for _ in 0..12 {
        soak_tick!();
    }
    let snap = fleet.metrics_snapshot();
    assert!(
        !snap.durability_degraded,
        "healed medium restores durability"
    );
    assert!(snap.durability_heals >= 1, "the heal was a full re-persist");
    assert!(
        snap.checkpoints > checkpoints_before_brownout,
        "durable checkpoints resumed after the heal"
    );
    println!(
        "phase 3: healed — {} durability heals, checkpoints {} -> {}",
        snap.durability_heals, checkpoints_before_brownout, snap.checkpoints
    );

    // Phase 4: a gray-slow shard. The covert pair's home stalls past the
    // latency SLO every tick until it is suspected and drained — it must
    // never be declared dead for being slow.
    let victim = fleet.shard_of(0).expect("covert pair hosted");
    let victim_home_pairs: Vec<usize> = fleet
        .pair_statuses()
        .iter()
        .enumerate()
        .filter_map(|(p, s)| (s.shard == Some(victim)).then_some(p))
        .collect();
    let mut suspect_seen = false;
    for _ in 0..20 {
        fleet.stall_shard(victim, stall_us).expect("stall armed");
        let report = soak_tick!();
        if report.suspected.contains(&victim) {
            suspect_seen = true;
            break;
        }
    }
    assert!(suspect_seen, "sustained SLO breach raises suspicion");
    assert_eq!(
        fleet.shard_health(victim),
        Some(ShardHealth::Live),
        "a slow shard is suspected, not buried"
    );
    for _ in 0..8 {
        if fleet.shard_statuses()[victim].pairs == 0 {
            break;
        }
        fleet.stall_shard(victim, stall_us).expect("stall armed");
        soak_tick!();
    }
    assert_eq!(
        fleet.shard_statuses()[victim].pairs,
        0,
        "the suspected shard drains fully"
    );
    println!(
        "phase 4: shard {victim} suspected and drained ({} pairs moved off)",
        victim_home_pairs.len()
    );

    // Phase 5: the stall is gone; suspicion clears and the drained pairs
    // rebalance back onto their rendezvous home within the churn budget.
    let mut cleared_seen = false;
    for _ in 0..80 {
        let report = soak_tick!();
        if report.cleared.contains(&victim) {
            cleared_seen = true;
            break;
        }
    }
    assert!(cleared_seen, "recovered latency clears the suspicion");
    let returned = |fleet: &ShardedFleet, home_pairs: &[usize], home: usize| {
        home_pairs
            .iter()
            .filter(|&&p| fleet.shard_of(p) == Some(home))
            .count()
    };
    for _ in 0..60 {
        if returned(&fleet, &victim_home_pairs, victim) == victim_home_pairs.len() {
            break;
        }
        soak_tick!();
    }
    let back = returned(&fleet, &victim_home_pairs, victim);
    assert!(
        back * 10 >= victim_home_pairs.len() * 9,
        "at least 90% of the drained pairs must be home again: {back}/{}",
        victim_home_pairs.len()
    );
    println!(
        "phase 5: suspicion cleared, {back}/{} pairs rebalanced home",
        victim_home_pairs.len()
    );

    // Phase 6: hard kill and revive. The revived shard starts empty and
    // gets its rendezvous-home pairs back, bounded per tick.
    fleet.checkpoint().expect("pre-kill checkpoint");
    let homes: Vec<usize> = (0..pairs)
        .map(|p| fleet.shard_of(p).expect("hosted"))
        .collect();
    let killed = fleet.shard_of(0).expect("covert pair hosted");
    let killed_home_pairs: Vec<usize> = homes
        .iter()
        .enumerate()
        .filter_map(|(p, &h)| (h == killed).then_some(p))
        .collect();
    let report = fleet.kill_shard(killed).expect("shard killed");
    assert_eq!(report.orphaned, 0, "survivors adopt everything");
    soak_tick!();
    fleet.revive_shard(killed).expect("shard revived");
    for _ in 0..60 {
        if returned(&fleet, &killed_home_pairs, killed) == killed_home_pairs.len() {
            break;
        }
        soak_tick!();
    }
    let back = returned(&fleet, &killed_home_pairs, killed);
    assert!(
        back * 10 >= killed_home_pairs.len() * 9,
        "at least 90% of the revived shard's home pairs must return: {back}/{}",
        killed_home_pairs.len()
    );
    // Settle and verify the final placement is the rendezvous placement.
    for _ in 0..8 {
        soak_tick!();
    }
    for (p, &home) in homes.iter().enumerate() {
        assert_eq!(
            fleet.shard_of(p),
            Some(home),
            "pair {p} must end at its rendezvous home"
        );
    }
    println!(
        "phase 6: shard {killed} killed and revived, {back}/{} home pairs rebalanced back",
        killed_home_pairs.len()
    );
    let elapsed = started.elapsed();

    // The gray-failure contract, asserted every run.
    let statuses = fleet.pair_statuses();
    let snap = fleet.metrics_snapshot();
    fleet.verify_accounting().expect("final books balance");
    assert_eq!(watchdog_deaths, 0, "no shard died for being slow");
    assert_eq!(
        fleet.live_shard_ids().len(),
        shards,
        "every shard live at end"
    );
    assert!(suspected_events >= 1 && cleared_events >= 1);
    assert!(drained_total > 0 && rebalanced_total > 0);
    assert_eq!(
        statuses.iter().filter(|s| s.shard.is_none()).count(),
        0,
        "no pair left orphaned"
    );
    assert!(
        statuses[0].verdict.is_covert(),
        "planted covert pair convicted at end-of-run: {:?}",
        statuses[0]
    );
    assert_eq!(benign_flips, 0, "no quiet pair ever flips covert");
    assert!(!snap.durability_degraded, "durable at end-of-run");

    println!();
    println!("soak: {tick} ticks x {pairs} pairs x {shards} shards in {elapsed:.2?}");
    println!(
        "gray failures: {degraded_ticks} degraded ticks, {} shadow checkpoints, {} heals, \
         {suspected_events} suspicions, {cleared_events} clears, \
         {drained_total} drained, {rebalanced_total} rebalanced",
        snap.shadow_checkpoints, snap.durability_heals
    );

    let json = format!(
        "{{\n  \"ticks\": {tick},\n  \"pairs\": {pairs},\n  \"shards\": {shards},\n  \
         \"quick\": {quick},\n  \"elapsed_ms\": {},\n  \"degraded_ticks\": {degraded_ticks},\n  \
         \"shadow_checkpoints\": {},\n  \"durability_heals\": {},\n  \
         \"checkpoint_errors\": {},\n  \"suspected_events\": {suspected_events},\n  \
         \"cleared_events\": {cleared_events},\n  \"drained_pairs\": {drained_total},\n  \
         \"rebalanced_pairs\": {rebalanced_total},\n  \"watchdog_deaths\": {watchdog_deaths},\n  \
         \"home_return_fraction\": {:.3},\n  \"benign_covert_flips\": {benign_flips},\n  \
         \"covert_verdict\": \"{}\"\n}}\n",
        elapsed.as_millis(),
        snap.shadow_checkpoints,
        snap.durability_heals,
        snap.checkpoint_errors,
        back as f64 / killed_home_pairs.len().max(1) as f64,
        statuses[0].verdict,
    );
    std::fs::write("soak_grayfail.json", &json).expect("summary written");
    println!("summary written to soak_grayfail.json");

    let _ = std::fs::remove_dir_all(&root);
}
