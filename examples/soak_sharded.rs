//! Chaos soak for the failure-domain sharded fleet: ten thousand pairs
//! hashed across eight crash-contained shard supervisors, killed and
//! resurrected mid-run while a planted covert channel keeps transmitting.
//!
//! The harness asserts the sharding contract end to end: every pair added
//! is accounted for on every sampled tick (monitored, degraded, or
//! orphaned — never silently gone), shard deaths migrate pairs onto
//! survivors by checkpoint restore, the planted covert pair is re-convicted
//! after each forced migration, quiet pairs never flip covert, and the
//! coordinator's tick latency stays bounded. A summary (with the p50/p99
//! tick latency) is written to `soak_sharded.json` for CI artifact upload.
//!
//! ```sh
//! cargo run --release --example soak_sharded          # full soak (10 240 pairs, 500 ticks)
//! CCHUNTER_SHARD_SOAK_QUICK=1 cargo run --example soak_sharded   # CI smoke
//! ```

use cc_hunter::detector::supervisor::{ChaosOp, PairInput, ProbeFault, SupervisorConfig};
use cc_hunter::detector::{
    shard_count_from_env, DensityHistogram, Harvest, ShardHealth, ShardedFleet, ShardedFleetConfig,
    HISTOGRAM_BINS,
};
use std::path::PathBuf;
use std::time::Instant;

/// Pairs that feed real harvests every tick; the rest of the fleet is the
/// long tail of co-scheduled pairs whose probes miss (nothing to report).
const ACTIVE_PAIRS: usize = 64;

/// A covert-looking per-quantum histogram, varied by tick.
fn covert_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_400 + (tick % 7) * 3;
    bins[19] = 20;
    bins[20] = 150 + (tick % 5);
    bins[21] = 25;
    DensityHistogram::from_bins(bins, 100_000).unwrap()
}

/// A benign per-quantum histogram.
fn quiet_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_490 + (tick % 9);
    bins[1] = 5;
    DensityHistogram::from_bins(bins, 100_000).unwrap()
}

fn temp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cchunter-soak-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let quick = std::env::var("CCHUNTER_SHARD_SOAK_QUICK").is_ok_and(|v| v == "1");
    let ticks: u64 = if quick { 80 } else { 500 };
    let pairs: usize = if quick { 1_024 } else { 10_240 };
    let shards = shard_count_from_env(8);

    // Injected chaos panics (shard-level heartbeat kills and pair-level
    // analysis panics) are contained by the watchdogs; silence only those
    // in the default panic hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos:"));
        if !expected {
            default_hook(info);
        }
    }));

    let root = temp_root();
    let config = ShardedFleetConfig {
        shards,
        base: SupervisorConfig {
            window_quanta: 8,
            ..SupervisorConfig::default()
        },
        ..ShardedFleetConfig::default()
    };
    let mut fleet = ShardedFleet::with_store_root(config, &root).expect("valid fleet");

    // Pair 0 is the planted covert channel; 1..ACTIVE_PAIRS are chatty
    // benign neighbours; the rest are the quiet long tail.
    fleet
        .add_contention_pair("covert-bus: pid 17 <-> pid 23")
        .expect("covert pair");
    for i in 1..pairs {
        fleet
            .add_contention_pair(format!(
                "pair-{i:05}: pid {} <-> pid {}",
                100 + i,
                20_000 + i
            ))
            .expect("benign pair");
    }
    assert_eq!(fleet.len(), pairs);

    // The chaos schedule, in coordinator ticks.
    let checkpoint_every = ticks / 4;
    let kill_first = checkpoint_every + 2; // covert pair's home, post-checkpoint
    let kill_second = kill_first + 5; // covert pair's *new* home (fresh state → degraded import)
    let revive_all_at = ticks / 2;
    let panic_kill_at = revive_all_at + ticks / 8; // organic death via the heartbeat watchdog
    let revive_last_at = ticks - ticks / 8;

    let started = Instant::now();
    let mut tick_us: Vec<u64> = Vec::with_capacity(ticks as usize);
    let mut deaths_seen = 0usize;
    let mut migrated_total = 0usize;
    let mut degraded_imports_total = 0usize;
    let mut orphaned_total = 0usize;
    let mut heartbeat_misses_total = 0usize;
    let mut benign_flips = 0u64;
    let mut covert_convictions_after_migration = 0u64;
    let mut forced_migrations = 0u64;

    for tick in 0..ticks {
        if tick > 0 && tick.is_multiple_of(checkpoint_every) {
            fleet.checkpoint().expect("fleet checkpoint");
        }
        if tick == kill_first || tick == kill_second {
            let home = fleet.shard_of(0).expect("covert pair is hosted");
            let report = fleet.kill_shard(home).expect("shard killed");
            forced_migrations += 1;
            migrated_total += report.migrated;
            degraded_imports_total += report.degraded_imports;
            orphaned_total += report.orphaned;
            deaths_seen += 1;
            println!(
                "tick {tick:>4}: killed shard {home} (covert home) — {} migrated, {} degraded, {} orphaned",
                report.migrated, report.degraded_imports, report.orphaned
            );
        }
        if tick == panic_kill_at {
            // Let the heartbeat watchdog declare this death on its own.
            let home = fleet.shard_of(0).expect("covert pair is hosted");
            let dead_after = fleet.config().dead_after;
            fleet.panic_shard(home, dead_after).expect("chaos armed");
            println!("tick {tick:>4}: armed {dead_after} chaos panics on shard {home}");
        }
        if tick == revive_all_at || tick == revive_last_at {
            for status in fleet.shard_statuses() {
                if status.health == ShardHealth::Dead {
                    let report = fleet.revive_shard(status.index).expect("shard revived");
                    migrated_total += report.migrated;
                    println!(
                        "tick {tick:>4}: revived shard {} ({} orphans adopted)",
                        status.index, report.migrated
                    );
                }
            }
        }

        let mut probe = |pair: usize, _tick: u64, _attempt: u32| -> Result<PairInput, ProbeFault> {
            if pair == 0 {
                return Ok(PairInput::Harvest(Harvest::Complete(covert_histogram(
                    tick,
                ))));
            }
            if pair < ACTIVE_PAIRS {
                // One chatty neighbour's analysis panics now and then: the
                // pair watchdog (inside the shard) must contain it.
                if pair == 7 && tick.is_multiple_of(37) {
                    return Ok(PairInput::Chaos(ChaosOp::Panic));
                }
                return Ok(PairInput::Harvest(Harvest::Complete(quiet_histogram(
                    tick + pair as u64,
                ))));
            }
            Ok(PairInput::Missed)
        };
        let t0 = Instant::now();
        let report = fleet.tick(&mut probe);
        tick_us.push(t0.elapsed().as_micros() as u64);

        heartbeat_misses_total += report.heartbeat_misses.len();
        deaths_seen += report.deaths.len();
        migrated_total += report.migration.migrated;
        degraded_imports_total += report.migration.degraded_imports;
        orphaned_total += report.migration.orphaned;
        if !report.deaths.is_empty() {
            println!(
                "tick {tick:>4}: watchdog buried shards {:?} — {} migrated",
                report.deaths, report.migration.migrated
            );
        }

        if tick.is_multiple_of(25) || tick + 1 == ticks {
            let statuses = fleet.pair_statuses();
            assert_eq!(statuses.len(), pairs, "every pair accounted for");
            if statuses[0].verdict.is_covert() && forced_migrations > 0 {
                covert_convictions_after_migration += 1;
            }
            if statuses[1..].iter().any(|s| s.verdict.is_covert()) {
                benign_flips += 1;
            }
        }
    }
    let elapsed = started.elapsed();

    tick_us.sort_unstable();
    let pct = |p: f64| tick_us[((tick_us.len() - 1) as f64 * p) as usize];
    let (p50_us, p99_us) = (pct(0.50), pct(0.99));

    let statuses = fleet.pair_statuses();
    let shard_statuses = fleet.shard_statuses();
    let snap = fleet.metrics_snapshot();
    let live = fleet.live_shard_ids().len();
    let degraded_pairs = statuses.iter().filter(|s| s.degraded).count();
    let orphans_final = statuses.iter().filter(|s| s.shard.is_none()).count();

    println!();
    println!(
        "soak: {ticks} ticks x {pairs} pairs x {shards} shards in {:.2?}",
        elapsed
    );
    println!("latency: p50 {p50_us} us, p99 {p99_us} us; {live}/{shards} shards live at end");
    println!(
        "chaos: {deaths_seen} deaths, {heartbeat_misses_total} heartbeat misses, \
         {migrated_total} pair migrations, {degraded_imports_total} degraded imports, \
         {orphaned_total} transiently orphaned"
    );
    println!(
        "fleet: {} contained failures, {} panics, verdict[covert-pair] = {}, {} degraded pairs",
        snap.failures, snap.panics, statuses[0].verdict, degraded_pairs
    );

    // The sharding contract, asserted every run.
    assert!(deaths_seen >= 3, "two forced kills plus one watchdog death");
    assert!(forced_migrations >= 2, "covert pair force-migrated twice");
    assert!(migrated_total > 0, "migrations happened");
    assert_eq!(orphans_final, 0, "no pair left orphaned after revival");
    assert_eq!(statuses.len(), pairs, "zero lost pairs");
    assert_eq!(live, shards, "every shard revived by the end");
    assert!(
        statuses[0].verdict.is_covert(),
        "planted covert pair convicted at end-of-run: {:?}",
        statuses[0]
    );
    assert!(
        covert_convictions_after_migration > 0,
        "covert pair re-convicted after migration"
    );
    assert_eq!(benign_flips, 0, "no quiet pair ever flips covert");
    assert!(
        statuses[1..].iter().all(|s| !s.verdict.is_covert()),
        "quiet pairs end non-covert"
    );
    assert!(snap.panics > 0, "pair-level chaos panics were contained");
    assert!(
        heartbeat_misses_total >= fleet.config().dead_after as usize,
        "shard-level chaos tripped the heartbeat watchdog"
    );

    // Machine-readable summary for the CI artifact.
    let shard_json: Vec<String> = shard_statuses
        .iter()
        .map(|s| {
            format!(
                "    {{ \"shard\": {}, \"pairs\": {}, \"deaths\": {}, \"panics\": {}, \"last_tick_us\": {} }}",
                s.index, s.pairs, s.deaths, s.panics, s.last_tick_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"ticks\": {ticks},\n  \"pairs\": {pairs},\n  \"shards\": {shards},\n  \
         \"quick\": {quick},\n  \"elapsed_ms\": {},\n  \"tick_p50_us\": {p50_us},\n  \
         \"tick_p99_us\": {p99_us},\n  \"deaths\": {deaths_seen},\n  \
         \"heartbeat_misses\": {heartbeat_misses_total},\n  \"migrated\": {migrated_total},\n  \
         \"degraded_imports\": {degraded_imports_total},\n  \
         \"transient_orphans\": {orphaned_total},\n  \"final_orphans\": {orphans_final},\n  \
         \"degraded_pairs\": {degraded_pairs},\n  \"benign_covert_flips\": {benign_flips},\n  \
         \"covert_verdict\": \"{}\",\n  \"contained_failures\": {},\n  \
         \"shard_statuses\": [\n{}\n  ]\n}}\n",
        elapsed.as_millis(),
        statuses[0].verdict,
        snap.failures,
        shard_json.join(",\n"),
    );
    std::fs::write("soak_sharded.json", &json).expect("summary written");
    println!();
    println!("summary written to soak_sharded.json");

    let _ = std::fs::remove_dir_all(&root);
}
