//! The deployed-daemon view: a streaming CC-Hunter that ingests the
//! CC-auditor's buffers quantum by quantum and raises (and later clears)
//! its alarm as a covert channel starts and stops mid-run.
//!
//! ```sh
//! cargo run --example online_daemon
//! ```

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{BitClock, BusChannelConfig, BusSpy, BusTrojan, Message, SpyLog};
use cc_hunter::detector::online::OnlineContentionDetector;
use cc_hunter::detector::{CcHunterConfig, DeltaTPolicy, Verdict};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_standard_noise;

fn main() {
    let quantum = 2_500_000u64;
    let config = MachineConfig::builder()
        .quantum_cycles(quantum)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(config);

    // The channel only transmits during the middle third of the run: the
    // daemon should stay quiet, alarm, then stand down.
    let quiet_head = 6u64;
    let message = Message::alternating(60); // 6 quanta of transmission
    let clock = BitClock::new(quiet_head * quantum, 250_000);
    let channel = BusChannelConfig::new(message, clock);
    let log = SpyLog::new_handle();
    machine.spawn(
        Box::new(BusTrojan::new(channel.clone(), 0x1000_0000)),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(BusSpy::new(channel, 0x4000_0000, log)),
        machine.config().context_id(1, 0),
    );
    spawn_standard_noise(&mut machine, 0, 3, 3);

    let mut session = AuditSession::new();
    session.audit_bus(100_000).expect("bus audit");
    session.attach(&mut machine);

    let hunter_config = CcHunterConfig {
        quantum_cycles: quantum,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    };
    // A short sliding window so the alarm clears quickly after the channel
    // stops (production would use up to 512 quanta).
    let mut daemon = OnlineContentionDetector::new(hunter_config, 4).expect("nonzero window");

    let runner = QuantumRunner::new(quantum).expect("nonzero quantum");
    let mut alarm_history = Vec::new();
    println!("quantum | bursty | LR    | conf | daemon");
    for q in 0..18 {
        let data = runner
            .run(&mut machine, &mut session, 1)
            .expect("audit harvest");
        let histogram = data.bus_histograms.into_iter().next().expect("one quantum");
        let status = daemon.push_quantum(histogram);
        let burst = status.quantum_burst.expect("contention path");
        println!(
            "{q:>7} | {:>6} | {:>5.3} | {:>4.2} | {}",
            burst.significant, burst.likelihood_ratio, status.confidence, status.verdict
        );
        alarm_history.push(status.verdict);
    }

    let alarms: Vec<usize> = alarm_history
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_covert())
        .map(|(i, _)| i)
        .collect();
    assert!(
        alarm_history[..quiet_head as usize]
            .iter()
            .all(|v| *v == Verdict::Clean),
        "no alarm before the channel starts"
    );
    assert!(!alarms.is_empty(), "the transmission must be caught");
    assert_eq!(
        *alarm_history.last().unwrap(),
        Verdict::Clean,
        "the alarm stands down after the channel ends"
    );
    println!();
    println!("alarm raised during quanta {alarms:?} — exactly the transmission window");
}
