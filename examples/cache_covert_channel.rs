//! The shared-L2 cache covert channel end-to-end: the spy decodes the
//! message from G1/G0 probe-latency ratios, while CC-Hunter's oscillation
//! detector exposes the channel from its conflict-miss autocorrelogram.
//!
//! ```sh
//! cargo run --example cache_covert_channel
//! ```

use cc_hunter::audit::{AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::channels::{
    BitClock, CacheChannelConfig, CacheSpy, CacheTrojan, DecodeRule, Message, SpyLog,
};
use cc_hunter::detector::pipeline::Detection;
use cc_hunter::detector::{Autocorrelogram, CcHunter, CcHunterConfig};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_standard_noise;

fn main() {
    let quantum = 10_000_000u64;
    let config = MachineConfig::builder()
        .quantum_cycles(quantum)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(config);

    // 256 cache sets split into G1/G0 — the largest configuration whose
    // working set fits any capacity-honest conflict tracker's recency
    // window (see EXPERIMENTS.md's Figure 8 note; the paper's own
    // Figure 13 sweeps 64–256 sets).
    let secret = Message::from_u64(0x5500_BEEF_1234_CAFE);
    let total_sets = 256;
    let clock = BitClock::new(1_000_000, 2_500_000);
    let channel = CacheChannelConfig::new(secret.clone(), clock, total_sets);
    let log = SpyLog::new_handle();
    // Trojan and spy are hyperthreads of core 0, sharing its L2.
    machine.spawn(
        Box::new(CacheTrojan::new(channel.clone())),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(CacheSpy::new(channel, log.clone())),
        machine.config().context_id(0, 1),
    );
    spawn_standard_noise(&mut machine, 0, 3, 7);

    // Audit core 0's shared cache with the practical conflict-miss tracker.
    let total_blocks = machine.config().l2.total_blocks() as usize;
    let mut session = AuditSession::new();
    session
        .audit_cache(0, total_blocks, TrackerKind::Practical)
        .expect("cache audit");
    session.attach(&mut machine);

    let quanta = 18;
    let data = QuantumRunner::new(quantum)
        .expect("nonzero quantum")
        .run(&mut machine, &mut session, quanta)
        .expect("audit harvest");

    let decoded = log
        .borrow()
        .decode(DecodeRule::FixedThreshold(1.0), secret.len());
    println!("secret sent    : {secret}");
    println!("spy decoded    : {decoded}");
    println!(
        "bit error rate : {:.1}%",
        secret.bit_error_rate(&decoded) * 100.0
    );
    let (conflicts, total) = session.cache_miss_counts();
    println!("L2 misses      : {total} ({conflicts} classified conflict)");

    // The autocorrelogram of the conflict-miss symbol series.
    let series =
        cc_hunter::detector::pipeline::symbol_series(&data.conflicts, data.start, data.end);
    let correlogram = Autocorrelogram::of_symbols(&series, 1000);
    let (lag, value) = correlogram
        .dominant_peak(8, 0.0)
        .expect("periodic conflict train");
    println!(
        "autocorrelogram: dominant peak r = {value:.3} at lag {lag} (total sets = {total_sets})"
    );

    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: quantum,
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_oscillation(&data.conflicts, data.start, data.end);
    println!("{}", Detection::from_oscillation("shared-L2", &report));
    assert!(report.verdict.is_covert(), "the channel must be detected");
}
