//! Detection strength vs. channel bandwidth: the bus channel's likelihood
//! ratio stays above 0.9 across three orders of magnitude of bandwidth
//! (the paper's Figure 10, scaled down for a quick demo).
//!
//! ```sh
//! cargo run --release --example bandwidth_sweep
//! ```

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{BitClock, BusChannelConfig, BusSpy, BusTrojan, Message, SpyLog};
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_standard_noise;

fn main() {
    let quantum = 2_500_000u64;
    println!("bit interval (cycles) | quanta | peak LR | verdict");
    for bit_cycles in [250_000u64, 2_500_000, 25_000_000] {
        let bits = (quantum * 16 / bit_cycles).clamp(4, 64) as usize;
        let config = MachineConfig::builder()
            .quantum_cycles(quantum)
            .build()
            .expect("valid config");
        let mut machine = Machine::new(config);
        let message = Message::alternating(bits);
        let clock = BitClock::new(50_000, bit_cycles);
        let channel = BusChannelConfig::new(message, clock);
        let log = SpyLog::new_handle();
        machine.spawn(
            Box::new(BusTrojan::new(channel.clone(), 0x1000_0000)),
            machine.config().context_id(0, 0),
        );
        machine.spawn(
            Box::new(BusSpy::new(channel, 0x4000_0000, log)),
            machine.config().context_id(1, 0),
        );
        spawn_standard_noise(&mut machine, 0, 3, 5);

        let mut session = AuditSession::new();
        session.audit_bus(100_000).expect("bus audit");
        session.attach(&mut machine);
        let quanta = ((bit_cycles * bits as u64) / quantum + 1) as usize;
        let data = QuantumRunner::new(quantum)
            .expect("nonzero quantum")
            .run(&mut machine, &mut session, quanta)
            .expect("audit harvest");

        let hunter = CcHunter::new(CcHunterConfig {
            quantum_cycles: quantum,
            delta_t: DeltaTPolicy::Fixed(100_000),
            ..CcHunterConfig::default()
        });
        let report = hunter.analyze_contention(data.bus_histograms);
        println!(
            "{bit_cycles:>21} | {quanta:>6} | {:>7.3} | {}",
            report.peak_likelihood_ratio, report.verdict
        );
        assert!(
            report.verdict.is_covert(),
            "bus channel at bit interval {bit_cycles} must be detected"
        );
    }
}
