//! The audit service view: a supervisor driving an 8-pair fleet through
//! fault injection, a contained analysis panic, a simulated daemon crash
//! (drop + restore from the durable checkpoint store), and the quarantine
//! and recovery of a wedged monitor — ending with the per-pair status
//! table an operator would read.
//!
//! ```sh
//! cargo run --example supervised_audit
//! ```

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{BitClock, BusChannelConfig, BusSpy, BusTrojan, Message, SpyLog};
use cc_hunter::detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cc_hunter::detector::online::Harvest;
use cc_hunter::detector::policy::{BreakerState, QuarantineConfig};
use cc_hunter::detector::store::CheckpointStore;
use cc_hunter::detector::supervisor::{
    ChaosOp, PairInput, PairOutcome, ProbeFault, Supervisor, SupervisorConfig,
};
use cc_hunter::detector::{CcHunterConfig, DeltaTPolicy, Verdict};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::{FaultClass, FaultConfig, FaultInjector};

const QUANTUM: u64 = 2_500_000;
const TICKS: u64 = 40;
const CRASH_AT: u64 = 20;
const PANIC_AT: u64 = 12;
const WEDGED_UNTIL: u64 = 28;

/// A covert-looking synthetic bus/divider histogram.
fn covert_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_400 + (tick % 7) * 3;
    bins[19] = 20;
    bins[20] = 150 + (tick % 5);
    bins[21] = 25;
    DensityHistogram::from_bins(bins, 100_000).expect("valid bins")
}

/// A benign synthetic histogram.
fn quiet_histogram(tick: u64) -> DensityHistogram {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 2_490 + (tick % 9);
    bins[1] = 5;
    DensityHistogram::from_bins(bins, 100_000).expect("valid bins")
}

/// A strongly periodic covert conflict batch.
fn covert_conflicts(tick: u64) -> Vec<cc_hunter::detector::auditor::ConflictRecord> {
    (0..128u64)
        .map(|i| cc_hunter::detector::auditor::ConflictRecord {
            cycle: tick * QUANTUM + i * 700,
            replacer: if i % 2 == 0 { 2 } else { 5 },
            victim: if i % 2 == 0 { 5 } else { 2 },
        })
        .collect()
}

/// A sparse, aperiodic (benign) conflict batch.
fn quiet_conflicts(tick: u64) -> Vec<cc_hunter::detector::auditor::ConflictRecord> {
    (0..12u64)
        .map(|i| cc_hunter::detector::auditor::ConflictRecord {
            cycle: tick * QUANTUM + i * i * 3_517 + (tick % 11) * 101,
            replacer: ((i * 5 + tick) % 7) as u8,
            victim: ((i * 3 + tick / 2) % 7) as u8,
        })
        .collect()
}

/// The hardware half of pair 0: a simulated machine with a real bus covert
/// channel, audited by the CC-auditor model and stepped one quantum per
/// supervisor tick. The machine (the "hardware") keeps running when the
/// audit service crashes; only the supervisor's in-memory state is lost.
struct BusRig {
    machine: Machine,
    session: AuditSession,
    runner: QuantumRunner,
    injector: FaultInjector,
    /// Last clean harvest, so a retried probe can model a successful
    /// buffer re-read instead of advancing the hardware again.
    last_clean: Option<DensityHistogram>,
}

impl BusRig {
    fn new() -> Self {
        let config = MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .expect("valid config");
        let mut machine = Machine::new(config);
        let message = Message::alternating(TICKS as usize * 10);
        let clock = BitClock::new(0, 250_000);
        let channel = BusChannelConfig::new(message, clock);
        let log = SpyLog::new_handle();
        machine.spawn(
            Box::new(BusTrojan::new(channel.clone(), 0x1000_0000)),
            machine.config().context_id(0, 0),
        );
        machine.spawn(
            Box::new(BusSpy::new(channel, 0x4000_0000, log)),
            machine.config().context_id(1, 0),
        );
        let mut session = AuditSession::new();
        session.audit_bus(100_000).expect("bus audit");
        session.attach(&mut machine);
        BusRig {
            machine,
            session,
            runner: QuantumRunner::new(QUANTUM).expect("nonzero quantum"),
            injector: FaultInjector::new(
                FaultConfig::only(FaultClass::DroppedQuantum)
                    .with_rate(FaultClass::DroppedQuantum, 0.15),
                0xB5_0001,
            ),
            last_clean: None,
        }
    }

    fn probe(&mut self, attempt: u32) -> PairInput {
        if attempt > 0 {
            // Retry: the auditor's buffer is still there — re-read it.
            if let Some(h) = self.last_clean.take() {
                return PairInput::Harvest(Harvest::Complete(h));
            }
            return PairInput::Missed;
        }
        let quantum = self
            .runner
            .run_quantum_with_injector(&mut self.machine, &mut self.session, &mut self.injector)
            .expect("audit harvest");
        match quantum.bus.expect("bus is audited") {
            Harvest::Missed => {
                // The injector dropped the read-out; keep the clean
                // histogram around for the retry path. (A real collector
                // would re-issue the harvest instruction.)
                self.last_clean = self
                    .session
                    .harvest_bus_histogram(quantum.boundary)
                    .ok()
                    .or_else(|| Some(quiet_histogram(0)));
                PairInput::Missed
            }
            harvest => PairInput::Harvest(harvest),
        }
    }
}

fn fleet_config() -> SupervisorConfig {
    SupervisorConfig {
        hunter: CcHunterConfig {
            quantum_cycles: QUANTUM,
            delta_t: DeltaTPolicy::Fixed(100_000),
            ..CcHunterConfig::default()
        },
        window_quanta: 8,
        deadline_us: 0,
        checkpoint_every: 5,
        quarantine: QuarantineConfig {
            failure_window: 6,
            trip_threshold: 0.5,
            min_observations: 4,
            probe_interval: 4,
            recovery_successes: 2,
            confidence_decay: 0.7,
        },
        ..SupervisorConfig::default()
    }
}

fn build_fleet(store: CheckpointStore) -> Supervisor {
    let mut fleet = Supervisor::new(fleet_config())
        .expect("valid fleet config")
        .with_store(store);
    for label in [
        "memory-bus: pid 17 <-> pid 23 (simulated hardware)",
        "memory-bus: pid 8 <-> pid 31",
        "divider: pid 4 <-> pid 9",
        "multiplier: pid 5 <-> pid 12",
    ] {
        fleet.add_contention_pair(label).expect("valid pair");
    }
    fleet
        .add_oscillation_pair("l2-cache: pid 17 <-> pid 23")
        .expect("valid pair");
    fleet
        .add_oscillation_pair("l1-cache: pid 2 <-> pid 6")
        .expect("valid pair");
    fleet
        .add_contention_pair("divider: pid 40 <-> pid 41 (flaky analysis)")
        .expect("valid pair");
    fleet
        .add_contention_pair("memory-bus: pid 50 <-> pid 51 (wedged monitor)")
        .expect("valid pair");
    fleet
}

fn main() {
    let store_dir =
        std::env::temp_dir().join(format!("cchunter-supervised-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let mut rig = BusRig::new();
    // Pair 5's collector is degraded but functional: partial harvests.
    let mut flaky_injector = FaultInjector::new(
        FaultConfig::only(FaultClass::TruncatedHistogram)
            .with_rate(FaultClass::TruncatedHistogram, 0.4),
        0xB5_0002,
    );

    // One probe closure drives all 8 pairs; it is a pure function of
    // (pair, tick, attempt) except for the simulated hardware, which
    // outlives the audit service on purpose.
    let mut probe = move |pair: usize, tick: u64, attempt: u32| -> Result<PairInput, ProbeFault> {
        Ok(match pair {
            0 => rig.probe(attempt),
            1 => PairInput::Harvest(Harvest::Complete(covert_histogram(tick))),
            2 => PairInput::Harvest(Harvest::Complete(quiet_histogram(tick))),
            3 => PairInput::Harvest(flaky_injector.perturb_harvest(quiet_histogram(tick))),
            4 => PairInput::Conflicts {
                records: covert_conflicts(tick),
                lost_fraction: 0.0,
            },
            5 => PairInput::Conflicts {
                records: quiet_conflicts(tick),
                lost_fraction: 0.0,
            },
            6 if tick == PANIC_AT && attempt == 0 => PairInput::Chaos(ChaosOp::Panic),
            6 => PairInput::Harvest(Harvest::Complete(covert_histogram(tick))),
            _ if tick < WEDGED_UNTIL => {
                return Err(ProbeFault {
                    reason: "hardware interface wedged".to_string(),
                })
            }
            _ => PairInput::Harvest(Harvest::Complete(covert_histogram(tick))),
        })
    };

    // The injected chaos panic is caught by the supervisor's watchdog, but
    // the default panic hook would still splat a backtrace over the demo;
    // keep the hook for everything except that expected panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos:"));
        if !expected {
            default_hook(info);
        }
    }));

    let mut fleet = build_fleet(CheckpointStore::open(&store_dir, 3).expect("store opens"));
    println!("supervised audit service: 8 pairs, checkpoint every 5 quanta");
    println!("store: {}", store_dir.display());
    println!();

    let log_tick = |report: &cc_hunter::detector::supervisor::TickReport| {
        for r in &report.reports {
            match &r.outcome {
                PairOutcome::Failed { error, recovery } => {
                    println!(
                        "tick {:>2}: pair {} PANIC contained ({error}); recovery: {recovery:?}",
                        report.tick, r.pair
                    );
                }
                PairOutcome::Skipped { confidence } if report.tick.is_multiple_of(4) => {
                    println!(
                        "tick {:>2}: pair {} quarantined (reported confidence {confidence:.2})",
                        report.tick, r.pair
                    );
                }
                _ => {}
            }
            if matches!(r.health, BreakerState::Open { .. }) && r.retries > 0 {
                println!(
                    "tick {:>2}: pair {} tripped its breaker",
                    report.tick, r.pair
                );
            }
        }
        if let Some(generation) = report.checkpoint_generation {
            println!(
                "tick {:>2}: fleet checkpointed (generation {generation})",
                report.tick
            );
        }
    };

    for _ in 0..CRASH_AT {
        let report = fleet.tick(&mut probe);
        log_tick(&report);
    }

    // --- Simulated crash: the service dies with all in-memory state. ---
    println!();
    println!("*** audit service crashed at quantum {CRASH_AT} — restarting from the store ***");
    drop(fleet);
    let (mut fleet, restore_report) = Supervisor::restore(
        fleet_config(),
        CheckpointStore::open(&store_dir, 3).expect("store reopens"),
    )
    .expect("restore succeeds");
    println!(
        "restored 8 pairs at quantum {} from manifest generation {} ({} corrupt generations rolled over)",
        fleet.tick_count(),
        restore_report.manifest.generation,
        restore_report.total_rolled_back()
    );
    println!();
    assert_eq!(
        fleet.tick_count(),
        CRASH_AT,
        "auto-checkpoint at quantum 20"
    );

    for _ in fleet.tick_count()..TICKS {
        let report = fleet.tick(&mut probe);
        log_tick(&report);
    }

    // --- The operator's status table. ---
    println!();
    println!("pair | health     | fail% | verdict | panics | retries | restored | label");
    println!("-----+------------+-------+---------+--------+---------+----------+------");
    let statuses = fleet.pair_statuses();
    for s in &statuses {
        println!(
            "{:>4} | {:<10} | {:>5.1} | {:<7} | {:>6} | {:>7} | {:<8} | {}",
            s.index,
            s.health.to_string(),
            s.failure_rate * 100.0,
            s.verdict.to_string(),
            s.panics,
            s.retries,
            s.restored_from
                .map(|r| format!("gen {}", r.generation))
                .unwrap_or_else(|| "-".to_string()),
            s.label
        );
    }

    // The story the run must tell, every time.
    assert!(
        statuses[0].verdict.is_covert(),
        "simulated bus channel caught"
    );
    assert!(
        statuses[1].verdict.is_covert(),
        "synthetic bus channel caught"
    );
    assert_eq!(
        statuses[2].verdict,
        Verdict::Clean,
        "clean divider stays clean"
    );
    assert_eq!(
        statuses[3].verdict,
        Verdict::Clean,
        "flaky-but-benign multiplier stays clean"
    );
    assert!(statuses[4].verdict.is_covert(), "cache oscillation caught");
    assert_eq!(
        statuses[5].verdict,
        Verdict::Clean,
        "benign cache stays clean"
    );
    assert!(
        statuses[6].verdict.is_covert(),
        "pair recovers after contained panic"
    );
    assert_eq!(statuses[6].panics, 1, "exactly one contained panic");
    assert!(
        statuses[7].failures >= 4,
        "wedged monitor accumulated failures"
    );
    assert!(
        statuses.iter().all(|s| s.restored_from.is_some()),
        "every pair carries restore provenance after the crash"
    );
    println!();
    println!(
        "fleet survived a crash, {} contained panic(s), and a wedged monitor — {} quanta audited",
        statuses.iter().map(|s| s.panics).sum::<u64>(),
        fleet.tick_count()
    );

    let _ = std::fs::remove_dir_all(&store_dir);
}
