//! Chaos soak for the hardened ingest layer: a supervised fleet fed for
//! thousands of OS quanta through admission queues, sanitizers, and
//! saturating accumulators while an adversary floods the buses, feeds
//! hostile event trains, and the analysis itself is made to panic.
//!
//! The harness asserts the robustness contract end to end: no panic
//! escapes, memory stays bounded by the admission capacity, per-push cost
//! stays O(1)-cheap, the benign pair never flips covert, the flooded
//! covert pair is still convicted under reservoir shedding, and every
//! shed/repair/drop is visible in the fleet's metrics snapshot. A summary
//! is written to `soak_ingest.json` for CI artifact upload.
//!
//! ```sh
//! cargo run --release --example soak_ingest        # full soak (2 500 quanta)
//! CCHUNTER_SOAK_QUICK=1 cargo run --example soak_ingest   # CI smoke (250)
//! ```

use cc_hunter::detector::policy::mix_seed;
use cc_hunter::detector::supervisor::{
    ChaosOp, PairInput, ProbeFault, Supervisor, SupervisorConfig,
};
use cc_hunter::detector::{
    AdmissionConfig, IngestConfig, IngestPipeline, RawEvent, ShedPolicy, Verdict,
};
use cc_hunter::{FaultClass, FaultConfig, FaultInjector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const QUANTUM: u64 = 2_500_000;
const CAPACITY: usize = 512;
const PAIRS: usize = 4;

/// Per-(pair, tick) deterministic event streams.
///
/// * pair 0 — benign trickle: sparse well-formed events.
/// * pair 1 — flooded covert channel: bursty foreground + a ~5× uniform
///   benign flood that overwhelms the admission queue every quantum.
/// * pair 2 — hostile feed: duplicates, zero-Δt packing, time travel, and
///   out-of-range context IDs on top of a benign base train.
/// * pair 3 — benign trickle whose *harvest* is then mangled by the fault
///   injector (dropped/truncated read-outs).
fn events_for(pair: usize, tick: u64, start: u64, end: u64) -> Vec<RawEvent> {
    let mut rng = SmallRng::seed_from_u64(mix_seed(0x50CC, pair as u64, tick));
    let span = end - start;
    let mut events = Vec::new();
    match pair {
        1 => {
            // The covert channel: 10 bursts of 30 back-to-back events.
            for burst in 0..10u64 {
                let base = start + burst * span / 10;
                for i in 0..30u64 {
                    events.push(RawEvent {
                        time: base + i * 97,
                        weight: 1,
                        context: (i % 2) as u8,
                    });
                }
            }
            // The flood: chatty neighbours at ~4× the channel's volume.
            for _ in 0..1_200 {
                events.push(RawEvent {
                    time: start + rng.gen_range(0..span),
                    weight: 1,
                    context: rng.gen_range(2..8u64) as u8,
                });
            }
            events.sort_by_key(|e| e.time);
        }
        2 => {
            for _ in 0..300 {
                events.push(RawEvent {
                    time: start + rng.gen_range(0..span),
                    weight: 1,
                    context: rng.gen_range(0..8u64) as u8,
                });
            }
            events.sort_by_key(|e| e.time);
            for i in 0..25usize {
                let dup = events[i * events.len() / 25];
                events.push(dup); // exact duplicates
            }
            let t = start + span / 2;
            for i in 0..2_000u64 {
                events.push(RawEvent {
                    time: t, // zero-Δt packing attack
                    weight: 1,
                    context: (i % 8) as u8,
                });
            }
            for _ in 0..20 {
                events.push(RawEvent {
                    time: start.saturating_sub(500_000), // time travel
                    weight: 1,
                    context: 0,
                });
            }
            for _ in 0..20 {
                events.push(RawEvent {
                    time: end - 1,
                    weight: 1,
                    context: 250, // out-of-range context
                });
            }
        }
        _ => {
            // Benign trickle (pairs 0 and 3).
            for _ in 0..rng.gen_range(10..40) {
                events.push(RawEvent {
                    time: start + rng.gen_range(0..span),
                    weight: 1,
                    context: rng.gen_range(0..8u64) as u8,
                });
            }
            events.sort_by_key(|e| e.time);
            if pair == 3 {
                // The flaky collector also delivers slightly out of order,
                // within the sanitizer's bounded repair tolerance.
                for i in (3..events.len()).step_by(5) {
                    events[i].time = events[i - 1].time.saturating_sub(300);
                }
            }
        }
    }
    events
}

fn main() {
    let quick = std::env::var("CCHUNTER_SOAK_QUICK").is_ok_and(|v| v == "1");
    let ticks: u64 = if quick { 250 } else { 2_500 };

    // The injected chaos panics are contained by the supervisor's
    // watchdog; silence only those in the default panic hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos:"));
        if !expected {
            default_hook(info);
        }
    }));

    let mut fleet = Supervisor::new(SupervisorConfig {
        window_quanta: 32,
        ..SupervisorConfig::default()
    })
    .expect("valid fleet config");
    let labels = [
        "benign-bus: pid 8 <-> pid 31",
        "flooded-bus: pid 17 <-> pid 23",
        "hostile-feed: pid 50 <-> pid 51",
        "faulty-collector: pid 4 <-> pid 9",
    ];
    for label in labels {
        fleet.add_contention_pair(label).expect("valid pair");
    }

    let mut pipelines: Vec<IngestPipeline> = (0..PAIRS)
        .map(|pair| {
            IngestPipeline::new(IngestConfig {
                admission: AdmissionConfig {
                    capacity: CAPACITY,
                    policy: if pair == 1 {
                        ShedPolicy::Reservoir { seed: 0xD1CE }
                    } else {
                        ShedPolicy::DropOldest
                    },
                },
                // Δt per resource, following each pair's mean event rate.
                delta_t: if pair == 1 || pair == 2 {
                    100_000
                } else {
                    10_000
                },
                ..IngestConfig::default()
            })
            .expect("valid ingest config")
        })
        .collect();
    let stats: Vec<_> = pipelines.iter().map(|p| p.stats()).collect();
    for s in &stats {
        fleet.attach_ingest_stats(s.clone());
    }
    let mut injector = FaultInjector::new(
        FaultConfig::only(FaultClass::DroppedQuantum)
            .with_rate(FaultClass::DroppedQuantum, 0.1)
            .with_rate(FaultClass::TruncatedHistogram, 0.2),
        0xB5_0003,
    );

    let mut offers: u64 = 0;
    let mut offer_ns: u128 = 0;
    let mut max_queue = 0usize;

    let started = Instant::now();
    let mut benign_flips = 0u64;
    {
        let mut probe = |pair: usize, tick: u64, _attempt: u32| -> Result<PairInput, ProbeFault> {
            if pair == 2 && tick.is_multiple_of(97) {
                return Ok(PairInput::Chaos(ChaosOp::Panic));
            }
            let start = tick * QUANTUM;
            let end = start + QUANTUM;
            let pipeline = &mut pipelines[pair];
            let events = events_for(pair, tick, start, end);
            let t0 = Instant::now();
            for event in events {
                pipeline.offer(event);
                let len = pipeline.queue_len();
                assert!(len <= CAPACITY, "queue exceeded capacity: {len}");
                if len > max_queue {
                    max_queue = len;
                }
                offers += 1;
            }
            offer_ns += t0.elapsed().as_nanos();
            let (harvest, _report) = pipeline.end_quantum(start, end);
            if pair == 3 {
                // The collector between pipeline and daemon is flaky.
                if let Some(h) = harvest.histogram() {
                    return Ok(PairInput::Harvest(injector.perturb_harvest(h.clone())));
                }
            }
            Ok(PairInput::Harvest(harvest))
        };

        for tick in 0..ticks {
            fleet.tick(&mut probe);
            if tick.is_multiple_of(25) || tick + 1 == ticks {
                let statuses = fleet.pair_statuses();
                if statuses[0].verdict.is_covert() {
                    benign_flips += 1;
                }
                if tick.is_multiple_of(250) {
                    println!(
                        "tick {tick:>5}: verdicts [{}]",
                        statuses
                            .iter()
                            .map(|s| s.verdict.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
        }
    }
    let elapsed = started.elapsed();

    let snap = fleet.metrics_snapshot();
    let statuses = fleet.pair_statuses();
    let mean_push_ns = offer_ns as f64 / offers.max(1) as f64;

    println!();
    println!("soak: {ticks} quanta x {PAIRS} pairs in {:.2?}", elapsed);
    println!(
        "ingest: {} offered, {} shed, {} repaired, {} dropped, {} partial, {} missed",
        snap.ingest.events_offered,
        snap.ingest.events_shed,
        snap.ingest.events_repaired,
        snap.ingest.events_dropped,
        snap.ingest.partial_harvests,
        snap.ingest.missed_harvests,
    );
    println!(
        "bounds: max queue {max_queue}/{CAPACITY}, mean push {:.0} ns, {} contained failures",
        mean_push_ns, snap.failures
    );
    for s in &statuses {
        println!(
            "pair {}: {:<12} {}",
            s.index,
            s.verdict.to_string(),
            s.label
        );
    }

    // The robustness contract, asserted every run.
    assert_eq!(benign_flips, 0, "benign pair must never flip covert");
    assert_eq!(
        statuses[0].verdict,
        Verdict::Clean,
        "benign pair ends affirmatively clean"
    );
    assert!(
        statuses[1].verdict.is_covert(),
        "flooded covert pair must still be convicted under reservoir shedding: {:?}",
        statuses[1]
    );
    assert!(max_queue <= CAPACITY, "admission memory is bounded");
    assert!(
        mean_push_ns < 10_000.0,
        "per-push cost must stay O(1)-cheap, got {mean_push_ns:.0} ns"
    );
    assert!(
        snap.failures > 0,
        "chaos panics were injected and contained"
    );
    assert!(
        !snap.ingest.is_empty(),
        "ingest activity visible in metrics"
    );
    assert!(snap.ingest.events_shed > 0 && snap.ingest.events_dropped > 0);
    assert!(snap.ingest.events_repaired > 0, "reorder repair exercised");
    let offered_via_handles: u64 = stats.iter().map(|s| s.events_offered.get()).sum();
    assert_eq!(snap.ingest.events_offered, offered_via_handles);
    assert_eq!(snap.ingest.events_offered, offers);

    // Machine-readable summary for the CI artifact.
    let pair_json: Vec<String> = statuses
        .iter()
        .map(|s| {
            format!(
                "    {{ \"pair\": {}, \"label\": \"{}\", \"verdict\": \"{}\", \"panics\": {}, \"failures\": {} }}",
                s.index, s.label, s.verdict, s.panics, s.failures
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"ticks\": {ticks},\n  \"quick\": {quick},\n  \"elapsed_ms\": {},\n  \
         \"offers\": {offers},\n  \"mean_push_ns\": {mean_push_ns:.1},\n  \
         \"max_queue_len\": {max_queue},\n  \"capacity\": {CAPACITY},\n  \
         \"benign_covert_flips\": {benign_flips},\n  \"contained_failures\": {},\n  \
         \"ingest\": {{\n    \"events_offered\": {},\n    \"events_shed\": {},\n    \
         \"events_repaired\": {},\n    \"events_dropped\": {},\n    \
         \"saturated_quanta\": {},\n    \"quanta\": {},\n    \
         \"partial_harvests\": {},\n    \"missed_harvests\": {}\n  }},\n  \
         \"pairs\": [\n{}\n  ]\n}}\n",
        elapsed.as_millis(),
        snap.failures,
        snap.ingest.events_offered,
        snap.ingest.events_shed,
        snap.ingest.events_repaired,
        snap.ingest.events_dropped,
        snap.ingest.saturated_quanta,
        snap.ingest.quanta,
        snap.ingest.partial_harvests,
        snap.ingest.missed_harvests,
        pair_json.join(",\n"),
    );
    std::fs::write("soak_ingest.json", &json).expect("summary written");
    println!();
    println!("summary written to soak_ingest.json");
}
