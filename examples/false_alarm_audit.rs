//! False-alarm audit: run every benign benchmark pair of the paper's
//! Figure 14 under a bus + divider audit (and a separate cache audit) and
//! show that CC-Hunter stays quiet on all of them.
//!
//! ```sh
//! cargo run --example false_alarm_audit
//! ```

use cc_hunter::audit::{AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::figure14_pairs;
use cc_hunter::workloads::noise::spawn_standard_noise;

fn main() {
    let quantum = 2_500_000u64;
    let quanta = 8;
    let mut all_clean = true;

    for (label, a, b) in figure14_pairs() {
        // Contention audit: bus + divider of the pair's core.
        let config = MachineConfig::builder()
            .quantum_cycles(quantum)
            .build()
            .expect("valid config");
        let mut machine = Machine::new(config);
        machine.spawn(a, machine.config().context_id(0, 0));
        machine.spawn(b, machine.config().context_id(0, 1));
        spawn_standard_noise(&mut machine, 0, 3, 99);

        let mut session = AuditSession::new();
        session.audit_bus(100_000).expect("bus audit");
        session.audit_divider(0, 500).expect("divider audit");
        session.attach(&mut machine);
        let data = QuantumRunner::new(quantum)
            .expect("nonzero quantum")
            .run(&mut machine, &mut session, quanta)
            .expect("audit harvest");

        let hunter = CcHunter::new(CcHunterConfig {
            quantum_cycles: quantum,
            delta_t: DeltaTPolicy::Fixed(100_000),
            ..CcHunterConfig::default()
        });
        let bus = hunter.analyze_contention(data.bus_histograms);
        let div = hunter.analyze_contention(data.divider_histograms);

        // Cache audit needs the second run (the auditor monitors at most
        // two units at a time, §V-A).
        let (a2, b2) = rebuild_pair(label);
        let config = MachineConfig::builder()
            .quantum_cycles(quantum)
            .build()
            .expect("valid config");
        let mut machine = Machine::new(config);
        machine.spawn(a2, machine.config().context_id(0, 0));
        machine.spawn(b2, machine.config().context_id(0, 1));
        spawn_standard_noise(&mut machine, 0, 3, 99);
        let mut session = AuditSession::new();
        let blocks = machine.config().l2.total_blocks() as usize;
        session
            .audit_cache(0, blocks, TrackerKind::Practical)
            .expect("cache audit");
        session.attach(&mut machine);
        let data = QuantumRunner::new(quantum)
            .expect("nonzero quantum")
            .run(&mut machine, &mut session, quanta)
            .expect("audit harvest");
        let cache = hunter.analyze_oscillation(&data.conflicts, data.start, data.end);

        let clean =
            !bus.verdict.is_covert() && !div.verdict.is_covert() && !cache.verdict.is_covert();
        all_clean &= clean;
        println!(
            "{label:24} bus LR {:.3} | divider LR {:.3} | cache peak {} | {}",
            bus.peak_likelihood_ratio,
            div.peak_likelihood_ratio,
            cache
                .peak
                .map(|(lag, v)| format!("r={v:.2}@{lag}"))
                .unwrap_or_else(|| "-".into()),
            if clean { "clean" } else { "FALSE ALARM" }
        );
    }
    assert!(all_clean, "no benign pair may trip the detector");
    println!("\nzero false alarms across all pairs — matching the paper");
}

/// Fresh instances of a pair (program boxes are consumed by spawning).
fn rebuild_pair(
    label: &str,
) -> (
    Box<dyn cc_hunter::sim::Program>,
    Box<dyn cc_hunter::sim::Program>,
) {
    let (_, a, b) = figure14_pairs()
        .into_iter()
        .find(|(l, _, _)| *l == label)
        .expect("known pair");
    (a, b)
}
