//! Offline analysis workflow: record a run's indicator events to trace
//! files, then analyze the traces without the simulator — the same way the
//! detector would consume dumps from real hardware counters.
//!
//! ```sh
//! cargo run --example offline_trace_analysis
//! ```

use cc_hunter::audit::{AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::channels::{BitClock, CacheChannelConfig, CacheSpy, CacheTrojan, Message, SpyLog};
use cc_hunter::detector::pipeline::symbol_series;
use cc_hunter::detector::trace::{read_conflicts, write_conflicts};
use cc_hunter::detector::Autocorrelogram;
use cc_hunter::sim::{Machine, MachineConfig};

fn main() {
    let quantum = 10_000_000u64;
    let mut machine = Machine::new(
        MachineConfig::builder()
            .quantum_cycles(quantum)
            .build()
            .expect("valid config"),
    );
    let message = Message::alternating(48);
    let config = CacheChannelConfig::new(message, BitClock::new(1_000_000, 2_500_000), 256);
    let log = SpyLog::new_handle();
    machine.spawn(
        Box::new(CacheTrojan::new(config.clone())),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(CacheSpy::new(config, log)),
        machine.config().context_id(0, 1),
    );
    let mut session = AuditSession::new();
    let blocks = machine.config().l2.total_blocks() as usize;
    session
        .audit_cache(0, blocks, TrackerKind::Practical)
        .expect("cache audit");
    session.attach(&mut machine);
    let data = QuantumRunner::new(quantum)
        .expect("nonzero quantum")
        .run(&mut machine, &mut session, 18)
        .expect("audit harvest");

    // Phase 1: record the conflict trace to disk.
    let path = std::env::temp_dir().join("cc_hunter_conflicts.csv");
    let file = std::fs::File::create(&path).expect("create trace file");
    write_conflicts(&data.conflicts, file).expect("write trace");
    println!(
        "recorded {} conflict records to {}",
        data.conflicts.len(),
        path.display()
    );

    // Phase 2 (could run on another machine, another day): load and
    // analyze the trace alone.
    let file = std::fs::File::open(&path).expect("open trace file");
    let records = read_conflicts(file).expect("parse trace");
    assert_eq!(records.len(), data.conflicts.len());
    let series = symbol_series(&records, 0, u64::MAX);
    let correlogram = Autocorrelogram::of_symbols(&series, 600);
    let (lag, value) = correlogram
        .dominant_peak(8, 0.0)
        .expect("periodic conflict train");
    println!(
        "offline analysis: {} cross-context symbols, dominant peak r = {value:.3} at lag {lag}",
        series.len()
    );
    assert!(
        value > 0.85 && lag >= 256,
        "cache channel signature expected"
    );
    println!("the trace alone convicts the channel — no simulator required");
}
