//! Quickstart: run a memory-bus covert timing channel under realistic
//! background noise, audit the bus with the CC-auditor, and let CC-Hunter
//! call it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{
    BitClock, BusChannelConfig, BusSpy, BusTrojan, DecodeRule, Message, SpyLog,
};
use cc_hunter::detector::pipeline::Detection;
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_standard_noise;

fn main() {
    // A scaled machine: 2.5 M-cycle (1 ms) OS quanta keep the demo quick;
    // the experiment harness uses the paper's full 0.1 s quanta.
    let quantum = 2_500_000u64;
    let config = MachineConfig::builder()
        .quantum_cycles(quantum)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(config);

    // The trojan covertly transmits a "credit card number" to the spy by
    // locking the memory bus (atomic unaligned accesses) for '1' bits.
    let secret = Message::from_u64(0x4929_1273_5521_8674);
    let clock = BitClock::new(50_000, 250_000); // 10 kbps-equivalent, scaled
    let channel = BusChannelConfig::new(secret.clone(), clock);
    let log = SpyLog::new_handle();
    machine.spawn(
        Box::new(BusTrojan::new(channel.clone(), 0x1000_0000)),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(BusSpy::new(channel, 0x4000_0000, log.clone())),
        machine.config().context_id(1, 0),
    );
    // The paper's threat model: at least three other active processes.
    spawn_standard_noise(&mut machine, 0, 3, 42);

    // The administrator audits the memory bus (Δt = 100k cycles).
    let mut session = AuditSession::new();
    session.audit_bus(100_000).expect("bus audit");
    session.attach(&mut machine);

    // The daemon harvests the histogram buffers each quantum.
    let quanta = 8;
    let data = QuantumRunner::new(quantum)
        .expect("nonzero quantum")
        .run(&mut machine, &mut session, quanta)
        .expect("audit harvest");

    // CC-Hunter's recurrent-burst analysis.
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: quantum,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_contention(data.bus_histograms);

    let decoded = log.borrow().decode(DecodeRule::Midpoint, secret.len());
    println!("secret sent     : {secret}");
    println!("spy decoded     : {decoded}");
    println!(
        "bit error rate  : {:.1}%",
        secret.bit_error_rate(&decoded) * 100.0
    );
    println!();
    for (q, v) in report.quantum_verdicts.iter().enumerate() {
        println!(
            "quantum {q}: likelihood ratio {:.3} (burst peak {:?})",
            v.likelihood_ratio, v.burst_peak
        );
    }
    println!();
    println!("{}", Detection::from_contention("memory-bus", &report));
    assert!(report.verdict.is_covert(), "the channel must be detected");
}
