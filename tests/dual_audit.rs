//! The CC-auditor monitors up to two units at once (§V-A): one session can
//! convict two *simultaneously operating* covert channels on different
//! resources, and the strict paper-sized hardware (16-bit saturating
//! histogram entries) still detects at test scale.

mod common;

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{
    BitClock, BusChannelConfig, BusSpy, BusTrojan, DecodeRule, DividerChannelConfig, DividerSpy,
    DividerTrojan, Message, SpyLog,
};
use cc_hunter::detector::auditor::AuditorConfig;
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_standard_noise;
use common::QUANTUM;

fn machine() -> Machine {
    Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .unwrap(),
    )
}

#[test]
fn two_simultaneous_channels_are_both_detected_by_one_session() {
    let mut m = machine();
    // Channel 1: bus (trojan on core 0, spy on core 1).
    let bus_msg = Message::from_u64(0xAAAA_5555_0F0F_F0F0);
    let bus_cfg = BusChannelConfig::new(bus_msg.clone(), BitClock::new(50_000, 250_000));
    let bus_log = SpyLog::new_handle();
    m.spawn(
        Box::new(BusTrojan::new(bus_cfg.clone(), 0x1000_0000)),
        m.config().context_id(0, 0),
    );
    m.spawn(
        Box::new(BusSpy::new(bus_cfg, 0x4000_0000, bus_log.clone())),
        m.config().context_id(1, 0),
    );
    // Channel 2: divider (hyperthreads of core 2).
    let div_msg = Message::from_u64(0x1234_5678_9ABC_DEF0);
    let div_cfg = DividerChannelConfig::new(div_msg.clone(), BitClock::new(70_000, 250_000));
    let div_log = SpyLog::new_handle();
    m.spawn(
        Box::new(DividerTrojan::new(div_cfg.clone())),
        m.config().context_id(2, 0),
    );
    m.spawn(
        Box::new(DividerSpy::new(div_cfg, div_log.clone())),
        m.config().context_id(2, 1),
    );
    spawn_standard_noise(&mut m, 0, 2, 19);

    // One auditor, both slots in use.
    let mut session = AuditSession::new();
    session.audit_bus(100_000).unwrap();
    session.audit_divider(2, 500).unwrap();
    session.attach(&mut m);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, 8)
        .expect("audit harvest");

    // Both spies decode their secrets.
    let bus_decoded = bus_log.borrow().decode(DecodeRule::Midpoint, bus_msg.len());
    assert_eq!(bus_msg.bit_error_rate(&bus_decoded), 0.0);
    let div_decoded = div_log.borrow().decode(DecodeRule::Midpoint, div_msg.len());
    assert_eq!(div_msg.bit_error_rate(&div_decoded), 0.0);

    // Both channels are convicted from their respective histograms.
    let bus_report = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    })
    .analyze_contention(data.bus_histograms);
    assert!(bus_report.verdict.is_covert());
    let div_report = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(500),
        ..CcHunterConfig::default()
    })
    .analyze_contention(data.divider_histograms);
    assert!(div_report.verdict.is_covert());
}

#[test]
fn strict_16bit_hardware_still_detects_at_test_scale() {
    let mut m = machine();
    let msg = Message::alternating(64); // spans several quanta
    let cfg = BusChannelConfig::new(msg, BitClock::new(50_000, 250_000));
    let log = SpyLog::new_handle();
    m.spawn(
        Box::new(BusTrojan::new(cfg.clone(), 0x1000_0000)),
        m.config().context_id(0, 0),
    );
    m.spawn(
        Box::new(BusSpy::new(cfg, 0x4000_0000, log)),
        m.config().context_id(1, 0),
    );
    // The paper's exact buffer sizing, saturating 16-bit entries included.
    let mut session = AuditSession::with_config(AuditorConfig::paper_strict(), 2);
    session.audit_bus(100_000).unwrap();
    session.attach(&mut m);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, 8)
        .expect("audit harvest");
    let report = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    })
    .analyze_contention(data.bus_histograms);
    assert!(report.verdict.is_covert(), "{report:?}");
}
