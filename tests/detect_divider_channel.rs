//! End-to-end: the integer-divider covert channel between SMT hyperthreads
//! works and is detected from cross-context divider-wait cycles.

mod common;

use cc_hunter::channels::{DecodeRule, Message};
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use common::{run_divider_channel, QUANTUM};

fn hunter() -> CcHunter {
    CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        // The paper's divider Δt: 500 cycles (200 ns).
        delta_t: DeltaTPolicy::Fixed(500),
        ..CcHunterConfig::default()
    })
}

#[test]
fn spy_decodes_and_hunter_detects() {
    let message = Message::from_u64(0x4929_1273_5521_8674);
    let run = run_divider_channel(message.clone(), 250_000, 8);
    let decoded = run.log.borrow().decode(DecodeRule::Midpoint, message.len());
    assert_eq!(
        message.bit_error_rate(&decoded),
        0.0,
        "channel must work: sent {message} got {decoded}"
    );
    let report = hunter().analyze_contention(run.data.divider_histograms);
    assert!(report.verdict.is_covert());
    assert!(
        report.peak_likelihood_ratio > 0.9,
        "LR = {}",
        report.peak_likelihood_ratio
    );
}

#[test]
fn burst_distribution_sits_in_the_upper_bins() {
    // Figure 6b: wait-cycle densities form a prominent second distribution
    // far right of the benign region (paper: bins ≈ 84–105 at Δt = 500).
    let run = run_divider_channel(Message::from_bits(vec![true; 8]), 250_000, 2);
    let report = hunter().analyze_contention(run.data.divider_histograms);
    let v = report
        .quantum_verdicts
        .iter()
        .find(|v| v.significant)
        .expect("at least one bursty quantum");
    let peak = v.burst_peak.expect("burst peak");
    assert!(
        peak >= 40,
        "divider contention density must be far from benign bins, got {peak}"
    );
}

#[test]
fn all_zero_message_stays_clean() {
    let run = run_divider_channel(Message::from_bits(vec![false; 8]), 250_000, 8);
    let report = hunter().analyze_contention(run.data.divider_histograms);
    assert!(!report.verdict.is_covert(), "{report:?}");
}

#[test]
fn rate_derived_delta_t_also_detects() {
    // Δt from α/rate instead of the paper's fixed pick: the detector must
    // not depend on hand-tuned Δt.
    let message = Message::alternating(8);
    let run = run_divider_channel(message, 250_000, 8);
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::FromRate {
            alpha: 40.0,
            min: 100,
            max: 100_000,
        },
        ..CcHunterConfig::default()
    });
    let mut all = cc_hunter::detector::EventTrain::new();
    // Rebuild the raw train from histograms is impossible; instead rerun
    // the contention path over the harvested histograms directly — the
    // rate policy applies when building from trains, so exercise it on a
    // synthetic train with the same density here.
    for q in 0..8u64 {
        for b in 0..40u64 {
            for e in 0..50u64 {
                all.push(q * QUANTUM + b * 50_000 + e * 30, 1);
            }
        }
    }
    let report = hunter.analyze_contention_train(&all, 0, 8 * QUANTUM);
    assert!(report.verdict.is_covert());
    let _ = run;
}
