//! End-to-end: the shared-L2 cache covert channel works and is exposed by
//! oscillation analysis of the conflict-miss train, with both the
//! practical and the ideal conflict-miss tracker.

mod common;

use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::{DecodeRule, Message};
use cc_hunter::detector::pipeline::symbol_series;
use cc_hunter::detector::{Autocorrelogram, CcHunter, CcHunterConfig};
use common::{run_cache_channel, QUANTUM};

fn hunter() -> CcHunter {
    CcHunter::new(CcHunterConfig {
        // The oscillation analysis window must span several bit intervals
        // (each bit contributes one period of the conflict train); the
        // daemon is free to aggregate several OS quanta per analysis.
        quantum_cycles: 8 * QUANTUM,
        ..CcHunterConfig::default()
    })
}

#[test]
fn spy_decodes_and_hunter_detects() {
    let message = Message::from_u64(0x4929_1273_5521_8674);
    let run = run_cache_channel(message.clone(), 2_500_000, 256, TrackerKind::Practical, 66);
    let decoded = run
        .log
        .borrow()
        .decode(DecodeRule::FixedThreshold(1.0), message.len());
    assert_eq!(
        message.bit_error_rate(&decoded),
        0.0,
        "channel must work: sent {message} got {decoded}"
    );
    let report = hunter().analyze_oscillation(&run.data.conflicts, run.data.start, run.data.end);
    assert!(report.verdict.is_covert(), "{report:?}");
    let (_, value) = report.peak.expect("peak");
    assert!(value > 0.8, "strong periodicity expected, got {value}");
}

#[test]
fn autocorrelogram_peak_tracks_set_count() {
    // Figure 8/13: the dominant autocorrelation lag sits at (or slightly
    // above, due to noise) the total number of sets used by the channel.
    for &sets in &[128u32, 256] {
        let message = Message::alternating(16);
        let run = run_cache_channel(message, 2_500_000, sets, TrackerKind::Practical, 17);
        let series = symbol_series(&run.data.conflicts, run.data.start, run.data.end);
        let correlogram = Autocorrelogram::of_symbols(&series, 1000);
        let (lag, value) = correlogram.dominant_peak(8, 0.0).expect("periodic");
        assert!(
            lag >= sets as usize && lag <= sets as usize + sets as usize / 3,
            "{sets} sets: lag {lag} should sit at/above the set count"
        );
        assert!(value > 0.6, "{sets} sets: peak {value}");
    }
}

#[test]
fn ideal_and_practical_trackers_agree_on_the_verdict() {
    let message = Message::alternating(12);
    let practical = run_cache_channel(message.clone(), 2_500_000, 256, TrackerKind::Practical, 13);
    let ideal = run_cache_channel(message, 2_500_000, 256, TrackerKind::Ideal, 13);
    let h = hunter();
    let rp = h.analyze_oscillation(
        &practical.data.conflicts,
        practical.data.start,
        practical.data.end,
    );
    let ri = h.analyze_oscillation(&ideal.data.conflicts, ideal.data.start, ideal.data.end);
    assert!(rp.verdict.is_covert());
    assert!(ri.verdict.is_covert());
    // The practical tracker may over-report slightly (Bloom false
    // positives) but never misses the pattern: event counts are close.
    let np = practical.data.conflicts.len() as f64;
    let ni = ideal.data.conflicts.len() as f64;
    assert!(
        (np - ni).abs() / ni.max(1.0) < 0.25,
        "practical {np} vs ideal {ni} conflict records"
    );
}

#[test]
fn conflict_records_alternate_trojan_and_spy() {
    let run = run_cache_channel(
        Message::from_bits(vec![true; 6]),
        2_500_000,
        128,
        TrackerKind::Practical,
        7,
    );
    // Cross-context records only, in time order: symbols must alternate in
    // blocks (T→S runs followed by S→T runs), not randomly.
    let series = symbol_series(&run.data.conflicts, run.data.start, run.data.end);
    let symbols = series.symbols();
    assert!(symbols.len() > 200);
    let transitions = symbols.windows(2).filter(|w| w[0] != w[1]).count();
    // Perfect block structure of runs of 64 would give ~len/64 transitions;
    // allow generous noise but reject anything close to random (~len/2).
    assert!(
        transitions < symbols.len() / 8,
        "{transitions} transitions in {} symbols is too noisy",
        symbols.len()
    );
}

#[test]
fn quiet_cache_has_no_oscillation() {
    // Message of identical bits = trojan touches only one group; with an
    // all-zero message and no '1' sweeps the residual activity must not
    // register after the warm-up quanta are discarded.
    let run = run_cache_channel(
        Message::from_bits(vec![false; 6]),
        2_500_000,
        128,
        TrackerKind::Practical,
        7,
    );
    let report = hunter().analyze_oscillation(&run.data.conflicts, run.data.start, run.data.end);
    // A constant-group channel still oscillates T→S/S→T on G0 — that IS a
    // covert channel pattern and may legitimately be flagged. What must
    // hold: the dominant lag reflects the G0 set count (64 × 2), not noise.
    if let Some((lag, _)) = report.peak {
        assert!(lag >= 100, "lag {lag} must reflect the sweep structure");
    }
}
