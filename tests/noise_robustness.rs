//! Detection robustness under heavier benign interference (paper §III: the
//! threat model runs the channels alongside other active processes, and
//! ambient noise is supposed to hurt the *channel* before the detector).

mod common;

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{
    BitClock, BusChannelConfig, BusSpy, BusTrojan, DecodeRule, Message, SpyLog,
};
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::BackgroundNoise;
use cc_hunter::workloads::{Mcf, Stream};
use common::QUANTUM;

#[test]
fn bus_channel_detected_under_heavy_mixed_interference() {
    let mut m = Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .unwrap(),
    );
    let message = Message::alternating(64);
    let config = BusChannelConfig::new(message.clone(), BitClock::new(50_000, 250_000));
    let log = SpyLog::new_handle();
    m.spawn(
        Box::new(BusTrojan::new(config.clone(), 0x1000_0000)),
        m.config().context_id(0, 0),
    );
    m.spawn(
        Box::new(BusSpy::new(config, 0x4000_0000, log.clone())),
        m.config().context_id(1, 0),
    );
    // Six busy neighbours on every remaining context — memory-bound SPEC
    // programs plus atomics-capable noise (bin 1–2 bus-lock pollution).
    m.spawn(Box::new(Mcf::new(5)), m.config().context_id(1, 1));
    m.spawn(Box::new(Stream::new(6)), m.config().context_id(2, 0));
    m.spawn(Box::new(Mcf::new(7)), m.config().context_id(2, 1));
    m.spawn(
        Box::new(BackgroundNoise::new(8, 0.8).with_atomics()),
        m.config().context_id(3, 0),
    );
    m.spawn(
        Box::new(BackgroundNoise::new(9, 0.8).with_atomics()),
        m.config().context_id(3, 1),
    );
    m.spawn(Box::new(Stream::new(10)), m.config().context_id(0, 1));

    let mut session = AuditSession::new();
    session.audit_bus(100_000).unwrap();
    session.attach(&mut m);
    let data = QuantumRunner::new(QUANTUM).run(&mut m, &mut session, 8);

    // The channel still decodes (repetition coding would mop up residual
    // errors; here the raw BER must already be small).
    let decoded = log.borrow().decode(DecodeRule::Midpoint, message.len());
    let ber = message.bit_error_rate(&decoded);
    assert!(ber <= 0.05, "raw BER under interference: {ber}");

    // And CC-Hunter still convicts it despite the polluted bin 1–2 region.
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_contention(data.bus_histograms);
    assert!(report.verdict.is_covert(), "{report:?}");
    assert!(
        report.peak_likelihood_ratio > 0.5,
        "LR must clear the decision threshold, got {}",
        report.peak_likelihood_ratio
    );
}

#[test]
fn repetition_coding_survives_worse_noise_than_raw_bits() {
    // Pure coding check at the message level: with 20% random symbol
    // errors, 5× repetition recovers what raw transmission cannot.
    let message = Message::from_u64(0xFACE_B00C_0000_FFFF);
    let coded = message.repeat_encode(5);
    let mut symbols: Vec<bool> = coded.bits().to_vec();
    // Deterministic "noise": flip every 5th symbol (20%), at most one per
    // repetition group.
    for i in (0..symbols.len()).step_by(5) {
        symbols[i] = !symbols[i];
    }
    let received = Message::from_bits(symbols);
    assert!(coded.bit_error_rate(&received) > 0.15);
    let decoded = received.repeat_decode(5);
    assert_eq!(
        message.bit_error_rate(&decoded),
        0.0,
        "majority vote recovers the message"
    );
}
