//! Detection robustness under heavier benign interference (paper §III: the
//! threat model runs the channels alongside other active processes, and
//! ambient noise is supposed to hurt the *channel* before the detector).

mod common;

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{
    BitClock, BusChannelConfig, BusSpy, BusTrojan, DecodeRule, Message, SpyLog,
};
use cc_hunter::detector::{
    AdmissionConfig, CcHunter, CcHunterConfig, DeltaTPolicy, IngestConfig, IngestPipeline,
    OnlineContentionDetector, RawEvent, ShedPolicy, Verdict,
};
use cc_hunter::sim::{FilteredTrace, Machine, MachineConfig, ProbeEvent};
use cc_hunter::workloads::noise::{spawn_standard_noise, BackgroundNoise};
use cc_hunter::workloads::{Mcf, Stream};
use common::QUANTUM;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn bus_channel_detected_under_heavy_mixed_interference() {
    let mut m = Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .unwrap(),
    );
    let message = Message::alternating(64);
    let config = BusChannelConfig::new(message.clone(), BitClock::new(50_000, 250_000));
    let log = SpyLog::new_handle();
    m.spawn(
        Box::new(BusTrojan::new(config.clone(), 0x1000_0000)),
        m.config().context_id(0, 0),
    );
    m.spawn(
        Box::new(BusSpy::new(config, 0x4000_0000, log.clone())),
        m.config().context_id(1, 0),
    );
    // Six busy neighbours on every remaining context — memory-bound SPEC
    // programs plus atomics-capable noise (bin 1–2 bus-lock pollution).
    m.spawn(Box::new(Mcf::new(5)), m.config().context_id(1, 1));
    m.spawn(Box::new(Stream::new(6)), m.config().context_id(2, 0));
    m.spawn(Box::new(Mcf::new(7)), m.config().context_id(2, 1));
    m.spawn(
        Box::new(BackgroundNoise::new(8, 0.8).with_atomics()),
        m.config().context_id(3, 0),
    );
    m.spawn(
        Box::new(BackgroundNoise::new(9, 0.8).with_atomics()),
        m.config().context_id(3, 1),
    );
    m.spawn(Box::new(Stream::new(10)), m.config().context_id(0, 1));

    let mut session = AuditSession::new();
    session.audit_bus(100_000).unwrap();
    session.attach(&mut m);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, 8)
        .expect("audit harvest");

    // The channel still decodes (repetition coding would mop up residual
    // errors; here the raw BER must already be small).
    let decoded = log.borrow().decode(DecodeRule::Midpoint, message.len());
    let ber = message.bit_error_rate(&decoded);
    assert!(ber <= 0.05, "raw BER under interference: {ber}");

    // And CC-Hunter still convicts it despite the polluted bin 1–2 region.
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_contention(data.bus_histograms);
    assert!(report.verdict.is_covert(), "{report:?}");
    assert!(
        report.peak_likelihood_ratio > 0.5,
        "LR must clear the decision threshold, got {}",
        report.peak_likelihood_ratio
    );
}

#[test]
fn repetition_coding_survives_worse_noise_than_raw_bits() {
    // Pure coding check at the message level: with 20% random symbol
    // errors, 5× repetition recovers what raw transmission cannot.
    let message = Message::from_u64(0xFACE_B00C_0000_FFFF);
    let coded = message.repeat_encode(5);
    let mut symbols: Vec<bool> = coded.bits().to_vec();
    // Deterministic "noise": flip every 5th symbol (20%), at most one per
    // repetition group.
    for i in (0..symbols.len()).step_by(5) {
        symbols[i] = !symbols[i];
    }
    let received = Message::from_bits(symbols);
    assert!(coded.bit_error_rate(&received) > 0.15);
    let decoded = received.repeat_decode(5);
    assert_eq!(
        message.bit_error_rate(&decoded),
        0.0,
        "majority vote recovers the message"
    );
}

const FLOOD_QUANTA: usize = 10;

/// Captures the raw bus-lock event stream of a working covert bus channel
/// (trojan + spy + standard background noise) as `RawEvent`s for the ingest
/// pipeline.
fn covert_bus_lock_stream() -> Vec<RawEvent> {
    let mut m = Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .unwrap(),
    );
    let message = Message::alternating(64);
    let config = BusChannelConfig::new(message, BitClock::new(50_000, 250_000));
    let log = SpyLog::new_handle();
    m.spawn(
        Box::new(BusTrojan::new(config.clone(), 0x1000_0000)),
        m.config().context_id(0, 0),
    );
    m.spawn(
        Box::new(BusSpy::new(config, 0x4000_0000, log)),
        m.config().context_id(1, 0),
    );
    spawn_standard_noise(&mut m, 0, 3, 11);
    let trace = Rc::new(RefCell::new(FilteredTrace::new(|e: &ProbeEvent| {
        matches!(e, ProbeEvent::BusLock { .. })
    })));
    m.attach_probe(trace.clone());
    m.run_for(FLOOD_QUANTA as u64 * QUANTUM);
    let smt_per_core = m.config().smt_per_core;
    let events: Vec<RawEvent> = trace
        .borrow()
        .events()
        .iter()
        .map(|e| match *e {
            ProbeEvent::BusLock { cycle, ctx, .. } => RawEvent {
                time: cycle.as_u64(),
                weight: 1,
                context: ctx.index(smt_per_core),
            },
            _ => unreachable!("trace is filtered to bus locks"),
        })
        .collect();
    events
}

/// Audits the covert stream drowned in a 10× benign event flood through a
/// hardened ingest pipeline with the given shedding policy, returning the
/// final verdict and mean shed fraction.
fn audit_flooded(covert: &[RawEvent], policy: ShedPolicy) -> (Verdict, f64) {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        admission: AdmissionConfig {
            capacity: 512,
            policy,
        },
        ..IngestConfig::default()
    })
    .unwrap();
    let mut daemon = OnlineContentionDetector::new(
        CcHunterConfig {
            quantum_cycles: QUANTUM,
            delta_t: DeltaTPolicy::Fixed(100_000),
            ..CcHunterConfig::default()
        },
        FLOOD_QUANTA,
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(0xF100D);
    let mut status = None;
    let mut shed_sum = 0.0;
    // A constant-rate benign flood at 10× the channel's mean event volume:
    // chatty neighbours don't modulate with the trojan, so every quantum
    // sees the same deluge regardless of what the channel transmits.
    let flood_per_quantum = covert.len() * 10 / FLOOD_QUANTA;
    for q in 0..FLOOD_QUANTA {
        let start = q as u64 * QUANTUM;
        let end = start + QUANTUM;
        let in_quantum: Vec<RawEvent> = covert
            .iter()
            .copied()
            .filter(|e| e.time >= start && e.time < end)
            .collect();
        let mut offered = in_quantum.clone();
        for _ in 0..flood_per_quantum {
            offered.push(RawEvent {
                time: rng.gen_range(start..end),
                weight: 1,
                context: rng.gen_range(2..8u64) as u8,
            });
        }
        offered.sort_by_key(|e| e.time);
        for event in offered {
            pipeline.offer(event);
            assert!(
                pipeline.queue_len() <= 512,
                "admission queue must never exceed its capacity"
            );
        }
        let (harvest, report) = pipeline.end_quantum(start, end);
        shed_sum += report.shed_fraction;
        status = Some(daemon.push_quantum(harvest));
    }
    let status = status.expect("at least one quantum");
    (status.verdict, shed_sum / FLOOD_QUANTA as f64)
}

/// Paper §III-style flood evasion: an adversary co-schedules chatty benign
/// processes so the monitor's admission queue saturates and sheds. With
/// *reservoir* (unbiased) shedding the surviving subsample still carries
/// the channel's burst recurrence and the pair is convicted; with
/// drop-newest (time-truncated, biased) shedding past the bias tolerance
/// the monitor refuses the skewed evidence and reports `Inconclusive` —
/// never a false `Clean` acquittal.
#[test]
fn flooded_covert_pair_is_flagged_under_reservoir_and_never_acquitted() {
    let covert = covert_bus_lock_stream();
    assert!(
        covert.len() > 100 * FLOOD_QUANTA,
        "the channel must produce a dense lock train, got {} events",
        covert.len()
    );

    let (verdict, shed) = audit_flooded(&covert, ShedPolicy::Reservoir { seed: 0xCAFE });
    assert!(
        shed > 0.5,
        "the flood must actually overwhelm the queue, shed {shed}"
    );
    assert!(
        verdict.is_covert(),
        "unbiased reservoir shedding must preserve the channel's burst \
         evidence, got {verdict}"
    );

    let (verdict, shed) = audit_flooded(&covert, ShedPolicy::DropNewest);
    assert!(shed > 0.5, "same flood, same overload, shed {shed}");
    assert_eq!(
        verdict,
        Verdict::Inconclusive,
        "biased shedding past the tolerance must blind the monitor, not \
         acquit the pair"
    );
}
