//! The multiplier variant of the execution-unit channel (paper §IV-A:
//! "Wang et al showed a similar implementation using multipliers"): the
//! same CC-Hunter algorithm detects it — the framework is not tied to the
//! divider.

mod common;

use cc_hunter::audit::{AuditSession, QuantumRunner};
use cc_hunter::channels::{
    BitClock, DecodeRule, DividerChannelConfig, DividerSpy, DividerTrojan, Message, SpyLog,
};
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_standard_noise;
use common::QUANTUM;

fn run_multiplier_channel(
    message: Message,
    bit_cycles: u64,
    quanta: usize,
) -> (
    cc_hunter::audit::AuditData,
    cc_hunter::channels::SpyLogHandle,
) {
    let mut machine = Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .unwrap(),
    );
    let clock = BitClock::new(50_000, bit_cycles);
    let config = DividerChannelConfig::for_multiplier(message, clock);
    let log = SpyLog::new_handle();
    machine.spawn(
        Box::new(DividerTrojan::new(config.clone())),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(DividerSpy::new(config, log.clone())),
        machine.config().context_id(0, 1),
    );
    spawn_standard_noise(&mut machine, 0, 3, 31);
    let mut session = AuditSession::new();
    session.audit_multiplier(0, 500).expect("multiplier audit");
    session.attach(&mut machine);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut machine, &mut session, quanta)
        .expect("audit harvest");
    (data, log)
}

#[test]
fn spy_decodes_and_hunter_detects_the_multiplier_channel() {
    let message = Message::from_u64(0x4929_1273_5521_8674);
    let (data, log) = run_multiplier_channel(message.clone(), 250_000, 8);
    let decoded = log.borrow().decode(DecodeRule::Midpoint, message.len());
    assert_eq!(
        message.bit_error_rate(&decoded),
        0.0,
        "channel must work: sent {message} got {decoded}"
    );
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(500),
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_contention(data.multiplier_histograms);
    assert!(report.verdict.is_covert(), "{report:?}");
    assert!(
        report.peak_likelihood_ratio > 0.9,
        "LR = {}",
        report.peak_likelihood_ratio
    );
}

#[test]
fn multiplier_audit_does_not_see_divider_contention() {
    // A divider channel must not leak into a multiplier audit: the units
    // are separate banks with separate indicator events.
    let message = Message::from_bits(vec![true; 6]);
    let mut machine = Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .unwrap(),
    );
    let clock = BitClock::new(50_000, 250_000);
    let config = DividerChannelConfig::new(message, clock); // divider unit
    let log = SpyLog::new_handle();
    machine.spawn(
        Box::new(DividerTrojan::new(config.clone())),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(DividerSpy::new(config, log)),
        machine.config().context_id(0, 1),
    );
    let mut session = AuditSession::new();
    session.audit_multiplier(0, 500).unwrap();
    session.attach(&mut machine);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut machine, &mut session, 3)
        .expect("audit harvest");
    let contended: u64 = data
        .multiplier_histograms
        .iter()
        .map(|h| h.contended_windows())
        .sum();
    assert_eq!(contended, 0, "no multiplier waits from a divider channel");
}

#[test]
fn all_zero_multiplier_message_stays_clean() {
    let (data, _) = run_multiplier_channel(Message::from_bits(vec![false; 8]), 250_000, 8);
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(500),
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_contention(data.multiplier_histograms);
    assert!(!report.verdict.is_covert(), "{report:?}");
}
