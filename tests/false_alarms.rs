//! The Figure 14 false-alarm study as an integration test: every benign
//! benchmark pair must come out clean on all three audits.

mod common;

use cc_hunter::audit::{AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use cc_hunter::sim::{Machine, MachineConfig, Program};
use cc_hunter::workloads::figure14_pairs;
use cc_hunter::workloads::noise::spawn_standard_noise;
use common::QUANTUM;

fn machine() -> Machine {
    Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .expect("valid config"),
    )
}

fn pair(label: &str) -> (Box<dyn Program>, Box<dyn Program>) {
    let (_, a, b) = figure14_pairs()
        .into_iter()
        .find(|(l, _, _)| *l == label)
        .expect("known pair");
    (a, b)
}

fn labels() -> Vec<&'static str> {
    figure14_pairs().into_iter().map(|(l, _, _)| l).collect()
}

#[test]
fn contention_audits_stay_clean_for_all_pairs() {
    for label in labels() {
        let (a, b) = pair(label);
        let mut m = machine();
        m.spawn(a, m.config().context_id(0, 0));
        m.spawn(b, m.config().context_id(0, 1));
        spawn_standard_noise(&mut m, 0, 3, 21);
        let mut session = AuditSession::new();
        session.audit_bus(100_000).unwrap();
        session.audit_divider(0, 500).unwrap();
        session.attach(&mut m);
        let data = QuantumRunner::new(QUANTUM)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, 10)
            .expect("audit harvest");

        let hunter = CcHunter::new(CcHunterConfig {
            quantum_cycles: QUANTUM,
            delta_t: DeltaTPolicy::Fixed(100_000),
            ..CcHunterConfig::default()
        });
        let bus = hunter.analyze_contention(data.bus_histograms);
        assert!(
            !bus.verdict.is_covert(),
            "{label}: bus false alarm ({bus:?})"
        );
        let hunter_div = CcHunter::new(CcHunterConfig {
            quantum_cycles: QUANTUM,
            delta_t: DeltaTPolicy::Fixed(500),
            ..CcHunterConfig::default()
        });
        let div = hunter_div.analyze_contention(data.divider_histograms);
        assert!(
            !div.verdict.is_covert(),
            "{label}: divider false alarm (peak LR {})",
            div.peak_likelihood_ratio
        );
    }
}

#[test]
fn cache_audits_stay_clean_for_all_pairs() {
    for label in labels() {
        let (a, b) = pair(label);
        let mut m = machine();
        m.spawn(a, m.config().context_id(0, 0));
        m.spawn(b, m.config().context_id(0, 1));
        spawn_standard_noise(&mut m, 0, 3, 23);
        let mut session = AuditSession::new();
        let blocks = m.config().l2.total_blocks() as usize;
        session
            .audit_cache(0, blocks, TrackerKind::Practical)
            .unwrap();
        session.attach(&mut m);
        let data = QuantumRunner::new(QUANTUM)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, 10)
            .expect("audit harvest");
        let hunter = CcHunter::new(CcHunterConfig {
            quantum_cycles: QUANTUM,
            ..CcHunterConfig::default()
        });
        let report = hunter.analyze_oscillation(&data.conflicts, data.start, data.end);
        assert!(
            !report.verdict.is_covert(),
            "{label}: cache false alarm ({report:?})"
        );
    }
}

#[test]
fn mailserver_second_distribution_is_rejected_by_likelihood_ratio() {
    // The paper's sharpest case: mailserver pairs show genuine burst mass
    // around densities 5–8, but the likelihood ratio stays below 0.5 in
    // the (large) majority of quanta and recurrence never confirms.
    let (a, b) = pair("mailserver_mailserver");
    let mut m = machine();
    m.spawn(a, m.config().context_id(0, 0));
    m.spawn(b, m.config().context_id(0, 1));
    spawn_standard_noise(&mut m, 0, 3, 25);
    let mut session = AuditSession::new();
    session.audit_bus(100_000).unwrap();
    session.attach(&mut m);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut m, &mut session, 12)
        .expect("audit harvest");
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_contention(data.bus_histograms);
    // Activity exists…
    let contended: u64 = report
        .quantum_verdicts
        .iter()
        .map(|v| v.contended_windows)
        .sum();
    assert!(contended > 10, "mailserver must generate bus locks");
    // …but the channel verdict is clean.
    assert!(!report.verdict.is_covert(), "{report:?}");
    let low_lr = report
        .quantum_verdicts
        .iter()
        .filter(|v| v.contended_windows > 0 && v.likelihood_ratio < 0.5)
        .count();
    assert!(
        low_lr * 2 >= report.quantum_verdicts.len(),
        "most quanta should sit below the 0.5 threshold"
    );
}
