//! Thread migration (paper §V-A): the OS may reschedule the trojan or spy
//! onto different hardware contexts mid-transmission; with the daemon's
//! principal tracking, conflict labels keep identifying the same software
//! pair and detection is unaffected.

mod common;

use cc_hunter::audit::{AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::channels::{
    BitClock, CacheChannelConfig, CacheSpy, CacheTrojan, DecodeRule, Message, SpyLog,
};
use cc_hunter::detector::{CcHunter, CcHunterConfig};
use cc_hunter::sim::{Machine, MachineConfig};
use common::QUANTUM;

#[test]
fn cache_channel_survives_smt_slot_swap() {
    let mut machine = Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .unwrap(),
    );
    let message = Message::alternating(16);
    let clock = BitClock::new(1_000_000, 2_500_000);
    let config = CacheChannelConfig::new(message.clone(), clock, 256);
    let log = SpyLog::new_handle();
    let trojan_tid = machine.spawn(
        Box::new(CacheTrojan::new(config.clone())),
        machine.config().context_id(0, 0),
    );
    let spy_tid = machine.spawn(
        Box::new(CacheSpy::new(config, log.clone())),
        machine.config().context_id(0, 1),
    );

    let mut session = AuditSession::new();
    let blocks = machine.config().l2.total_blocks() as usize;
    session
        .audit_cache(0, blocks, TrackerKind::Practical)
        .unwrap();
    session.attach(&mut machine);

    // First half of the transmission on the original placement.
    let runner = QuantumRunner::new(QUANTUM).expect("nonzero quantum");
    let first = runner.run(&mut machine, &mut session, 9).expect("harvest");

    // The OS swaps the pair between the core's SMT slots: move the trojan
    // aside, the spy into slot 0, the trojan into slot 1.
    let parking = machine.config().context_id(1, 0);
    machine.migrate_thread(trojan_tid, parking);
    machine.run_for(1_000); // let in-flight ops drain and moves apply
    machine.migrate_thread(spy_tid, machine.config().context_id(0, 0));
    machine.migrate_thread(trojan_tid, machine.config().context_id(0, 1));
    machine.run_for(1_000);
    assert_eq!(machine.thread_context(spy_tid).smt(), 0);
    assert_eq!(machine.thread_context(trojan_tid).smt(), 1);
    // The daemon re-labels the hardware contexts with stable principals:
    // slot 0 now carries the spy (principal 1), slot 1 the trojan (0).
    session.set_principal(0, 1).expect("valid context");
    session.set_principal(1, 0).expect("valid context");

    let second = runner.run(&mut machine, &mut session, 9).expect("harvest");

    // The spy still decodes the message correctly across the swap.
    let decoded = log
        .borrow()
        .decode(DecodeRule::FixedThreshold(1.0), message.len());
    let ber = message.bit_error_rate(&decoded);
    assert!(
        ber <= 2.0 / message.len() as f64,
        "at most the in-swap bits may be lost, ber = {ber} ({message} vs {decoded})"
    );

    // With principal tracking, the T→S direction stays consistent: the
    // trojan (principal 0) keeps evicting the spy (principal 1) in both
    // halves.
    let t_to_s = |records: &[cc_hunter::detector::auditor::ConflictRecord]| {
        records
            .iter()
            .filter(|r| r.replacer == 0 && r.victim == 1)
            .count()
    };
    assert!(
        t_to_s(&first.conflicts) > 100,
        "first half: {}",
        t_to_s(&first.conflicts)
    );
    assert!(
        t_to_s(&second.conflicts) > 100,
        "second half must keep the same labels: {}",
        t_to_s(&second.conflicts)
    );

    // And CC-Hunter still flags the channel over the whole run.
    let mut all = first.conflicts;
    all.extend(second.conflicts);
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: 8 * QUANTUM,
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_oscillation(&all, first.start, second.end);
    assert!(report.verdict.is_covert(), "{report:?}");
}
