//! Hardened-ingest integration tests: the admission queue, sanitizer, and
//! saturating 16-bit accumulators sit between hostile/overloaded event
//! sources and the analysis core, and must convert every form of damage
//! into typed, quantified degradation — never a panic, unbounded memory,
//! or a silently wrong verdict.

mod common;

use cc_hunter::audit::TrackerKind;
use cc_hunter::channels::Message;
use cc_hunter::detector::density::{DensityHistogram, HISTOGRAM_BINS};
use cc_hunter::detector::policy::mix_seed;
use cc_hunter::detector::supervisor::{
    ChaosOp, PairInput, ProbeFault, Supervisor, SupervisorConfig,
};
use cc_hunter::detector::{
    AdmissionConfig, CcHunter, CcHunterConfig, DeltaTPolicy, Harvest, IngestConfig, IngestPipeline,
    OnlineContentionDetector, RawEvent, Sanitizer, SanitizerConfig, SaturatingHistogram,
    ShedPolicy, Verdict,
};
use common::{run_bus_channel, run_cache_channel, run_divider_channel, QUANTUM};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn hunter() -> CcHunter {
    CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    })
}

/// Routes per-quantum histograms through the paper's 16-bit accumulator
/// semantics, returning the reconstructed histograms and whether any bin
/// clamped.
fn through_saturating(histograms: &[DensityHistogram]) -> (Vec<DensityHistogram>, bool) {
    let mut any_saturated = false;
    let out = histograms
        .iter()
        .map(|h| {
            let mut hardware = SaturatingHistogram::new(h.delta_t()).unwrap();
            hardware.accumulate(h).unwrap();
            let (histogram, saturated) = hardware.finish();
            any_saturated |= saturated;
            histogram
        })
        .collect();
    (out, any_saturated)
}

/// The seeded bus channel still convicts when every harvested histogram is
/// routed through the saturating 16-bit accumulators (which, at the test
/// machine's scale, must be lossless — the clamp is a ceiling, not a tax).
#[test]
fn bus_channel_detected_through_saturating_accumulators() {
    let run = run_bus_channel(Message::from_u64(0x4929_1273_5521_8674), 250_000, 8);
    let (hardware, saturated) = through_saturating(&run.data.bus_histograms);
    assert!(!saturated, "25 windows/quantum cannot clamp a u16");
    for (software, hardware) in run.data.bus_histograms.iter().zip(&hardware) {
        assert_eq!(software.bins(), hardware.bins(), "lossless below the clamp");
    }
    let report = hunter().analyze_contention(hardware);
    assert!(report.verdict.is_covert(), "{report:?}");
    assert!(report.peak_likelihood_ratio > 0.9);
}

/// Same property for the integer-divider channel.
#[test]
fn divider_channel_detected_through_saturating_accumulators() {
    let run = run_divider_channel(Message::from_u64(0xA5A5_0F0F_3C3C_9999), 250_000, 8);
    let (hardware, saturated) = through_saturating(&run.data.divider_histograms);
    assert!(!saturated);
    let report = hunter().analyze_contention(hardware);
    assert!(report.verdict.is_covert(), "{report:?}");
}

/// The seeded cache channel still convicts when its conflict-record train
/// passes through the event sanitizer first (well-formed records must be
/// untouched), and the sanitizer's report proves it changed nothing.
#[test]
fn cache_channel_detected_through_conflict_sanitizer() {
    let run = run_cache_channel(
        Message::from_u64(0x4929_1273_5521_8674),
        2_500_000,
        256,
        TrackerKind::Practical,
        66,
    );
    let sanitizer = Sanitizer::new(SanitizerConfig::default());
    let (clean, report) = sanitizer.sanitize_conflicts(&run.data.conflicts);
    assert!(
        report.is_clean(),
        "the simulator's conflict train is well-formed: {report}"
    );
    assert_eq!(clean.len(), run.data.conflicts.len());
    let hunter = CcHunter::new(CcHunterConfig {
        quantum_cycles: 8 * QUANTUM,
        ..CcHunterConfig::default()
    });
    let report = hunter.analyze_oscillation(&clean, run.data.start, run.data.end);
    assert!(report.verdict.is_covert(), "{report:?}");
}

/// A paper-scale covert histogram: a 0.1 s quantum binned at a small Δt
/// yields hundreds of thousands of windows, so the empty-window bin
/// overflows a 16-bit accumulator while the burst-density bins stay small.
fn paper_scale_covert_bins(tick: u64) -> Vec<u64> {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    bins[0] = 70_000 + (tick % 7) * 3; // > u16::MAX: the clamp fires
    bins[19] = 520;
    bins[20] = 3_900 + (tick % 5);
    bins[21] = 640;
    bins
}

/// With the u16 clamp genuinely exercised (bin 0 > 65 535), the covert
/// burst structure survives — the clamp is sticky and widens uncertainty,
/// it does not erase the burst bins — and a quiet workload under the same
/// clamp stays `Clean`, not spuriously covert.
#[test]
fn u16_clamp_widens_uncertainty_without_flipping_verdicts() {
    let saturation_penalty = IngestConfig::default().saturation_penalty;
    let daemon_config = CcHunterConfig {
        quantum_cycles: 25_000_000,
        delta_t: DeltaTPolicy::Fixed(100),
        ..CcHunterConfig::default()
    };

    // Covert workload: conviction must survive the clamp.
    let mut daemon = OnlineContentionDetector::new(daemon_config, 16).unwrap();
    let mut status = None;
    for tick in 0..16u64 {
        let software = DensityHistogram::from_bins(paper_scale_covert_bins(tick), 100).unwrap();
        let mut hardware = SaturatingHistogram::new(100).unwrap();
        hardware.accumulate(&software).unwrap();
        let (histogram, saturated) = hardware.finish();
        assert!(saturated, "bin 0 must clamp at u16::MAX");
        assert_eq!(histogram.bins()[0], u16::MAX as u64);
        assert_eq!(
            histogram.bins()[20],
            3_900 + (tick % 5),
            "burst bins intact"
        );
        status = Some(daemon.push_quantum(Harvest::Partial {
            histogram,
            lost_fraction: saturation_penalty,
        }));
    }
    let status = status.unwrap();
    assert!(status.verdict.is_covert(), "{status:?}");
    assert!(
        status.is_degraded() && status.confidence < 1.0,
        "saturation must widen the verdict's uncertainty: {status:?}"
    );

    // Quiet workload under the same clamp: degraded, but still Clean.
    let mut daemon = OnlineContentionDetector::new(daemon_config, 16).unwrap();
    let mut status = None;
    for tick in 0..16u64 {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 70_100 + tick % 9;
        bins[1] = 420;
        let software = DensityHistogram::from_bins(bins, 100).unwrap();
        let mut hardware = SaturatingHistogram::new(100).unwrap();
        hardware.accumulate(&software).unwrap();
        let (histogram, saturated) = hardware.finish();
        assert!(saturated);
        status = Some(daemon.push_quantum(Harvest::Partial {
            histogram,
            lost_fraction: saturation_penalty,
        }));
    }
    let status = status.unwrap();
    assert_eq!(
        status.verdict,
        Verdict::Clean,
        "a clamped but mostly-observed quiet window stays clean: {status:?}"
    );
    assert!(status.is_degraded());
}

/// Admission memory and latency bounds: a million-event flood through a
/// 4 096-slot queue never grows past capacity and keeps per-push cost far
/// below the harvest budget. Drop-oldest shedding past the bias tolerance
/// then refuses the truncated quantum instead of faking evidence.
#[test]
fn admission_queue_bounds_memory_and_per_push_latency() {
    let capacity = 4_096usize;
    let mut pipeline = IngestPipeline::new(IngestConfig {
        admission: AdmissionConfig {
            capacity,
            policy: ShedPolicy::DropOldest,
        },
        ..IngestConfig::default()
    })
    .unwrap();

    const FLOOD: u64 = 1_000_000;
    let started = Instant::now();
    for i in 0..FLOOD {
        pipeline.offer(RawEvent {
            time: i,
            weight: 1,
            context: (i % 8) as u8,
        });
        if i.is_multiple_of(4_096) {
            assert!(
                pipeline.queue_len() <= capacity,
                "queue grew past capacity at offer {i}"
            );
        }
    }
    let elapsed = started.elapsed();
    let mean_ns = elapsed.as_nanos() as f64 / FLOOD as f64;
    // The true cost is tens of nanoseconds; 10 µs leaves two orders of
    // magnitude of slack for a loaded CI machine.
    assert!(
        mean_ns < 10_000.0,
        "mean per-push cost must stay O(1)-cheap, got {mean_ns:.0} ns"
    );

    let (harvest, report) = pipeline.end_quantum(0, FLOOD);
    assert_eq!(report.offered, FLOOD);
    assert_eq!(report.admitted, capacity as u64);
    assert!(report.refused, "99.6% time-truncated loss must be refused");
    assert!(matches!(harvest, Harvest::Missed));
    assert_eq!(pipeline.queue_len(), 0, "drain must empty the queue");
}

const SOAK_TICKS: u64 = 300;
const SOAK_CAPACITY: usize = 2_048;

/// Deterministic per-(pair, tick) event-stream generators for the soak:
/// pair 0 benign, pair 1 flooded covert-ish bursts, pair 2 actively
/// hostile (duplicates, time travel, zero-Δt bursts, bad context IDs).
fn soak_events(pair: usize, tick: u64, start: u64, end: u64) -> Vec<RawEvent> {
    let mut rng = SmallRng::seed_from_u64(mix_seed(0x50CC, pair as u64, tick));
    let span = end - start;
    let mut events = Vec::new();
    match pair {
        0 => {
            // Benign: a sparse, well-formed trickle (most Δt windows empty,
            // like the paper's benign workloads).
            for _ in 0..rng.gen_range(10..40) {
                events.push(RawEvent {
                    time: start + rng.gen_range(0..span),
                    weight: 1,
                    context: rng.gen_range(0..8u64) as u8,
                });
            }
            events.sort_by_key(|e| e.time);
        }
        1 => {
            // Flood: bursty foreground drowned in uniform background, well
            // past the admission capacity.
            for burst in 0..10u64 {
                let base = start + burst * span / 10;
                for i in 0..40u64 {
                    events.push(RawEvent {
                        time: base + i * 97,
                        weight: 1,
                        context: (i % 2) as u8,
                    });
                }
            }
            for _ in 0..3 * SOAK_CAPACITY {
                events.push(RawEvent {
                    time: start + rng.gen_range(0..span),
                    weight: 1,
                    context: rng.gen_range(2..8u64) as u8,
                });
            }
            events.sort_by_key(|e| e.time);
        }
        _ => {
            // Hostile: sorted base train laced with every abuse the
            // sanitizer knows about.
            for _ in 0..400 {
                events.push(RawEvent {
                    time: start + rng.gen_range(0..span),
                    weight: 1,
                    context: rng.gen_range(0..8u64) as u8,
                });
            }
            events.sort_by_key(|e| e.time);
            // Exact duplicates.
            for i in 0..40usize.min(events.len()) {
                let dup = events[i * events.len() / 40];
                events.push(dup);
            }
            // A zero-Δt packing attack on one cycle.
            let t = start + span / 2;
            for i in 0..5_000u64 {
                events.push(RawEvent {
                    time: t,
                    weight: 1,
                    context: (i % 8) as u8,
                });
            }
            // Time travel far beyond the reorder tolerance.
            for _ in 0..30 {
                events.push(RawEvent {
                    time: start.saturating_sub(1_000_000),
                    weight: 1,
                    context: 0,
                });
            }
            // Out-of-range context IDs.
            for _ in 0..30 {
                events.push(RawEvent {
                    time: end - 1,
                    weight: 1,
                    context: rng.gen_range(8..=255u64) as u8,
                });
            }
        }
    }
    events
}

/// Quick chaos soak: a three-pair supervised fleet fed exclusively through
/// hardened ingest pipelines for hundreds of quanta of benign + flood +
/// hostile traffic with injected analysis panics. The fleet must not
/// panic, the queues must stay capacity-bounded, every shed/repair/drop
/// must surface in `metrics_snapshot()`, and the benign pair must end
/// `Clean` — no false verdict flips under someone else's overload.
#[test]
fn chaos_soak_keeps_fleet_alive_and_benign_pair_clean() {
    let mut fleet = Supervisor::new(SupervisorConfig {
        window_quanta: 32,
        ..SupervisorConfig::default()
    })
    .unwrap();
    fleet.add_contention_pair("benign-bus").unwrap();
    fleet.add_contention_pair("flooded-bus").unwrap();
    fleet.add_contention_pair("hostile-feed").unwrap();

    let mut pipelines: Vec<IngestPipeline> = (0..3)
        .map(|pair| {
            IngestPipeline::new(IngestConfig {
                admission: AdmissionConfig {
                    capacity: SOAK_CAPACITY,
                    policy: if pair == 1 {
                        ShedPolicy::Reservoir { seed: 0xD1CE }
                    } else {
                        ShedPolicy::DropOldest
                    },
                },
                // Δt follows the pair's mean event rate (the paper derives
                // it per resource): the benign trickle gets a finer Δt so
                // its density histogram is a smooth Poisson tail rather
                // than a 25-window small-sample scatter.
                delta_t: if pair == 0 { 10_000 } else { 100_000 },
                ..IngestConfig::default()
            })
            .unwrap()
        })
        .collect();
    let stats: Vec<_> = pipelines.iter().map(|p| p.stats()).collect();
    for s in &stats {
        fleet.attach_ingest_stats(s.clone());
    }

    let mut probe = |pair: usize, tick: u64, _attempt: u32| -> Result<PairInput, ProbeFault> {
        if pair == 2 && tick.is_multiple_of(41) {
            // The analysis itself blows up; the watchdog must contain it.
            return Ok(PairInput::Chaos(ChaosOp::Panic));
        }
        let start = tick * QUANTUM;
        let end = start + QUANTUM;
        let pipeline = &mut pipelines[pair];
        for event in soak_events(pair, tick, start, end) {
            pipeline.offer(event);
            assert!(
                pipeline.queue_len() <= SOAK_CAPACITY,
                "pair {pair} queue grew past capacity at tick {tick}"
            );
        }
        let (harvest, _report) = pipeline.end_quantum(start, end);
        Ok(PairInput::Harvest(harvest))
    };

    for tick in 0..SOAK_TICKS {
        fleet.tick(&mut probe);
        if tick.is_multiple_of(50) {
            let benign = &fleet.pair_statuses()[0];
            assert!(
                !benign.verdict.is_covert(),
                "benign pair flipped covert at tick {tick}: {benign:?}"
            );
        }
    }

    let snap = fleet.metrics_snapshot();
    assert_eq!(snap.ticks, SOAK_TICKS);
    assert!(snap.failures > 0, "injected panics must be counted");
    assert!(!snap.ingest.is_empty(), "ingest totals must be visible");
    assert!(snap.ingest.events_offered > 0);
    assert!(snap.ingest.events_shed > 0, "the flood must shed");
    assert!(snap.ingest.events_dropped > 0, "hostile events must drop");
    assert!(snap.ingest.partial_harvests > 0, "loss must be quantified");
    // The snapshot is exactly the sum of the attached pipeline handles.
    let offered: u64 = stats.iter().map(|s| s.events_offered.get()).sum();
    assert_eq!(snap.ingest.events_offered, offered);

    let statuses = fleet.pair_statuses();
    assert_eq!(
        statuses[0].verdict,
        Verdict::Clean,
        "benign pair must end affirmatively clean: {:?}",
        statuses[0]
    );
}
