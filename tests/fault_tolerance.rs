//! Fault-injection robustness: the online daemon must degrade gracefully —
//! never panic, and never report a spurious full-confidence `Clean` — when
//! the harvest path between the CC-auditor and the daemon is damaged.
//!
//! The bus covert channel from the noise-robustness suite is harvested once
//! cleanly, then replayed through a [`FaultInjector`] for every fault class.

mod common;

use cc_hunter::channels::Message;
use cc_hunter::detector::auditor::ConflictRecord;
use cc_hunter::detector::density::DensityHistogram;
use cc_hunter::detector::online::{OnlineContentionDetector, OnlineOscillationDetector};
use cc_hunter::detector::{CcHunterConfig, DeltaTPolicy, Verdict};
use cc_hunter::{FaultClass, FaultConfig, FaultInjector, Harvest};
use common::QUANTUM;
use std::sync::OnceLock;

/// One clean 8-quantum bus-channel harvest, shared by every test in this
/// binary (the simulation is the expensive part; injection is cheap).
fn clean_bus_histograms() -> &'static [DensityHistogram] {
    static HISTOGRAMS: OnceLock<Vec<DensityHistogram>> = OnceLock::new();
    HISTOGRAMS.get_or_init(|| {
        let run = common::run_bus_channel(Message::alternating(64), 250_000, 8);
        run.data.bus_histograms
    })
}

fn hunter_config() -> CcHunterConfig {
    CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    }
}

/// Pushes `rounds` cycles of the clean harvest stream through a fresh
/// daemon behind `injector`, asserting graceful degradation on every
/// status. Returns the final status.
fn replay_through_injector(
    injector: &mut FaultInjector,
    rounds: usize,
) -> cc_hunter::detector::online::OnlineStatus {
    let histograms = clean_bus_histograms();
    let mut daemon = OnlineContentionDetector::new(hunter_config(), 8).expect("nonzero window");
    let mut weights: Vec<f64> = Vec::new();
    let mut last = None;
    for _ in 0..rounds {
        for histogram in histograms {
            let harvest = injector.perturb_harvest(histogram.clone());
            weights.push(harvest.observed_weight());
            let status = daemon.push_quantum(harvest);
            assert!(status.window_len <= 8);
            assert!(status.observed_in_window <= status.window_len);
            assert!((0.0..=1.0).contains(&status.confidence));
            // The core guarantee: confidence tracks the observed fraction
            // of the window exactly, so faults can never hide behind a
            // full-confidence verdict — Clean *or* Covert.
            let window: &[f64] = &weights[weights.len().saturating_sub(8)..];
            let expected = window.iter().sum::<f64>() / window.len() as f64;
            assert!(
                (status.confidence - expected).abs() < 1e-9,
                "confidence {} must equal the observed window fraction {expected}: {status:?}",
                status.confidence
            );
            last = Some(status);
        }
    }
    last.expect("at least one quantum pushed")
}

#[test]
fn histogram_fault_classes_degrade_gracefully() {
    // Quantum-scoped classes: these damage the histogram read-out itself.
    let classes = [
        FaultClass::DroppedQuantum,
        FaultClass::TruncatedHistogram,
        FaultClass::AccumulatorSaturation,
        FaultClass::ClockJitter,
    ];
    for class in classes {
        let mut injector = FaultInjector::new(FaultConfig::only(class), 0xFA01);
        let status = replay_through_injector(&mut injector, 3);
        assert!(
            injector.injected(class) > 0,
            "{class}: the default rate must fire over 24 quanta"
        );
        // The channel keeps transmitting the whole time; at default
        // (moderate) fault rates the verdict survives the damage.
        assert!(
            status.verdict.is_covert(),
            "{class}: default-rate faults must not erase an active channel: {status:?}"
        );
    }
}

#[test]
fn conflict_fault_classes_degrade_gracefully() {
    // Record-scoped classes: these damage drained conflict records, feeding
    // the oscillation path. Synthesize a strongly oscillatory record train
    // (trojan context 0 and spy context 1 evicting each other in strict
    // alternation).
    let records_for_quantum = |q: u64| -> Vec<ConflictRecord> {
        (0..128u64)
            .map(|i| {
                let (replacer, victim) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
                ConflictRecord {
                    cycle: q * QUANTUM + i * 10_000,
                    replacer,
                    victim,
                }
            })
            .collect()
    };
    let classes = [
        FaultClass::OutOfOrderConflicts,
        FaultClass::DuplicatedConflicts,
        FaultClass::BloomAliasing,
    ];
    for class in classes {
        let mut injector = FaultInjector::new(FaultConfig::only(class), 0xFA02);
        let mut daemon = OnlineOscillationDetector::new(hunter_config(), 8).expect("window");
        let mut saw_damage = false;
        for q in 0..24u64 {
            let (records, lost_fraction) = injector.perturb_conflicts(records_for_quantum(q));
            assert!((0.0..=1.0).contains(&lost_fraction), "{class}");
            saw_damage |= lost_fraction > 0.0;
            let status = daemon.push_quantum_degraded(&records, lost_fraction);
            assert!(status.window_len <= 8, "{class}");
            assert!((0.0..=1.0).contains(&status.confidence), "{class}");
            // A damaged batch must surface as reduced confidence, never as
            // a full-confidence verdict.
            if lost_fraction > 0.0 {
                assert!(
                    status.is_degraded(),
                    "{class}: damage must show in confidence: {status:?}"
                );
            }
        }
        assert!(injector.injected(class) > 0, "{class} must fire");
        assert!(saw_damage, "{class} must report a nonzero lost fraction");
    }
}

#[test]
fn detection_survives_twenty_percent_dropped_quanta() {
    let config = FaultConfig::none().with_rate(FaultClass::DroppedQuantum, 0.2);
    let mut injector = FaultInjector::new(config, 0xFA03);
    let status = replay_through_injector(&mut injector, 3);
    assert!(injector.injected(FaultClass::DroppedQuantum) > 0);
    assert!(
        status.verdict.is_covert(),
        "20% quantum loss must not blind the detector: {status:?}"
    );
    assert!(
        status.confidence >= 0.5,
        "most of the window is still observed: {status:?}"
    );
}

#[test]
fn heavy_quantum_loss_degrades_to_low_confidence_not_false_clean() {
    let config = FaultConfig::none().with_rate(FaultClass::DroppedQuantum, 0.9);
    let mut injector = FaultInjector::new(config, 0xFA04);
    let status = replay_through_injector(&mut injector, 3);
    assert!(
        status.confidence < 0.5,
        "a 90% loss rate must show up as low confidence: {status:?}"
    );
    assert!(
        status.is_degraded(),
        "whatever the verdict, it must be flagged degraded: {status:?}"
    );
}

#[test]
fn checkpoint_restore_reproduces_verdict_sequence() {
    // Degrade the stream (same seed twice → identical fault sequence), then
    // compare an uninterrupted daemon against one checkpointed and restored
    // at the halfway point: the verdict/confidence sequence must match.
    let perturbed: Vec<Harvest> = {
        let mut injector = FaultInjector::new(FaultConfig::default(), 0xFA05);
        clean_bus_histograms()
            .iter()
            .map(|h| injector.perturb_harvest(h.clone()))
            .collect()
    };

    let mut uninterrupted =
        OnlineContentionDetector::new(hunter_config(), 8).expect("nonzero window");
    let reference: Vec<(Verdict, f64, usize)> = perturbed
        .iter()
        .map(|h| {
            let s = uninterrupted.push_quantum(h.clone());
            (s.verdict, s.confidence, s.window_len)
        })
        .collect();

    let mut first_half = OnlineContentionDetector::new(hunter_config(), 8).expect("window");
    for h in &perturbed[..4] {
        first_half.push_quantum(h.clone());
    }
    let mut snapshot = Vec::new();
    first_half.checkpoint(&mut snapshot).expect("checkpoint");
    drop(first_half); // the daemon restarts here

    let mut resumed =
        OnlineContentionDetector::restore(hunter_config(), &snapshot[..]).expect("restore");
    let resumed_tail: Vec<(Verdict, f64, usize)> = perturbed[4..]
        .iter()
        .map(|h| {
            let s = resumed.push_quantum(h.clone());
            (s.verdict, s.confidence, s.window_len)
        })
        .collect();
    assert_eq!(
        resumed_tail,
        reference[4..],
        "a restored daemon must continue exactly where the original would have been"
    );
}
