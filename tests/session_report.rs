//! End-to-end session reporting: one audit session over a machine carrying
//! a bus channel plus benign divider load yields a report that convicts
//! exactly the right resource.

mod common;

use cc_hunter::channels::Message;
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy, SessionReport, Verdict};
use common::{run_bus_channel, run_divider_channel, QUANTUM};

#[test]
fn report_convicts_only_the_guilty_resource() {
    // Bus channel active; divider channel silent (all-zero message keeps
    // the trojan idle, so only benign-style spy sampling touches the bank).
    let bus = run_bus_channel(Message::alternating(64), 250_000, 8);
    let div = run_divider_channel(Message::from_bits(vec![false; 8]), 250_000, 8);

    let bus_report = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    })
    .analyze_contention(bus.data.bus_histograms);
    let div_report = CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(500),
        ..CcHunterConfig::default()
    })
    .analyze_contention(div.data.divider_histograms);

    let mut session = SessionReport::new()
        .with_span(0, 8 * QUANTUM)
        .with_clock(2_500_000_000);
    session.add_contention("memory-bus", &bus_report);
    session.add_contention("integer-divider(core0)", &div_report);

    assert_eq!(session.overall(), Verdict::CovertTimingChannel);
    let convicted = session.convicted();
    assert_eq!(convicted.len(), 1);
    assert_eq!(convicted[0].resource, "memory-bus");

    let rendered = session.to_string();
    assert!(rendered.contains("memory-bus"));
    assert!(rendered.contains("COVERT TIMING CHANNEL"));
    assert!(rendered.contains("integer-divider(core0)"));
    assert!(rendered.contains("overall: COVERT TIMING CHANNEL"));
}
