#![allow(dead_code)] // each integration test binary uses a subset of these helpers

//! Shared scaffolding for the integration tests: scaled-down machines
//! (millisecond quanta) running full trojan/spy/noise scenarios.

use cc_hunter::audit::{AuditData, AuditSession, QuantumRunner, TrackerKind};
use cc_hunter::channels::{
    BitClock, BusChannelConfig, BusSpy, BusTrojan, CacheChannelConfig, CacheSpy, CacheTrojan,
    DividerChannelConfig, DividerSpy, DividerTrojan, Message, SpyLog, SpyLogHandle,
};
use cc_hunter::sim::{Machine, MachineConfig};
use cc_hunter::workloads::noise::spawn_standard_noise;

/// Scaled OS time quantum used throughout the integration tests (1 ms at
/// 2.5 GHz; the experiment harness uses the paper's full 0.1 s).
pub const QUANTUM: u64 = 2_500_000;

/// Builds the standard test machine.
pub fn machine() -> Machine {
    Machine::new(
        MachineConfig::builder()
            .quantum_cycles(QUANTUM)
            .build()
            .expect("valid config"),
    )
}

/// Outcome of a full channel-under-audit run.
pub struct ChannelRun {
    pub data: AuditData,
    pub log: SpyLogHandle,
    pub message: Message,
}

/// Runs the memory-bus channel with three background noise processes under
/// a bus audit.
pub fn run_bus_channel(message: Message, bit_cycles: u64, quanta: usize) -> ChannelRun {
    let mut machine = machine();
    let clock = BitClock::new(50_000, bit_cycles);
    let config = BusChannelConfig::new(message.clone(), clock);
    let log = SpyLog::new_handle();
    machine.spawn(
        Box::new(BusTrojan::new(config.clone(), 0x1000_0000)),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(BusSpy::new(config, 0x4000_0000, log.clone())),
        machine.config().context_id(1, 0),
    );
    spawn_standard_noise(&mut machine, 0, 3, 11);
    let mut session = AuditSession::new();
    session.audit_bus(100_000).expect("bus audit");
    session.attach(&mut machine);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut machine, &mut session, quanta)
        .expect("audit harvest");
    ChannelRun { data, log, message }
}

/// Runs the integer-divider channel (SMT co-residents on core 0) with
/// noise under a divider audit.
pub fn run_divider_channel(message: Message, bit_cycles: u64, quanta: usize) -> ChannelRun {
    let mut machine = machine();
    let clock = BitClock::new(50_000, bit_cycles);
    let config = DividerChannelConfig::new(message.clone(), clock);
    let log = SpyLog::new_handle();
    machine.spawn(
        Box::new(DividerTrojan::new(config.clone())),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(DividerSpy::new(config, log.clone())),
        machine.config().context_id(0, 1),
    );
    spawn_standard_noise(&mut machine, 0, 3, 13);
    let mut session = AuditSession::new();
    session.audit_divider(0, 500).expect("divider audit");
    session.attach(&mut machine);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut machine, &mut session, quanta)
        .expect("audit harvest");
    ChannelRun { data, log, message }
}

/// Runs the shared-L2 cache channel with noise under a cache audit.
pub fn run_cache_channel(
    message: Message,
    bit_cycles: u64,
    total_sets: u32,
    tracker: TrackerKind,
    quanta: usize,
) -> ChannelRun {
    let mut machine = machine();
    let clock = BitClock::new(1_000_000, bit_cycles);
    let config = CacheChannelConfig::new(message.clone(), clock, total_sets);
    let log = SpyLog::new_handle();
    machine.spawn(
        Box::new(CacheTrojan::new(config.clone())),
        machine.config().context_id(0, 0),
    );
    machine.spawn(
        Box::new(CacheSpy::new(config, log.clone())),
        machine.config().context_id(0, 1),
    );
    spawn_standard_noise(&mut machine, 0, 3, 17);
    let mut session = AuditSession::new();
    let blocks = machine.config().l2.total_blocks() as usize;
    session
        .audit_cache(0, blocks, tracker)
        .expect("cache audit");
    session.attach(&mut machine);
    let data = QuantumRunner::new(QUANTUM)
        .expect("nonzero quantum")
        .run(&mut machine, &mut session, quanta)
        .expect("audit harvest");
    ChannelRun { data, log, message }
}
