//! End-to-end: the memory-bus covert channel is a *working* channel (the
//! spy decodes the secret) and CC-Hunter detects it from bus-lock event
//! density alone, across bandwidths.

mod common;

use cc_hunter::channels::{DecodeRule, Message};
use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
use common::{run_bus_channel, QUANTUM};

fn hunter() -> CcHunter {
    CcHunter::new(CcHunterConfig {
        quantum_cycles: QUANTUM,
        delta_t: DeltaTPolicy::Fixed(100_000),
        ..CcHunterConfig::default()
    })
}

#[test]
fn spy_decodes_and_hunter_detects() {
    let message = Message::from_u64(0x4929_1273_5521_8674);
    let run = run_bus_channel(message.clone(), 250_000, 8);
    let decoded = run.log.borrow().decode(DecodeRule::Midpoint, message.len());
    assert_eq!(
        message.bit_error_rate(&decoded),
        0.0,
        "channel must work: sent {message} got {decoded}"
    );
    let report = hunter().analyze_contention(run.data.bus_histograms);
    assert!(report.verdict.is_covert());
    assert!(
        report.peak_likelihood_ratio > 0.9,
        "paper: LR ≥ 0.9 for covert channels, got {}",
        report.peak_likelihood_ratio
    );
    assert!(report.recurrence.recurrent);
}

#[test]
fn burst_peak_matches_paper_density() {
    // Figure 6a: the bus channel's burst distribution peaks near density
    // 20 per 100k-cycle Δt window.
    let run = run_bus_channel(Message::from_bits(vec![true; 8]), 250_000, 2);
    let report = hunter().analyze_contention(run.data.bus_histograms);
    let peaks: Vec<usize> = report
        .quantum_verdicts
        .iter()
        .filter_map(|v| v.burst_peak)
        .collect();
    assert!(!peaks.is_empty());
    for peak in peaks {
        assert!(
            (15..=27).contains(&peak),
            "burst peak should sit near bin 20, got {peak}"
        );
    }
}

#[test]
fn slower_bit_rate_is_still_detected() {
    // One bit per quantum: bursts become sparser but the likelihood ratio
    // holds (the paper's Figure 10 finding).
    let message = Message::alternating(6);
    let run = run_bus_channel(message.clone(), QUANTUM, 7);
    let decoded = run.log.borrow().decode(DecodeRule::Midpoint, message.len());
    assert_eq!(message.bit_error_rate(&decoded), 0.0);
    let report = hunter().analyze_contention(run.data.bus_histograms);
    assert!(report.verdict.is_covert());
    assert!(report.peak_likelihood_ratio > 0.9);
}

#[test]
fn all_zero_message_stays_clean() {
    // A trojan that never modulates produces no recurrent bursts: the
    // detector must not hallucinate a channel out of spy traffic + noise.
    let run = run_bus_channel(Message::from_bits(vec![false; 8]), 250_000, 8);
    let report = hunter().analyze_contention(run.data.bus_histograms);
    assert!(!report.verdict.is_covert(), "{report:?}");
}

#[test]
fn detection_is_deterministic() {
    let message = Message::from_u64(0xDEAD_BEEF_0123_4567);
    let summarize = |run: &common::ChannelRun| {
        let report = hunter().analyze_contention(run.data.bus_histograms.clone());
        (
            report.verdict,
            report.quantum_verdicts.len(),
            format!("{:.6}", report.peak_likelihood_ratio),
        )
    };
    let a = run_bus_channel(message.clone(), 250_000, 6);
    let b = run_bus_channel(message, 250_000, 6);
    assert_eq!(summarize(&a), summarize(&b));
    assert_eq!(a.data.conflicts.len(), b.data.conflicts.len());
}
